//! Server error type.

use std::fmt;

use omos_analysis::Diagnostic;
use omos_blueprint::EvalError;
use omos_constraint::PlaceError;
use omos_link::LinkError;
use omos_obj::ObjError;

/// Errors the OMOS server reports to clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OmosError {
    /// A namespace path does not exist.
    NoSuchName(String),
    /// A namespace path exists but has the wrong kind (e.g. asked to
    /// instantiate a directory).
    WrongKind(String),
    /// Blueprint evaluation failed.
    Eval(EvalError),
    /// Linking failed.
    Link(LinkError),
    /// Placement failed.
    Place(PlaceError),
    /// An object-level failure.
    Obj(ObjError),
    /// Mapping or client-side failure.
    Client(String),
    /// The requested dynamic library id is unknown.
    NoSuchLibrary(u32),
    /// Pre-flight static analysis found errors (only when the server's
    /// opt-in preflight mode is enabled); warnings are not included.
    Preflight(Vec<Diagnostic>),
    /// A deny link policy matched a symbol the program references
    /// (OM017); always enforced, independent of preflight mode.
    Policy(Vec<Diagnostic>),
}

impl fmt::Display for OmosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OmosError::NoSuchName(p) => write!(f, "no such name: {p}"),
            OmosError::WrongKind(p) => write!(f, "not instantiable: {p}"),
            OmosError::Eval(e) => write!(f, "{e}"),
            OmosError::Link(e) => write!(f, "{e}"),
            OmosError::Place(e) => write!(f, "{e}"),
            OmosError::Obj(e) => write!(f, "{e}"),
            OmosError::Client(s) => write!(f, "client error: {s}"),
            OmosError::NoSuchLibrary(id) => write!(f, "no dynamic library with id {id}"),
            OmosError::Preflight(diags) => {
                write!(f, "preflight analysis rejected the blueprint:")?;
                for d in diags {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
            OmosError::Policy(diags) => {
                write!(f, "link policy denied the blueprint:")?;
                for d in diags {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for OmosError {}

impl From<EvalError> for OmosError {
    fn from(e: EvalError) -> OmosError {
        OmosError::Eval(e)
    }
}

impl From<LinkError> for OmosError {
    fn from(e: LinkError) -> OmosError {
        OmosError::Link(e)
    }
}

impl From<PlaceError> for OmosError {
    fn from(e: PlaceError) -> OmosError {
        OmosError::Place(e)
    }
}

impl From<ObjError> for OmosError {
    fn from(e: ObjError) -> OmosError {
        OmosError::Obj(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: OmosError = ObjError::UndefinedSymbol("_x".into()).into();
        assert!(e.to_string().contains("_x"));
        let e = OmosError::NoSuchName("/bin/zz".into());
        assert_eq!(e.to_string(), "no such name: /bin/zz");
    }
}
