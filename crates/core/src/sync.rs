//! Concurrency primitives for the server's request paths.
//!
//! Two pieces:
//!
//! * [`Sharded`] — a hash map split over N independently locked shards,
//!   so requests touching different keys never contend. The server's
//!   eval and reply caches shard by [`ContentHash`](omos_obj::ContentHash)
//!   (the key's low bits pick the shard).
//! * [`SingleFlight`] — per-key request coalescing: when N threads miss
//!   the cache on the same key at once, exactly one (the *leader*) runs
//!   the computation; the rest block on a condvar and share the leader's
//!   result. This is what makes N clients cold-starting the same program
//!   cost one eval+link instead of N.
//!
//! Lock discipline: shard locks and flight locks are leaves — no code
//! here calls back into the server while holding one, and the leader's
//! computation runs *outside* every lock in this module.

use std::collections::hash_map::Entry as MapEntry;
use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, RandomState};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError, RwLock};

/// Locks a mutex, tolerating poison: the protected data is a cache and
/// stays structurally valid even if a panicking thread abandoned it.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A concurrent hash map sharded over independently locked segments.
#[derive(Debug)]
pub struct Sharded<K, V> {
    shards: Vec<RwLock<HashMap<K, V>>>,
    hasher: RandomState,
}

impl<K: Hash + Eq, V: Clone> Sharded<K, V> {
    /// A map with `shards` segments (rounded up to at least 1).
    #[must_use]
    pub fn new(shards: usize) -> Sharded<K, V> {
        Sharded {
            shards: (0..shards.max(1))
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            hasher: RandomState::new(),
        }
    }

    fn shard(&self, key: &K) -> &RwLock<HashMap<K, V>> {
        let h = self.hasher.hash_one(key) as usize;
        &self.shards[h % self.shards.len()]
    }

    /// Clones the value under `key`, if present.
    #[must_use]
    pub fn get(&self, key: &K) -> Option<V> {
        self.shard(key)
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(key)
            .cloned()
    }

    /// Inserts, replacing any existing value.
    pub fn insert(&self, key: K, value: V) {
        self.shard(&key)
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(key, value);
    }

    /// Removes the entry under `key`.
    pub fn remove(&self, key: &K) {
        self.shard(key)
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(key);
    }

    /// Total entries across all shards — a *consistent* point-in-time
    /// count. All shard read-locks are acquired in index order and held
    /// together while summing, so a concurrent insert+remove pair can
    /// never be half-counted (summing shard-by-shard returns torn
    /// counts, which made `Omos::stats()` gauges disagree with each
    /// other). Writers take exactly one shard lock, so taking the reads
    /// in index order cannot deadlock against them.
    #[must_use]
    pub fn len(&self) -> usize {
        let guards: Vec<_> = self
            .shards
            .iter()
            .map(|s| s.read().unwrap_or_else(PoisonError::into_inner))
            .collect();
        guards.iter().map(|g| g.len()).sum()
    }

    /// True if no shard holds anything (consistent, like
    /// [`Sharded::len`]).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clones every entry out — a consistent point-in-time snapshot
    /// (all shard read-locks held together, like [`Sharded::len`]).
    /// Used by the checkpoint writer, which must not see a half-updated
    /// cache.
    #[must_use]
    pub fn entries(&self) -> Vec<(K, V)>
    where
        K: Clone,
    {
        let guards: Vec<_> = self
            .shards
            .iter()
            .map(|s| s.read().unwrap_or_else(PoisonError::into_inner))
            .collect();
        guards
            .iter()
            .flat_map(|g| g.iter().map(|(k, v)| (k.clone(), v.clone())))
            .collect()
    }
}

/// The state a flight passes through. `Abandoned` means the leader
/// panicked before publishing; waiters retry and elect a new leader.
#[derive(Debug)]
enum FlightState<V> {
    Pending,
    Done(V),
    Abandoned,
}

#[derive(Debug)]
struct Flight<V> {
    state: Mutex<FlightState<V>>,
    cv: Condvar,
}

impl<V> Flight<V> {
    fn publish(&self, state: FlightState<V>) {
        *lock(&self.state) = state;
        self.cv.notify_all();
    }
}

/// Per-key request coalescing (the "single flight" idiom).
#[derive(Debug)]
pub struct SingleFlight<K, V> {
    inflight: Mutex<HashMap<K, Arc<Flight<V>>>>,
}

impl<K: Hash + Eq + Copy, V: Clone> SingleFlight<K, V> {
    /// An empty in-flight table.
    #[must_use]
    pub fn new() -> SingleFlight<K, V> {
        SingleFlight {
            inflight: Mutex::new(HashMap::new()),
        }
    }

    /// Runs `compute` for `key`, coalescing concurrent callers: the
    /// first caller (leader) computes; callers arriving while the
    /// flight is pending block and receive a clone of the leader's
    /// result. Returns `(value, led)` where `led` is true for the
    /// leader. If the leader panics, one waiter is promoted to leader
    /// and re-runs `compute`.
    pub fn run<F>(&self, key: K, compute: F) -> (V, bool)
    where
        F: Fn() -> V,
    {
        loop {
            let existing = {
                let mut map = lock(&self.inflight);
                match map.entry(key) {
                    MapEntry::Occupied(e) => Some(Arc::clone(e.get())),
                    MapEntry::Vacant(e) => {
                        e.insert(Arc::new(Flight {
                            state: Mutex::new(FlightState::Pending),
                            cv: Condvar::new(),
                        }));
                        None
                    }
                }
            };
            match existing {
                None => return (self.lead(key, &compute), true),
                Some(flight) => {
                    let mut st = lock(&flight.state);
                    loop {
                        match &*st {
                            FlightState::Pending => {
                                st = flight.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
                            }
                            FlightState::Done(v) => return (v.clone(), false),
                            FlightState::Abandoned => break, // re-enter, maybe lead
                        }
                    }
                }
            }
        }
    }

    /// Leader path: run the computation with a drop guard so a panic
    /// wakes the waiters instead of deadlocking them.
    fn lead<F>(&self, key: K, compute: &F) -> V
    where
        F: Fn() -> V,
    {
        struct Guard<'a, K: Hash + Eq + Copy, V: Clone> {
            sf: &'a SingleFlight<K, V>,
            key: K,
            done: bool,
        }
        impl<K: Hash + Eq + Copy, V: Clone> Drop for Guard<'_, K, V> {
            fn drop(&mut self) {
                if !self.done {
                    if let Some(flight) = lock(&self.sf.inflight).remove(&self.key) {
                        flight.publish(FlightState::Abandoned);
                    }
                }
            }
        }
        let mut guard = Guard {
            sf: self,
            key,
            done: false,
        };
        let v = compute();
        guard.done = true;
        // Publish before removing the key: a caller that grabbed the
        // flight just before removal sees Done; one arriving after
        // removal starts a fresh flight (and will hit the caller's
        // cache instead of recomputing, in the server's usage).
        if let Some(flight) = lock(&self.inflight).remove(&key) {
            flight.publish(FlightState::Done(v.clone()));
        }
        v
    }
}

impl<K: Hash + Eq + Copy, V: Clone> Default for SingleFlight<K, V> {
    fn default() -> Self {
        SingleFlight::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Barrier;

    #[test]
    fn sharded_basic_ops() {
        let m: Sharded<u64, String> = Sharded::new(4);
        assert!(m.is_empty());
        m.insert(1, "a".into());
        m.insert(2, "b".into());
        assert_eq!(m.get(&1).as_deref(), Some("a"));
        assert_eq!(m.len(), 2);
        m.remove(&1);
        assert!(m.get(&1).is_none());
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn single_flight_coalesces_concurrent_callers() {
        let sf: SingleFlight<u64, u64> = SingleFlight::new();
        let computes = AtomicU64::new(0);
        let barrier = Barrier::new(8);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    scope.spawn(|| {
                        barrier.wait();
                        sf.run(7, || {
                            computes.fetch_add(1, Ordering::Relaxed);
                            // Dilate the flight so late arrivals coalesce.
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            42u64
                        })
                    })
                })
                .collect();
            let results: Vec<(u64, bool)> =
                handles.into_iter().map(|h| h.join().unwrap()).collect();
            let leaders = results.iter().filter(|(_, led)| *led).count();
            assert!(results.iter().all(|(v, _)| *v == 42));
            assert_eq!(
                leaders as u64,
                computes.load(Ordering::Relaxed),
                "every compute has exactly one leader"
            );
        });
    }

    #[test]
    fn single_flight_distinct_keys_run_independently() {
        let sf: SingleFlight<u64, u64> = SingleFlight::new();
        let (a, led_a) = sf.run(1, || 10);
        let (b, led_b) = sf.run(2, || 20);
        assert_eq!((a, b), (10, 20));
        assert!(led_a && led_b, "uncontended callers lead");
    }

    #[test]
    fn single_flight_leader_panic_promotes_a_waiter() {
        let sf: Arc<SingleFlight<u64, u64>> = Arc::new(SingleFlight::new());
        let barrier = Arc::new(Barrier::new(2));
        let sf2 = Arc::clone(&sf);
        let b2 = Arc::clone(&barrier);
        let panicker = std::thread::spawn(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                sf2.run(9, || {
                    b2.wait(); // let the waiter enqueue
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    panic!("leader dies");
                })
            }));
            assert!(result.is_err());
        });
        barrier.wait();
        // This caller either joins the doomed flight and retries after
        // Abandoned, or arrives after cleanup; both must end at 99.
        let (v, _led) = sf.run(9, || 99);
        assert_eq!(v, 99);
        panicker.join().unwrap();
    }
}
