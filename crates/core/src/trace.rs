//! omos-trace — request-level structured tracing and metrics.
//!
//! PR 2 made the server concurrent; this module makes it *observable*.
//! Every instantiation request gets a tree of spans — blueprint eval,
//! per-library placement/link/framing, the program link, cache probes
//! with their outcome, single-flight leadership vs. coalescing — plus
//! client-side IPC and mapping spans recorded against the same request
//! id. Spans land in a fixed-size ring buffer (bounded memory, oldest
//! records overwritten; the hot path allocates nothing beyond the span
//! record itself) and are aggregated into per-stage latency histograms
//! and counter families snapshotted by [`Tracer::snapshot`] /
//! `Omos::trace_snapshot`.
//!
//! Timestamps live in the *simulation* domain: each request owns a
//! cursor of SimClock-style nanoseconds that leaf spans advance, so a
//! request's span tree is a deterministic timeline of where its time
//! went. Billed stages (eval, link) advance the cursor by exactly the
//! nanoseconds charged to the client's reply; metered-but-unbilled
//! stages (placement, framing — global work amortized across clients)
//! appear in the timeline without inflating `server_ns`.
//!
//! Surfaces: `ofe trace <blueprint>` renders a span tree, `ofe stats`
//! renders histograms/counters, [`chrome_json`] exports Chrome trace
//! format for `about://tracing`, and `mcbench` embeds per-stage
//! percentiles in `BENCH_CONCURRENCY.json`.
//!
//! Conservation laws (asserted by `tests/trace.rs`): per cache,
//! `hits + misses == probes` (stale revalidation drops are a subset of
//! misses); for the reply single-flight, `leaders + coalesced ==
//! flight_entries`; eviction reason counts sum to total evictions.

use std::cell::RefCell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::sync::lock;

/// Spans the ring buffer retains; older records are overwritten.
pub const RING_CAPACITY: usize = 4096;

/// Log₂ latency buckets: bucket `i` holds durations in
/// `[2^(i-1), 2^i)` ns (bucket 0 holds 0 ns).
pub const HIST_BUCKETS: usize = 44;

/// Pipeline stages with their own latency histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// A whole instantiation request (trace-timeline total).
    Request,
    /// Blueprint evaluation / m-graph op execution.
    Eval,
    /// Constraint-solver placement of a library's segments.
    Placement,
    /// Symbol binding + relocation (library or program link).
    Link,
    /// Image framing (building shareable page frames).
    Frame,
    /// Client-side mapping of the reply's frames.
    Map,
    /// Client↔server IPC round trip.
    Ipc,
    /// A diff-driven incremental relink (the dirtied-subgraph rebuild,
    /// eval excluded).
    RelinkPartial,
    /// Reuse of a retained artifact (cached image + replayed placement)
    /// during an incremental relink.
    Reuse,
    /// Link-policy application (deny screening + stub interposition).
    Policy,
}

impl Stage {
    /// All stages, in pipeline order.
    pub const ALL: [Stage; 10] = [
        Stage::Request,
        Stage::Eval,
        Stage::Placement,
        Stage::Link,
        Stage::Frame,
        Stage::Map,
        Stage::Ipc,
        Stage::RelinkPartial,
        Stage::Reuse,
        Stage::Policy,
    ];

    /// Stable display name (also the JSON key).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Stage::Request => "request",
            Stage::Eval => "eval",
            Stage::Placement => "placement",
            Stage::Link => "link",
            Stage::Frame => "frame",
            Stage::Map => "map",
            Stage::Ipc => "ipc",
            Stage::RelinkPartial => "relink_partial",
            Stage::Reuse => "reuse",
            Stage::Policy => "policy",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::Request => 0,
            Stage::Eval => 1,
            Stage::Placement => 2,
            Stage::Link => 3,
            Stage::Frame => 4,
            Stage::Map => 5,
            Stage::Ipc => 6,
            Stage::RelinkPartial => 7,
            Stage::Reuse => 8,
            Stage::Policy => 9,
        }
    }
}

/// Which cache a probe or eviction concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheKind {
    /// The full-reply cache.
    Reply,
    /// The evaluated-module cache.
    Eval,
    /// The bound-image cache.
    Image,
}

impl CacheKind {
    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CacheKind::Reply => "reply",
            CacheKind::Eval => "eval",
            CacheKind::Image => "image",
        }
    }
}

/// Probe outcomes. `Stale` is a miss whose entry existed but failed
/// dependency revalidation (and was dropped); it counts toward both
/// `misses` and `stale`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeOutcome {
    /// Entry present and valid.
    Hit,
    /// No entry.
    Miss,
    /// Entry present but invalidated by a touched dependency.
    Stale,
}

impl ProbeOutcome {
    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ProbeOutcome::Hit => "hit",
            ProbeOutcome::Miss => "miss",
            ProbeOutcome::Stale => "stale",
        }
    }
}

/// Why a cache entry was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictReason {
    /// The byte budget forced an LRU eviction.
    Budget,
    /// A new entry replaced it under the same key.
    Replace,
    /// `clear()` dropped everything.
    Clear,
    /// Dependency revalidation found it stale.
    Invalidated,
}

impl EvictReason {
    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EvictReason::Budget => "budget",
            EvictReason::Replace => "replace",
            EvictReason::Clear => "clear",
            EvictReason::Invalidated => "invalidated",
        }
    }
}

/// Single-flight disposition of a request that missed the reply cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightRole {
    /// Elected leader: ran the build (or found the fresh cache entry).
    Leader,
    /// Blocked on a concurrent identical request and shared its reply.
    Coalesced,
}

impl FlightRole {
    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FlightRole::Leader => "leader",
            FlightRole::Coalesced => "coalesced",
        }
    }
}

/// What a span records. Interval spans carry a nonzero duration;
/// instant events (probes, flight dispositions, evictions) record a
/// point on the request timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// The whole request (root of the tree).
    Request,
    /// Blueprint evaluation.
    Eval,
    /// Building one shared library (placement + link + framing).
    LibraryBuild,
    /// Symbol binding + relocation (library or program image).
    Link,
    /// Constraint-solver placement.
    Placement,
    /// Image framing.
    Frame,
    /// Client-side mapping.
    Map,
    /// Client↔server IPC round trip.
    Ipc,
    /// A `dyn_lookup` request.
    DynLookup,
    /// One work unit of a parallel evaluation (runs on a worker lane).
    EvalUnit,
    /// A diff-driven incremental relink of the dirtied subgraph.
    RelinkPartial,
    /// One retained library reused (cached image + replayed placement)
    /// during an incremental relink.
    Reuse,
    /// Link-policy application (deny screening + stub interposition).
    Policy,
    /// A cache probe (instant).
    CacheProbe(CacheKind, ProbeOutcome),
    /// A cache eviction (instant).
    Evict(CacheKind, EvictReason),
    /// Single-flight disposition (instant).
    Flight(FlightRole),
}

impl SpanKind {
    /// Display label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Request => "request",
            SpanKind::Eval => "eval",
            SpanKind::LibraryBuild => "library-build",
            SpanKind::Link => "link",
            SpanKind::Placement => "placement",
            SpanKind::Frame => "frame",
            SpanKind::Map => "map",
            SpanKind::Ipc => "ipc",
            SpanKind::DynLookup => "dyn-lookup",
            SpanKind::EvalUnit => "eval-unit",
            SpanKind::RelinkPartial => "relink-partial",
            SpanKind::Reuse => "reuse",
            SpanKind::Policy => "policy",
            SpanKind::CacheProbe(..) => "cache-probe",
            SpanKind::Evict(..) => "evict",
            SpanKind::Flight(..) => "flight",
        }
    }

    /// True for zero-duration point events.
    #[must_use]
    pub fn is_instant(self) -> bool {
        matches!(
            self,
            SpanKind::CacheProbe(..) | SpanKind::Evict(..) | SpanKind::Flight(..)
        )
    }
}

/// One recorded span. Fixed-size: recording never allocates.
#[derive(Debug, Clone, Copy)]
pub struct SpanRecord {
    /// Request id the span belongs to (0 = outside any request).
    pub req: u64,
    /// Global record sequence number (monotone; ring eviction drops the
    /// lowest ones first).
    pub seq: u64,
    /// What happened.
    pub kind: SpanKind,
    /// Nesting depth within the request (the request span is depth 0).
    pub depth: u16,
    /// Start offset on the request's SimClock timeline, ns.
    pub start_ns: u64,
    /// Duration, ns (0 for instants).
    pub dur_ns: u64,
    /// Simulated worker lane (0 = the request's own thread; parallel
    /// evaluation/link units carry their scheduled lane, 1-based).
    pub worker: u16,
}

// --- Ring buffer -----------------------------------------------------------------

/// Fixed-capacity span store: the record's (pre-claimed) sequence
/// number doubles as the slot claim, and each slot is an independent
/// mutex so concurrent writers never contend on one lock. Memory is
/// bounded at construction; overwrite is oldest-first.
#[derive(Debug)]
struct Ring {
    slots: Box<[Mutex<Option<SpanRecord>>]>,
}

impl Ring {
    fn new(capacity: usize) -> Ring {
        Ring {
            slots: (0..capacity.max(1)).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// `r.seq` must already be claimed (seqs start at 1).
    fn push(&self, r: SpanRecord) {
        let i = (r.seq as usize - 1) % self.slots.len();
        *lock(&self.slots[i]) = Some(r);
    }

    fn snapshot(&self) -> Vec<SpanRecord> {
        let mut out: Vec<SpanRecord> = self.slots.iter().filter_map(|s| *lock(s)).collect();
        out.sort_by_key(|r| r.seq);
        out
    }
}

// --- Histograms -----------------------------------------------------------------

#[derive(Debug)]
struct Hist {
    buckets: Vec<AtomicU64>,
    sum_ns: AtomicU64,
}

impl Hist {
    fn new() -> Hist {
        Hist {
            buckets: (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum_ns: AtomicU64::new(0),
        }
    }

    /// Two relaxed RMWs on the hot path; the sample count is derived
    /// from the bucket totals at snapshot time instead of a third.
    fn record(&self, ns: u64) {
        let b = bucket_of(ns);
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }
}

fn bucket_of(ns: u64) -> usize {
    if ns == 0 {
        0
    } else {
        ((64 - ns.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

/// Upper bound (inclusive) of a histogram bucket, ns.
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 63 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// An immutable per-stage histogram snapshot.
#[derive(Debug, Clone)]
pub struct HistSnapshot {
    /// Which stage.
    pub stage: Stage,
    /// Samples recorded.
    pub count: u64,
    /// Total nanoseconds recorded.
    pub sum_ns: u64,
    /// Per-bucket counts (log₂ buckets, see [`HIST_BUCKETS`]).
    pub buckets: Vec<u64>,
}

impl HistSnapshot {
    /// An empty snapshot for `stage`.
    #[must_use]
    pub fn empty(stage: Stage) -> HistSnapshot {
        HistSnapshot {
            stage,
            count: 0,
            sum_ns: 0,
            buckets: vec![0; HIST_BUCKETS],
        }
    }

    /// The `q`-quantile (0.0..=1.0) as the upper bound of the bucket
    /// holding it — deterministic and conservative.
    #[must_use]
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(HIST_BUCKETS - 1)
    }

    /// Folds another snapshot of the same stage into this one (for
    /// merging histograms across servers in a benchmark sweep).
    pub fn merge(&mut self, other: &HistSnapshot) {
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += *b;
        }
    }
}

// --- Counters -----------------------------------------------------------------

macro_rules! counter_family {
    ($($(#[$doc:meta])* $name:ident),+ $(,)?) => {
        #[derive(Debug, Default)]
        struct CounterCells { $($name: AtomicU64,)+ }

        /// Snapshot of the tracer's counter families.
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
        pub struct TraceCounters { $($(#[$doc])* pub $name: u64,)+ }

        impl CounterCells {
            fn snapshot(&self) -> TraceCounters {
                TraceCounters { $($name: self.$name.load(Ordering::Relaxed),)+ }
            }
        }

        impl TraceCounters {
            /// `(name, value)` pairs in declaration order, for rendering.
            #[must_use]
            pub fn entries(&self) -> Vec<(&'static str, u64)> {
                vec![$((stringify!($name), self.$name),)+]
            }
        }
    };
}

counter_family! {
    /// Traced instantiation requests started.
    requests,
    /// Traced `dyn_lookup` requests started.
    dyn_lookups,
    /// Reply-cache probes.
    reply_probes,
    /// Reply-cache hits.
    reply_hits,
    /// Reply-cache misses (including stale drops).
    reply_misses,
    /// Reply-cache entries dropped by revalidation (subset of misses).
    reply_stale,
    /// Eval-cache probes.
    eval_probes,
    /// Eval-cache hits.
    eval_hits,
    /// Eval-cache misses (including stale drops).
    eval_misses,
    /// Eval-cache entries dropped by revalidation (subset of misses).
    eval_stale,
    /// Image-cache probes.
    image_probes,
    /// Image-cache hits.
    image_hits,
    /// Image-cache misses.
    image_misses,
    /// Image-cache evictions forced by the byte budget.
    image_evict_budget,
    /// Image-cache entries replaced under the same key.
    image_evict_replace,
    /// Image-cache entries dropped by `clear()`.
    image_evict_clear,
    /// Budget-evicted images sealed into the tier-2 spill store.
    tier2_spills,
    /// Image-cache misses answered by a verified tier-2 fault-in
    /// (subset of `image_misses`; no relink ran).
    tier2_fault_ins,
    /// Tier-2 fault-in attempts dropped by verification (file hash,
    /// frame checksum, or content hash mismatch); the image relinks.
    tier2_verify_drops,
    /// Reply/eval entries dropped because a dependency was touched.
    evict_invalidated,
    /// Requests that entered the reply single-flight.
    flight_entries,
    /// Single-flight leaders elected.
    flight_leaders,
    /// Single-flight followers coalesced.
    flight_coalesced,
    /// Client IPC round trips recorded.
    ipc_roundtrips,
    /// Pipelined batch frames flushed by clients.
    ipc_batches,
    /// Requests delivered inside those batch frames.
    ipc_batched_requests,
    /// Shared-memory mappings granted to clients (first sighting of a
    /// content key per session).
    shm_mappings,
    /// Bounded backpressure polls spent by ring writers.
    shm_backpressure_spins,
    /// Spans written to the ring (monotone; `min(spans_recorded,
    /// RING_CAPACITY)` are retained).
    spans_recorded,
    /// Namespace bindings rebuilt from a checkpoint manifest.
    restore_ns_entries,
    /// Cached images reinstalled from a checkpoint.
    restore_images,
    /// Reply-cache entries reinstalled from a checkpoint.
    restore_replies,
    /// Journal records replayed on restore.
    restore_journal,
    /// Persisted entries dropped on restore (corrupt, truncated,
    /// version-skewed, or referencing a dropped image) — each will be
    /// relinked on demand. Always the sum of the `restore_drop_*`
    /// families below.
    restore_dropped,
    /// Reply rows whose stored resolution manifest matched a fresh
    /// static re-derivation at restore time (installed without a
    /// relink).
    restore_manifest_verified,
    /// Restore drops: namespace frames that failed checksum or decode.
    restore_drop_ns_decode,
    /// Restore drops: image files missing or unreadable.
    restore_drop_image_read,
    /// Restore drops: image files whose bytes hash differently than
    /// the manifest row recorded.
    restore_drop_image_checksum,
    /// Restore drops: image frames that failed to open or decode.
    restore_drop_image_decode,
    /// Restore drops: decoded images whose content hash disagrees with
    /// the manifest row.
    restore_drop_image_content,
    /// Restore drops: torn journal tails (bytes skipped while
    /// resynchronizing).
    restore_drop_journal_torn,
    /// Restore drops: journal frames of a non-journal container kind.
    restore_drop_journal_kind,
    /// Restore drops: journal records that decoded but failed to apply.
    restore_drop_journal_apply,
    /// Restore drops: reply rows referencing an image that was itself
    /// dropped.
    restore_drop_reply_image,
    /// Restore drops: reply rows whose stored manifest failed static
    /// re-derivation (decode failure, eval failure, or divergence).
    restore_drop_reply_manifest,
    /// Restores that found no usable manifest and started cold.
    restore_cold,
    /// Stale-reply rebuilds served by the incremental relink engine
    /// (subset of `replies_built`; the rest went through the full path).
    relink_partials,
    /// Library images reused as-is during incremental relinks (cached
    /// image by content key + replayed retained placement; no linker).
    relink_reused_images,
    /// Libraries actually relinked during incremental relinks (the
    /// dirtied subgraph plus any reuse demoted by a cache miss).
    relink_relinked_libraries,
    /// Incremental relink attempts abandoned to the full rebuild path
    /// (plan/derivation anomaly or a final verification mismatch).
    relink_fallbacks,
    /// Cached replies patched in place by an incremental relink instead
    /// of being evicted wholesale.
    relink_patched_replies,
    /// Requests answered via a relink seed captured from a dropped
    /// restore row (relink-on-demand after a checkpoint restore).
    relink_seeded_restores,
    /// Simulated ns of link work *avoided* by incremental relinks: the
    /// recorded rebuild cost of every image reused as-is. Adding this
    /// to a relinked reply's `server_ns` reproduces exactly what a cold
    /// full relink of the same state would bill (the simulation is
    /// deterministic), so `recovery + avoided` is the honest
    /// full-relink comparison figure.
    relink_avoided_ns,
    /// Running processes live-patched after a rebind (quiesce, swap
    /// dirtied indirect-table entries, resume).
    live_updates,
    /// Indirect-table slots swapped across all live updates.
    live_slots_swapped,
    /// Blueprints rejected by a deny link policy (OM017).
    policy_denials,
    /// Trampoline interposition stubs inserted by link policies.
    policy_trampolines,
    /// Call-audit stubs inserted by link policies.
    policy_audits,
}

/// Per-reason breakdown of artifacts dropped during a checkpoint
/// restore. Every drop is safe — the artifact relinks on demand — but
/// the reasons separate disk damage (`image_*`), journal damage
/// (`journal_*`), and logical divergence (`reply_manifest`), which
/// call for different operator responses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RestoreDrops {
    /// Namespace frames that failed checksum or decode.
    pub ns_decode: u64,
    /// Image files missing or unreadable.
    pub image_read: u64,
    /// Image files whose bytes hash differently than the manifest row.
    pub image_checksum: u64,
    /// Image frames that failed to open or decode.
    pub image_decode: u64,
    /// Decoded images whose content hash disagrees with the row.
    pub image_content: u64,
    /// Torn journal tails (bytes skipped while resynchronizing).
    pub journal_torn: u64,
    /// Journal frames of a non-journal container kind.
    pub journal_kind: u64,
    /// Journal records that decoded but failed to apply.
    pub journal_apply: u64,
    /// Reply rows referencing an image that was itself dropped.
    pub reply_image: u64,
    /// Reply rows whose stored resolution manifest did not survive
    /// static re-derivation (decode failure, eval failure, or a
    /// manifest that no longer matches).
    pub reply_manifest: u64,
}

impl RestoreDrops {
    /// Total drops across every reason.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.ns_decode
            + self.image_read
            + self.image_checksum
            + self.image_decode
            + self.image_content
            + self.journal_torn
            + self.journal_kind
            + self.journal_apply
            + self.reply_image
            + self.reply_manifest
    }
}

/// A full tracer snapshot: counters, per-stage histograms, and the
/// retained span records (seq-ordered).
#[derive(Debug, Clone)]
pub struct TraceSnapshot {
    /// Counter families.
    pub counters: TraceCounters,
    /// One histogram per [`Stage`], in `Stage::ALL` order.
    pub stages: Vec<HistSnapshot>,
    /// Retained spans, oldest first.
    pub spans: Vec<SpanRecord>,
    /// Ring capacity (overwrite horizon).
    pub ring_capacity: usize,
}

impl TraceSnapshot {
    /// The histogram for `stage`.
    #[must_use]
    pub fn stage(&self, stage: Stage) -> &HistSnapshot {
        &self.stages[stage.index()]
    }

    /// Spans belonging to request `req`, seq-ordered.
    #[must_use]
    pub fn request_spans(&self, req: u64) -> Vec<SpanRecord> {
        self.spans
            .iter()
            .copied()
            .filter(|s| s.req == req)
            .collect()
    }
}

// --- Thread-local request context --------------------------------------------

#[derive(Debug, Clone, Copy)]
struct ReqState {
    req: u64,
    cursor_ns: u64,
    depth: u16,
}

thread_local! {
    /// Stack of active requests on this thread (nested requests — e.g.
    /// `query_symbols` instantiating internally — push and pop).
    static ACTIVE: RefCell<Vec<ReqState>> = const { RefCell::new(Vec::new()) };
}

/// An open interval span; closed by [`Tracer::close`] or
/// [`Tracer::close_leaf`]. Dropping one without closing loses the
/// record but cannot corrupt the tracer.
#[derive(Debug)]
#[must_use]
pub struct OpenSpan {
    kind: SpanKind,
    req: u64,
    start_ns: u64,
    depth: u16,
}

/// Guard for one traced request; closes the root request span (and
/// records the request histogram) on drop.
#[derive(Debug)]
pub struct ReqGuard<'a> {
    tracer: &'a Tracer,
    req: u64,
    kind: SpanKind,
    active: bool,
}

impl ReqGuard<'_> {
    /// The request id spans are attributed to (0 when tracing is off).
    #[must_use]
    pub fn req(&self) -> u64 {
        self.req
    }
}

impl Drop for ReqGuard<'_> {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let state = ACTIVE.with(|a| a.borrow_mut().pop());
        if let Some(state) = state {
            self.tracer.push_record(SpanRecord {
                req: self.req,
                seq: 0, // assigned by push_record
                kind: self.kind,
                depth: 0,
                start_ns: 0,
                dur_ns: state.cursor_ns,
                worker: 0,
            });
            self.tracer.hist(Stage::Request).record(state.cursor_ns);
        }
    }
}

// --- The tracer -----------------------------------------------------------------

/// The tracing and metrics hub one server owns.
#[derive(Debug)]
pub struct Tracer {
    enabled: AtomicBool,
    next_req: AtomicU64,
    seq: AtomicU64,
    ring: Ring,
    hists: Vec<Hist>,
    c: CounterCells,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

impl Tracer {
    /// A tracer with the default ring capacity, enabled.
    #[must_use]
    pub fn new() -> Tracer {
        Tracer::with_capacity(RING_CAPACITY)
    }

    /// A tracer with an explicit ring capacity.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Tracer {
        Tracer {
            enabled: AtomicBool::new(true),
            next_req: AtomicU64::new(1),
            seq: AtomicU64::new(1),
            ring: Ring::new(capacity),
            hists: (0..Stage::ALL.len()).map(|_| Hist::new()).collect(),
            c: CounterCells::default(),
        }
    }

    /// Turns recording on or off. Off, every hook is a cheap
    /// early-return: no counters, no histograms, no ring writes.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether recording is on.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    fn hist(&self, stage: Stage) -> &Hist {
        &self.hists[stage.index()]
    }

    /// Hot path: the `spans_recorded` counter is derived from `seq` at
    /// snapshot time rather than bumped per record.
    fn push_record(&self, mut r: SpanRecord) {
        r.seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.ring.push(r);
    }

    fn with_state<T>(&self, f: impl FnOnce(&mut ReqState) -> T) -> Option<T> {
        ACTIVE.with(|a| a.borrow_mut().last_mut().map(f))
    }

    /// Opens the root span of a traced request. `dyn_lookup` passes
    /// `SpanKind::DynLookup`; instantiation paths pass
    /// `SpanKind::Request`.
    pub fn begin_request(&self, kind: SpanKind) -> ReqGuard<'_> {
        if !self.enabled() {
            return ReqGuard {
                tracer: self,
                req: 0,
                kind,
                active: false,
            };
        }
        // `requests` is derived from `next_req - dyn_lookups` at
        // snapshot time; only the rarer dyn-lookup path pays a counter.
        if kind == SpanKind::DynLookup {
            self.c.dyn_lookups.fetch_add(1, Ordering::Relaxed);
        }
        let req = self.next_req.fetch_add(1, Ordering::Relaxed);
        ACTIVE.with(|a| {
            a.borrow_mut().push(ReqState {
                req,
                cursor_ns: 0,
                depth: 1,
            });
        });
        ReqGuard {
            tracer: self,
            req,
            kind,
            active: true,
        }
    }

    /// Opens a nested interval span at the current cursor.
    pub fn open(&self, kind: SpanKind) -> OpenSpan {
        let state = if self.enabled() {
            self.with_state(|s| {
                let at = (s.req, s.cursor_ns, s.depth);
                s.depth += 1;
                at
            })
        } else {
            None
        };
        match state {
            Some((req, start_ns, depth)) => OpenSpan {
                kind,
                req,
                start_ns,
                depth,
            },
            None => OpenSpan {
                kind,
                req: 0,
                start_ns: 0,
                depth: 0,
            },
        }
    }

    /// Closes an interval span: duration is however far the cursor
    /// advanced since it opened (i.e. the sum of its leaf children).
    pub fn close(&self, span: OpenSpan) {
        if span.req == 0 {
            return;
        }
        let end = self
            .with_state(|s| {
                s.depth = s.depth.saturating_sub(1);
                s.cursor_ns
            })
            .unwrap_or(span.start_ns);
        self.push_record(SpanRecord {
            req: span.req,
            seq: 0,
            kind: span.kind,
            depth: span.depth,
            start_ns: span.start_ns,
            dur_ns: end.saturating_sub(span.start_ns),
            worker: 0,
        });
    }

    /// Closes a *leaf* span, advancing the request cursor by `ns` and
    /// recording `ns` into `stage`'s histogram.
    pub fn close_leaf(&self, span: OpenSpan, stage: Stage, ns: u64) {
        if span.req == 0 {
            return;
        }
        self.with_state(|s| {
            s.cursor_ns += ns;
            s.depth = s.depth.saturating_sub(1);
        });
        self.hist(stage).record(ns);
        self.push_record(SpanRecord {
            req: span.req,
            seq: 0,
            kind: span.kind,
            depth: span.depth,
            start_ns: span.start_ns,
            dur_ns: ns,
            worker: 0,
        });
    }

    /// Advances the request cursor without a span (baseline request
    /// handling charged to no particular stage).
    pub fn advance(&self, ns: u64) {
        if self.enabled() {
            self.with_state(|s| s.cursor_ns += ns);
        }
    }

    /// Records a span at `cursor + start_offset_ns` on worker lane
    /// `worker` *without* moving the cursor or touching any histogram.
    /// Parallel evaluation lays its concurrently-executed units out
    /// this way: the cursor advances once by the schedule's makespan
    /// (critical-path billing), while each unit's span shows where on
    /// which lane it ran.
    pub fn span_at(&self, kind: SpanKind, start_offset_ns: u64, dur_ns: u64, worker: u16) {
        if !self.enabled() {
            return;
        }
        let at = self.with_state(|s| (s.req, s.cursor_ns, s.depth));
        if let Some((req, cursor, depth)) = at {
            self.push_record(SpanRecord {
                req,
                seq: 0,
                kind,
                depth,
                start_ns: cursor + start_offset_ns,
                dur_ns,
                worker,
            });
        }
    }

    /// Records `ns` into `stage`'s histogram without a span or cursor
    /// movement. The parallel path uses this to keep per-stage
    /// histograms identical to sequential execution while the timeline
    /// shows overlapped spans.
    pub fn note(&self, stage: Stage, ns: u64) {
        if self.enabled() {
            self.hist(stage).record(ns);
        }
    }

    /// Records an instant event at the current cursor.
    fn instant(&self, kind: SpanKind) {
        let at = self.with_state(|s| (s.req, s.cursor_ns, s.depth));
        if let Some((req, cursor, depth)) = at {
            self.push_record(SpanRecord {
                req,
                seq: 0,
                kind,
                depth,
                start_ns: cursor,
                dur_ns: 0,
                worker: 0,
            });
        }
    }

    /// Records a cache probe. Hits are counter-only — they are the
    /// steady-state fast path, and a hit marker adds nothing a root
    /// span with a cached duration doesn't already say. Misses and
    /// stale drops additionally put an instant on the timeline, so the
    /// interesting (cold/invalidated) trees show *why* work happened.
    /// The per-cache `probes` counter is derived as `hits + misses` at
    /// snapshot time.
    pub fn probe(&self, cache: CacheKind, outcome: ProbeOutcome) {
        if !self.enabled() {
            return;
        }
        let (h, m, st) = match cache {
            CacheKind::Reply => (
                &self.c.reply_hits,
                &self.c.reply_misses,
                Some(&self.c.reply_stale),
            ),
            CacheKind::Eval => (
                &self.c.eval_hits,
                &self.c.eval_misses,
                Some(&self.c.eval_stale),
            ),
            CacheKind::Image => (&self.c.image_hits, &self.c.image_misses, None),
        };
        match outcome {
            ProbeOutcome::Hit => {
                h.fetch_add(1, Ordering::Relaxed);
                return;
            }
            ProbeOutcome::Miss => {
                m.fetch_add(1, Ordering::Relaxed);
            }
            ProbeOutcome::Stale => {
                m.fetch_add(1, Ordering::Relaxed);
                if let Some(st) = st {
                    st.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        self.instant(SpanKind::CacheProbe(cache, outcome));
    }

    /// Records `n` evictions with their reason.
    pub fn evict(&self, cache: CacheKind, reason: EvictReason, n: u64) {
        if !self.enabled() || n == 0 {
            return;
        }
        let cell = match (cache, reason) {
            (CacheKind::Image, EvictReason::Budget) => &self.c.image_evict_budget,
            (CacheKind::Image, EvictReason::Replace) => &self.c.image_evict_replace,
            (CacheKind::Image, EvictReason::Clear) => &self.c.image_evict_clear,
            _ => &self.c.evict_invalidated,
        };
        cell.fetch_add(n, Ordering::Relaxed);
        self.instant(SpanKind::Evict(cache, reason));
    }

    /// Records tier-2 spill traffic: images sealed into the spill
    /// store, misses answered by verified fault-in, and fault-in
    /// attempts dropped by verification.
    pub fn tier2(&self, spills: u64, fault_ins: u64, verify_drops: u64) {
        if !self.enabled() {
            return;
        }
        self.c.tier2_spills.fetch_add(spills, Ordering::Relaxed);
        self.c
            .tier2_fault_ins
            .fetch_add(fault_ins, Ordering::Relaxed);
        self.c
            .tier2_verify_drops
            .fetch_add(verify_drops, Ordering::Relaxed);
    }

    /// Records the outcome of a checkpoint restore: how many namespace
    /// bindings, images, and replies came back, how many journal
    /// records replayed, how many reply manifests re-verified, the
    /// per-reason drop breakdown (each drop degrades to an on-demand
    /// relink), and whether the restore fell back to a cold start.
    #[allow(clippy::too_many_arguments)]
    pub fn restore(
        &self,
        ns: u64,
        images: u64,
        replies: u64,
        journal: u64,
        verified: u64,
        drops: &RestoreDrops,
        cold: bool,
    ) {
        if !self.enabled() {
            return;
        }
        self.c.restore_ns_entries.fetch_add(ns, Ordering::Relaxed);
        self.c.restore_images.fetch_add(images, Ordering::Relaxed);
        self.c.restore_replies.fetch_add(replies, Ordering::Relaxed);
        self.c.restore_journal.fetch_add(journal, Ordering::Relaxed);
        self.c
            .restore_manifest_verified
            .fetch_add(verified, Ordering::Relaxed);
        self.c
            .restore_dropped
            .fetch_add(drops.total(), Ordering::Relaxed);
        for (cell, n) in [
            (&self.c.restore_drop_ns_decode, drops.ns_decode),
            (&self.c.restore_drop_image_read, drops.image_read),
            (&self.c.restore_drop_image_checksum, drops.image_checksum),
            (&self.c.restore_drop_image_decode, drops.image_decode),
            (&self.c.restore_drop_image_content, drops.image_content),
            (&self.c.restore_drop_journal_torn, drops.journal_torn),
            (&self.c.restore_drop_journal_kind, drops.journal_kind),
            (&self.c.restore_drop_journal_apply, drops.journal_apply),
            (&self.c.restore_drop_reply_image, drops.reply_image),
            (&self.c.restore_drop_reply_manifest, drops.reply_manifest),
        ] {
            cell.fetch_add(n, Ordering::Relaxed);
        }
        if cold {
            self.c.restore_cold.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records the outcome of one incremental relink: how many library
    /// images were reused as-is, how many relinked, and whether the
    /// reply-cache entry was patched in place.
    pub fn relink(&self, reused: u64, relinked: u64, patched: bool, seeded: bool, avoided_ns: u64) {
        if !self.enabled() {
            return;
        }
        self.c.relink_partials.fetch_add(1, Ordering::Relaxed);
        self.c
            .relink_reused_images
            .fetch_add(reused, Ordering::Relaxed);
        self.c
            .relink_avoided_ns
            .fetch_add(avoided_ns, Ordering::Relaxed);
        self.c
            .relink_relinked_libraries
            .fetch_add(relinked, Ordering::Relaxed);
        if patched {
            self.c
                .relink_patched_replies
                .fetch_add(1, Ordering::Relaxed);
        }
        if seeded {
            self.c
                .relink_seeded_restores
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records the outcome of one link-policy application: stubs
    /// inserted (by kind) or a deny rejection.
    pub fn policy(&self, trampolines: u64, audits: u64, denied: bool) {
        if !self.enabled() {
            return;
        }
        self.c
            .policy_trampolines
            .fetch_add(trampolines, Ordering::Relaxed);
        self.c.policy_audits.fetch_add(audits, Ordering::Relaxed);
        if denied {
            self.c.policy_denials.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records an incremental relink attempt that fell back to the full
    /// rebuild path.
    pub fn relink_fallback(&self) {
        if self.enabled() {
            self.c.relink_fallbacks.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one live process update and the slots it swapped.
    pub fn live_update(&self, slots_swapped: u64) {
        if !self.enabled() {
            return;
        }
        self.c.live_updates.fetch_add(1, Ordering::Relaxed);
        self.c
            .live_slots_swapped
            .fetch_add(slots_swapped, Ordering::Relaxed);
    }

    /// Records this request's single-flight disposition. Followers pass
    /// the nanoseconds they waited for the leader (advances the cursor
    /// so the request span covers the wait).
    pub fn flight(&self, role: FlightRole, waited_ns: u64) {
        if !self.enabled() {
            return;
        }
        self.c.flight_entries.fetch_add(1, Ordering::Relaxed);
        match role {
            FlightRole::Leader => self.c.flight_leaders.fetch_add(1, Ordering::Relaxed),
            FlightRole::Coalesced => self.c.flight_coalesced.fetch_add(1, Ordering::Relaxed),
        };
        self.instant(SpanKind::Flight(role));
        if waited_ns > 0 {
            self.with_state(|s| s.cursor_ns += waited_ns);
        }
    }

    /// Records a client-side span (IPC round trip or mapping) against a
    /// finished request by id. These are roots of their own (depth 0):
    /// the client timeline is not nested inside the server's.
    pub fn client_span(&self, req: u64, stage: Stage, ns: u64) {
        if !self.enabled() {
            return;
        }
        if stage == Stage::Ipc {
            self.c.ipc_roundtrips.fetch_add(1, Ordering::Relaxed);
        }
        self.hist(stage).record(ns);
        let kind = match stage {
            Stage::Map => SpanKind::Map,
            _ => SpanKind::Ipc,
        };
        self.push_record(SpanRecord {
            req,
            seq: 0,
            kind,
            depth: 0,
            start_ns: 0,
            dur_ns: ns,
            worker: 0,
        });
    }

    /// Folds a client session's transport statistics into the trace
    /// counters (batch frames, grants, backpressure). Call once per
    /// session or per delta — the stats are cumulative on the session
    /// side, so pass the increment, not the running total, when folding
    /// repeatedly.
    pub fn client_ipc(&self, stats: &omos_os::ipc::IpcStats) {
        if !self.enabled() {
            return;
        }
        self.c
            .ipc_batches
            .fetch_add(stats.batches, Ordering::Relaxed);
        self.c
            .ipc_batched_requests
            .fetch_add(stats.batched_requests, Ordering::Relaxed);
        self.c
            .shm_mappings
            .fetch_add(stats.mappings, Ordering::Relaxed);
        self.c
            .shm_backpressure_spins
            .fetch_add(stats.backpressure_spins, Ordering::Relaxed);
    }

    /// A consistent-enough snapshot of everything the tracer holds.
    /// Counters that are pure functions of other cells (`requests`,
    /// `spans_recorded`, histogram sample counts) are reconstructed
    /// here so the record paths stay lean.
    #[must_use]
    pub fn snapshot(&self) -> TraceSnapshot {
        let mut counters = self.c.snapshot();
        counters.spans_recorded = self.seq.load(Ordering::Relaxed) - 1;
        counters.requests =
            (self.next_req.load(Ordering::Relaxed) - 1).saturating_sub(counters.dyn_lookups);
        counters.reply_probes = counters.reply_hits + counters.reply_misses;
        counters.eval_probes = counters.eval_hits + counters.eval_misses;
        counters.image_probes = counters.image_hits + counters.image_misses;
        TraceSnapshot {
            counters,
            stages: Stage::ALL
                .iter()
                .map(|&stage| {
                    let h = self.hist(stage);
                    let buckets: Vec<u64> = h
                        .buckets
                        .iter()
                        .map(|b| b.load(Ordering::Relaxed))
                        .collect();
                    HistSnapshot {
                        stage,
                        count: buckets.iter().sum(),
                        sum_ns: h.sum_ns.load(Ordering::Relaxed),
                        buckets,
                    }
                })
                .collect(),
            spans: self.ring.snapshot(),
            ring_capacity: self.ring.slots.len(),
        }
    }

    /// Counters only — no histogram or span-ring copies. Cheap enough
    /// to sample around every request in a benchmark drive loop.
    #[must_use]
    pub fn counters(&self) -> TraceCounters {
        self.c.snapshot()
    }
}

// --- Rendering -----------------------------------------------------------------

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn span_line(s: &SpanRecord) -> String {
    match s.kind {
        SpanKind::CacheProbe(cache, outcome) => {
            format!("{}-cache probe: {}", cache.name(), outcome.name())
        }
        SpanKind::Evict(cache, reason) => {
            format!("{}-cache evict: {}", cache.name(), reason.name())
        }
        SpanKind::Flight(role) => format!("single-flight: {}", role.name()),
        kind => format!("{} ({})", kind.label(), fmt_ns(s.dur_ns)),
    }
}

/// Renders one request's spans as an indented tree. Spans must all
/// belong to the same request (see [`TraceSnapshot::request_spans`]).
#[must_use]
pub fn render_tree(spans: &[SpanRecord]) -> String {
    let mut ordered: Vec<&SpanRecord> = spans.iter().collect();
    // Parents start no later than their children and sit at lower
    // depth; parallel siblings order by start cursor then worker lane
    // (not completion order), so output is stable across runs; ties
    // fall back to record order.
    ordered.sort_by(|a, b| {
        a.start_ns
            .cmp(&b.start_ns)
            .then(a.depth.cmp(&b.depth))
            .then(a.worker.cmp(&b.worker))
            .then(a.seq.cmp(&b.seq))
    });
    let mut out = String::new();
    for s in ordered {
        let indent = "  ".repeat(s.depth as usize);
        let at = if s.kind.is_instant() {
            format!(" @ {}", fmt_ns(s.start_ns))
        } else {
            String::new()
        };
        let lane = if s.worker > 0 {
            format!(" [w{}]", s.worker)
        } else {
            String::new()
        };
        let _ = writeln!(out, "{indent}{}{lane}{at}", span_line(s));
    }
    out
}

/// Renders counters and per-stage percentiles as a table (the body of
/// `ofe stats`).
#[must_use]
pub fn render_stats(snap: &TraceSnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:>8} {:>12} {:>12} {:>12} {:>12}",
        "stage", "count", "p50", "p95", "p99", "mean"
    );
    for h in &snap.stages {
        if h.count == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "{:<12} {:>8} {:>12} {:>12} {:>12} {:>12}",
            h.stage.name(),
            h.count,
            fmt_ns(h.percentile(0.50)),
            fmt_ns(h.percentile(0.95)),
            fmt_ns(h.percentile(0.99)),
            fmt_ns(h.sum_ns / h.count),
        );
    }
    let _ = writeln!(out);
    for (name, v) in snap.counters.entries() {
        if v > 0 {
            let _ = writeln!(out, "{name:<24} {v}");
        }
    }
    out
}

/// Exports spans in Chrome trace format (the JSON Array-of-events
/// flavor wrapped in `traceEvents`); open in `about://tracing` or
/// Perfetto. Timestamps are microseconds on each request's own track
/// (`tid` = request id).
#[must_use]
pub fn chrome_json(spans: &[SpanRecord]) -> String {
    let mut out = String::from("{\"traceEvents\": [\n");
    let mut first = true;
    for s in spans {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let ts = s.start_ns as f64 / 1e3;
        if s.kind.is_instant() {
            let _ = write!(
                out,
                "  {{\"name\": \"{}\", \"cat\": \"omos\", \"ph\": \"i\", \"s\": \"t\", \
                 \"ts\": {ts:.3}, \"pid\": 1, \"tid\": {}, \"args\": {{\"seq\": {}}}}}",
                chrome_name(s),
                s.req,
                s.seq
            );
        } else {
            let _ = write!(
                out,
                "  {{\"name\": \"{}\", \"cat\": \"omos\", \"ph\": \"X\", \"ts\": {ts:.3}, \
                 \"dur\": {:.3}, \"pid\": 1, \"tid\": {}, \"args\": {{\"seq\": {}, \"worker\": {}}}}}",
                chrome_name(s),
                s.dur_ns as f64 / 1e3,
                s.req,
                s.seq,
                s.worker
            );
        }
    }
    out.push_str("\n]}\n");
    out
}

fn chrome_name(s: &SpanRecord) -> String {
    match s.kind {
        SpanKind::CacheProbe(cache, outcome) => {
            format!("probe:{}:{}", cache.name(), outcome.name())
        }
        SpanKind::Evict(cache, reason) => format!("evict:{}:{}", cache.name(), reason.name()),
        SpanKind::Flight(role) => format!("flight:{}", role.name()),
        kind => kind.label().to_string(),
    }
}

// --- Minimal JSON parser ------------------------------------------------------

/// A small JSON reader: enough to validate trace exports and let
/// `ofe stats` read `BENCH_CONCURRENCY.json` without serde.
pub mod json {
    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Json {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Any number (as f64).
        Num(f64),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Json>),
        /// An object (insertion-ordered).
        Obj(Vec<(String, Json)>),
    }

    impl Json {
        /// Member lookup on objects.
        #[must_use]
        pub fn get(&self, key: &str) -> Option<&Json> {
            match self {
                Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// The value as a number, if it is one.
        #[must_use]
        pub fn as_num(&self) -> Option<f64> {
            match self {
                Json::Num(n) => Some(*n),
                _ => None,
            }
        }

        /// The value as a string, if it is one.
        #[must_use]
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Json::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The value as an array, if it is one.
        #[must_use]
        pub fn as_arr(&self) -> Option<&[Json]> {
            match self {
                Json::Arr(v) => Some(v),
                _ => None,
            }
        }
    }

    /// Parses a complete JSON document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes: Vec<char> = text.chars().collect();
        let mut p = Parser { c: bytes, i: 0 };
        p.ws();
        let v = p.value()?;
        p.ws();
        if p.i != p.c.len() {
            return Err(format!("trailing data at char {}", p.i));
        }
        Ok(v)
    }

    struct Parser {
        c: Vec<char>,
        i: usize,
    }

    impl Parser {
        fn ws(&mut self) {
            while self.c.get(self.i).is_some_and(|c| c.is_ascii_whitespace()) {
                self.i += 1;
            }
        }

        fn eat(&mut self, lit: &str) -> Result<(), String> {
            for ch in lit.chars() {
                if self.c.get(self.i) != Some(&ch) {
                    return Err(format!("expected `{lit}` at char {}", self.i));
                }
                self.i += 1;
            }
            Ok(())
        }

        fn value(&mut self) -> Result<Json, String> {
            match self.c.get(self.i) {
                None => Err("unexpected end of input".into()),
                Some('n') => self.eat("null").map(|()| Json::Null),
                Some('t') => self.eat("true").map(|()| Json::Bool(true)),
                Some('f') => self.eat("false").map(|()| Json::Bool(false)),
                Some('"') => self.string().map(Json::Str),
                Some('[') => self.array(),
                Some('{') => self.object(),
                Some(_) => self.number(),
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.eat("\"")?;
            let mut out = String::new();
            loop {
                match self.c.get(self.i) {
                    None => return Err("unterminated string".into()),
                    Some('"') => {
                        self.i += 1;
                        return Ok(out);
                    }
                    Some('\\') => {
                        self.i += 1;
                        match self.c.get(self.i) {
                            Some('n') => out.push('\n'),
                            Some('t') => out.push('\t'),
                            Some('r') => out.push('\r'),
                            Some('u') => {
                                let hex: String = self
                                    .c
                                    .get(self.i + 1..self.i + 5)
                                    .unwrap_or(&[])
                                    .iter()
                                    .collect();
                                let code = u32::from_str_radix(&hex, 16)
                                    .map_err(|_| "bad \\u escape".to_string())?;
                                out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                                self.i += 4;
                            }
                            Some(&c) => out.push(c),
                            None => return Err("dangling escape".into()),
                        }
                        self.i += 1;
                    }
                    Some(&c) => {
                        out.push(c);
                        self.i += 1;
                    }
                }
            }
        }

        fn number(&mut self) -> Result<Json, String> {
            let start = self.i;
            while self
                .c
                .get(self.i)
                .is_some_and(|&c| c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
            {
                self.i += 1;
            }
            let s: String = self.c[start..self.i].iter().collect();
            s.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number `{s}` at char {start}"))
        }

        fn array(&mut self) -> Result<Json, String> {
            self.eat("[")?;
            let mut items = Vec::new();
            self.ws();
            if self.c.get(self.i) == Some(&']') {
                self.i += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                self.ws();
                items.push(self.value()?);
                self.ws();
                match self.c.get(self.i) {
                    Some(',') => self.i += 1,
                    Some(']') => {
                        self.i += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at char {}", self.i)),
                }
            }
        }

        fn object(&mut self) -> Result<Json, String> {
            self.eat("{")?;
            let mut members = Vec::new();
            self.ws();
            if self.c.get(self.i) == Some(&'}') {
                self.i += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                self.ws();
                let key = self.string()?;
                self.ws();
                self.eat(":")?;
                self.ws();
                let val = self.value()?;
                members.push((key, val));
                self.ws();
                match self.c.get(self.i) {
                    Some(',') => self.i += 1,
                    Some('}') => {
                        self.i += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected `,` or `}}` at char {}", self.i)),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_close() {
        let t = Tracer::new();
        let g = t.begin_request(SpanKind::Request);
        let req = g.req();
        assert!(req > 0);
        t.probe(CacheKind::Reply, ProbeOutcome::Miss);
        let eval = t.open(SpanKind::Eval);
        t.close_leaf(eval, Stage::Eval, 1_000);
        let lib = t.open(SpanKind::LibraryBuild);
        let place = t.open(SpanKind::Placement);
        t.close_leaf(place, Stage::Placement, 200);
        let link = t.open(SpanKind::Link);
        t.close_leaf(link, Stage::Link, 3_000);
        t.close(lib);
        drop(g);

        let snap = t.snapshot();
        let spans = snap.request_spans(req);
        assert_eq!(spans.len(), 6);
        let root = spans.iter().find(|s| s.kind == SpanKind::Request).unwrap();
        assert_eq!(root.dur_ns, 4_200);
        assert_eq!(root.depth, 0);
        let lib = spans
            .iter()
            .find(|s| s.kind == SpanKind::LibraryBuild)
            .unwrap();
        assert_eq!((lib.start_ns, lib.dur_ns, lib.depth), (1_000, 3_200, 1));
        let place = spans
            .iter()
            .find(|s| s.kind == SpanKind::Placement)
            .unwrap();
        assert_eq!((place.start_ns, place.dur_ns, place.depth), (1_000, 200, 2));
        // Histograms saw each leaf once and the request total.
        assert_eq!(snap.stage(Stage::Eval).count, 1);
        assert_eq!(snap.stage(Stage::Request).sum_ns, 4_200);
        assert_eq!(snap.counters.reply_probes, 1);
        assert_eq!(snap.counters.reply_misses, 1);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new();
        t.set_enabled(false);
        let g = t.begin_request(SpanKind::Request);
        assert_eq!(g.req(), 0);
        t.probe(CacheKind::Image, ProbeOutcome::Hit);
        let s = t.open(SpanKind::Eval);
        t.close_leaf(s, Stage::Eval, 500);
        drop(g);
        let snap = t.snapshot();
        assert!(snap.spans.is_empty());
        assert_eq!(snap.counters, TraceCounters::default());
        assert_eq!(snap.stage(Stage::Eval).count, 0);
    }

    #[test]
    fn ring_overwrites_oldest() {
        let t = Tracer::with_capacity(4);
        let g = t.begin_request(SpanKind::Request);
        for _ in 0..10 {
            // Misses record instants (hits are counter-only).
            t.probe(CacheKind::Reply, ProbeOutcome::Miss);
        }
        drop(g);
        let snap = t.snapshot();
        assert_eq!(snap.spans.len(), 4);
        assert_eq!(snap.counters.spans_recorded, 11);
        // The retained records are the newest, in seq order.
        let seqs: Vec<u64> = snap.spans.iter().map(|s| s.seq).collect();
        assert!(seqs.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*seqs.last().unwrap() as usize, 11);
    }

    #[test]
    fn percentiles_are_bucket_upper_bounds() {
        let t = Tracer::new();
        let g = t.begin_request(SpanKind::Request);
        for ns in [10, 100, 1_000, 10_000, 100_000] {
            let s = t.open(SpanKind::Eval);
            t.close_leaf(s, Stage::Eval, ns);
        }
        drop(g);
        let h = t.snapshot().stage(Stage::Eval).clone();
        assert_eq!(h.count, 5);
        assert!(h.percentile(0.5) >= 1_000 && h.percentile(0.5) < 2_048);
        assert!(h.percentile(0.99) >= 100_000);
        assert!(h.percentile(0.5) <= h.percentile(0.95));
        assert_eq!(HistSnapshot::empty(Stage::Eval).percentile(0.5), 0);
    }

    #[test]
    fn histogram_merge_folds_counts() {
        let mut a = HistSnapshot::empty(Stage::Link);
        let mut b = HistSnapshot::empty(Stage::Link);
        a.count = 2;
        a.sum_ns = 100;
        a.buckets[3] = 2;
        b.count = 1;
        b.sum_ns = 50;
        b.buckets[3] = 1;
        a.merge(&b);
        assert_eq!((a.count, a.sum_ns, a.buckets[3]), (3, 150, 3));
    }

    #[test]
    fn chrome_export_is_valid_json() {
        let t = Tracer::new();
        let g = t.begin_request(SpanKind::Request);
        let req = g.req();
        t.probe(CacheKind::Reply, ProbeOutcome::Miss);
        let e = t.open(SpanKind::Eval);
        t.close_leaf(e, Stage::Eval, 42_000);
        drop(g);
        t.client_span(req, Stage::Ipc, 7_000);
        let snap = t.snapshot();
        let j = chrome_json(&snap.spans);
        let parsed = json::parse(&j).expect("chrome export parses");
        let events = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 4);
        assert!(events.iter().any(|e| {
            e.get("ph").and_then(Json::as_str) == Some("X")
                && e.get("name").and_then(Json::as_str) == Some("eval")
        }));
        use json::Json;
        assert!(events
            .iter()
            .any(|e| e.get("name").and_then(Json::as_str) == Some("probe:reply:miss")));
    }

    #[test]
    fn tree_rendering_indents_by_depth() {
        let t = Tracer::new();
        let g = t.begin_request(SpanKind::Request);
        let req = g.req();
        let lib = t.open(SpanKind::LibraryBuild);
        let place = t.open(SpanKind::Placement);
        t.close_leaf(place, Stage::Placement, 100);
        t.close(lib);
        drop(g);
        let tree = render_tree(&t.snapshot().request_spans(req));
        let lines: Vec<&str> = tree.lines().collect();
        assert!(lines[0].starts_with("request ("));
        assert!(lines[1].starts_with("  library-build"));
        assert!(lines[2].starts_with("    placement"));
    }

    #[test]
    fn flight_and_eviction_counters() {
        let t = Tracer::new();
        let g = t.begin_request(SpanKind::Request);
        t.flight(FlightRole::Leader, 0);
        t.evict(CacheKind::Image, EvictReason::Budget, 3);
        t.evict(CacheKind::Reply, EvictReason::Invalidated, 1);
        drop(g);
        let g2 = t.begin_request(SpanKind::Request);
        t.flight(FlightRole::Coalesced, 5_000);
        drop(g2);
        let c = t.snapshot().counters;
        assert_eq!(c.flight_entries, c.flight_leaders + c.flight_coalesced);
        assert_eq!(c.image_evict_budget, 3);
        assert_eq!(c.evict_invalidated, 1);
    }

    #[test]
    fn json_parser_handles_the_shapes_we_emit() {
        use json::{parse, Json};
        let v = parse(r#"{"a": [1, 2.5, -3e2], "b": "x\ny", "c": true, "d": null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("c"), Some(&Json::Bool(true)));
        assert_eq!(v.get("d"), Some(&Json::Null));
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} trailing").is_err());
    }
}
