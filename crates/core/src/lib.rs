//! The OMOS object/meta-object server.
//!
//! This crate is the paper's primary contribution: "a shared library
//! implementation based on OMOS, an Object/Meta-Object Server, which
//! provides program linking and loading facilities as a special case of
//! generic object instantiation."
//!
//! * [`namespace`] — the "hierarchical namespace, whose names represent
//!   meta-objects, executable code fragments, or directories";
//! * [`cache`] — the multi-level cache: OMOS "treats executable images as
//!   a cache, translating from more expressive forms as necessary";
//! * [`server`] — the [`server::Omos`] server: blueprint instantiation,
//!   constraint-driven library placement, the self-contained and
//!   partial-image schemes, and dynamic loading into running programs;
//! * [`client`] — the client side: the bootstrap loader (`#!/bin/omos`),
//!   integrated exec, and the per-process [`client::OmosBinder`];
//! * [`monitor`] — monitoring-driven procedure reordering (§4.1/§6);
//! * [`persist`] — crash-safe durability: checkpoint/restore of the
//!   namespace, image cache, and placement state, plus the write-ahead
//!   binding journal;
//! * [`spill`] — the tier-2 image store: budget-evicted images sealed
//!   in the persist layer's content-addressed format, faulted back in
//!   through the restore verification chain instead of a relink;
//! * [`sync`] — the concurrency primitives behind the `&self` request
//!   paths: sharded maps and per-key single-flight coalescing;
//! * [`trace`] — request-level structured tracing and metrics: per-stage
//!   span trees in a bounded ring, latency histograms, cache/flight
//!   counter families.

pub mod cache;
pub mod client;
pub mod error;
pub mod monitor;
pub mod namespace;
pub mod persist;
pub mod server;
pub mod spill;
pub mod sync;
pub mod trace;

pub use cache::{CacheStats, CachedImage, EvictionPolicy, ImageCache};
pub use client::{
    exec_bootstrap, exec_file, exec_integrated, lint_request, live_update, run_under_omos,
    OmosBinder,
};
pub use error::OmosError;
pub use namespace::{Entry, Namespace};
pub use persist::{stored_manifests, CheckpointReport, RestoreReport};
pub use server::{DynamicLoadReply, InstantiateReply, Omos, ServerStats};
pub use spill::{SpillStats, SpillTier};
pub use sync::{Sharded, SingleFlight};
pub use trace::{RestoreDrops, TraceSnapshot, Tracer};
