//! Property tests for the U32 ISA: encoding, assembly, and VM safety.

use proptest::prelude::*;

use omos_isa::vm::{ExitOnly, FlatMemory};
use omos_isa::{Inst, Opcode, StopReason, Vm};

fn arb_opcode() -> impl Strategy<Value = Opcode> {
    (0u8..=27).prop_map(|c| Opcode::from_code(c).expect("0..=27 are valid"))
}

proptest! {
    #[test]
    fn encode_decode_roundtrip(
        op in arb_opcode(),
        ra in 0u8..16,
        rb in 0u8..16,
        rc in 0u8..16,
        imm in any::<u32>(),
    ) {
        let inst = Inst { op, ra, rb, rc, imm };
        prop_assert_eq!(Inst::decode(&inst.encode()), Some(inst));
    }

    #[test]
    fn disassembly_never_panics(bytes in any::<[u8; 8]>()) {
        if let Some(i) = Inst::decode(&bytes) {
            let text = i.disassemble();
            prop_assert!(!text.is_empty());
        }
    }

    /// Arbitrary byte soup executed as code must stop (halt, exit, fault,
    /// or fuel) without panicking — memory safety of the whole VM.
    #[test]
    fn vm_survives_random_code(code in proptest::collection::vec(any::<u8>(), 8..512)) {
        let base = 0x1000u32;
        let mut mem = FlatMemory::new(base, 64 * 1024);
        mem.load(base, &code);
        let mut vm = Vm::new(base);
        vm.regs[14] = base + 60 * 1024;
        let stop = vm.run(&mut mem, &mut ExitOnly, 10_000);
        // Any stop reason is fine; the point is that we got one.
        match stop {
            StopReason::Halted | StopReason::Exited(_) | StopReason::Fault(_) => {}
        }
    }

    /// Execution is deterministic: identical setup, identical outcome.
    #[test]
    fn vm_is_deterministic(code in proptest::collection::vec(any::<u8>(), 8..256)) {
        let run = || {
            let base = 0x1000u32;
            let mut mem = FlatMemory::new(base, 16 * 1024);
            mem.load(base, &code);
            let mut vm = Vm::new(base);
            let stop = vm.run(&mut mem, &mut ExitOnly, 2_000);
            (stop, vm.stats, vm.regs)
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.0, b.0);
        prop_assert_eq!(a.1, b.1);
        prop_assert_eq!(a.2, b.2);
    }

    /// Straight-line arithmetic programs generated from a tiny grammar
    /// always assemble and run to the expected exit.
    #[test]
    fn generated_arith_programs_assemble_and_run(
        ops in proptest::collection::vec((0u8..5, 1u8..14, any::<u16>()), 1..20),
    ) {
        let mut src = String::from(".text\n.global _start\n_start:\n");
        for (kind, reg, imm) in &ops {
            let line = match kind {
                0 => format!("    li r{reg}, {imm}\n"),
                1 => format!("    addi r{reg}, r{reg}, {imm}\n"),
                2 => format!("    add r{reg}, r{reg}, r{reg}\n"),
                3 => format!("    xor r{reg}, r{reg}, r{reg}\n"),
                _ => format!("    mov r{reg}, r0\n"),
            };
            src.push_str(&line);
        }
        src.push_str("    li r1, 0\n    sys 0\n");
        let obj = omos_isa::assemble("gen.o", &src).expect("generated program assembles");
        prop_assert!(obj.relocs.is_empty());
        let text = &obj.sections[0].bytes;
        let base = 0x1000u32;
        let mut mem = FlatMemory::new(base, 64 * 1024);
        mem.load(base, text);
        let mut vm = Vm::new(base);
        let stop = vm.run(&mut mem, &mut ExitOnly, 100_000);
        prop_assert_eq!(stop, StopReason::Exited(0));
        prop_assert_eq!(vm.stats.instructions, ops.len() as u64 + 2);
    }

    /// The assembler's error paths never panic on arbitrary input text.
    #[test]
    fn assembler_never_panics(src in "[ -~\n]{0,200}") {
        let _ = omos_isa::assemble("fuzz.o", &src);
    }
}
