//! A two-pass assembler from U32 assembly text to relocatable object files.
//!
//! The workload generator, the `source` blueprint operator, and the tests
//! all produce object files through this assembler, the same way the
//! paper's fragments came out of `cc`/`gcc`.
//!
//! Syntax (one statement per line; `;` or `#` start a comment):
//!
//! ```text
//! .text | .data | .rodata | .bss      select the current section
//! .global NAME                        export NAME
//! .extern NAME                        (optional) declare an external
//! .word V[, V...]                     emit 32-bit words (V: number or SYM[+N])
//! .quad V[, V...]                     emit 64-bit words
//! .ascii "..." | .asciz "..."         emit bytes
//! .space N                            emit N zero bytes (reserve in .bss)
//! .align N                            pad to N-byte alignment
//! .comm NAME, SIZE                    declare a common symbol
//! label:                              define a label at the current offset
//! op operands                         one instruction (see [`crate::inst`])
//! ```
//!
//! Branches to labels in the *same section* are resolved directly (they are
//! link-invariant); everything else symbolic becomes a relocation.

use std::collections::HashMap;
use std::fmt;

use omos_obj::{ObjectFile, RelocKind, Relocation, Section, SectionKind, Symbol};

use crate::inst::{Inst, Opcode, INST_BYTES, NUM_REGS};

/// An assembly error with its source line number (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

type Result<T> = std::result::Result<T, AsmError>;

/// Assembles `source` into an object file named `name`.
pub fn assemble(name: &str, source: &str) -> Result<ObjectFile> {
    let mut a = Assembler::new(name);
    a.run(source)?;
    a.finish()
}

/// A symbolic or numeric operand value.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Value {
    Num(i64),
    Sym { name: String, addend: i64 },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Seg {
    Text,
    RoData,
    Data,
    Bss,
}

impl Seg {
    fn kind(self) -> SectionKind {
        match self {
            Seg::Text => SectionKind::Text,
            Seg::RoData => SectionKind::RoData,
            Seg::Data => SectionKind::Data,
            Seg::Bss => SectionKind::Bss,
        }
    }
    fn index(self) -> usize {
        self as usize
    }
}

const SEGS: [Seg; 4] = [Seg::Text, Seg::RoData, Seg::Data, Seg::Bss];

#[derive(Debug, Clone)]
struct PendingReloc {
    seg: Seg,
    offset: u64,
    kind: RelocKind,
    symbol: String,
    addend: i64,
}

struct Assembler {
    name: String,
    bytes: [Vec<u8>; 4],
    bss_size: u64,
    labels: HashMap<String, (Seg, u64)>,
    globals: Vec<String>,
    externs: Vec<String>,
    commons: Vec<(String, u64)>,
    relocs: Vec<PendingReloc>,
    /// Same-section branch fixups resolved after pass completion:
    /// `(seg, inst_offset, label, line)`.
    branch_fixups: Vec<(Seg, u64, String, usize)>,
    seg: Seg,
}

impl Assembler {
    fn new(name: &str) -> Assembler {
        Assembler {
            name: name.to_string(),
            bytes: [Vec::new(), Vec::new(), Vec::new(), Vec::new()],
            bss_size: 0,
            labels: HashMap::new(),
            globals: Vec::new(),
            externs: Vec::new(),
            commons: Vec::new(),
            relocs: Vec::new(),
            branch_fixups: Vec::new(),
            seg: Seg::Text,
        }
    }

    fn offset(&self) -> u64 {
        if self.seg == Seg::Bss {
            self.bss_size
        } else {
            self.bytes[self.seg.index()].len() as u64
        }
    }

    fn emit(&mut self, b: &[u8], line: usize) -> Result<()> {
        if self.seg == Seg::Bss {
            return Err(err(line, "cannot emit initialized bytes into .bss"));
        }
        self.bytes[self.seg.index()].extend_from_slice(b);
        Ok(())
    }

    fn run(&mut self, source: &str) -> Result<()> {
        for (i, raw) in source.lines().enumerate() {
            let line = i + 1;
            let mut text = raw;
            if let Some(p) = text.find([';', '#']) {
                text = &text[..p];
            }
            let mut text = text.trim();
            // Leading labels (possibly several).
            while let Some(colon) = find_label(text) {
                let label = text[..colon].trim();
                if !is_ident(label) {
                    return Err(err(line, &format!("bad label `{label}`")));
                }
                if self.labels.contains_key(label) {
                    return Err(err(line, &format!("duplicate label `{label}`")));
                }
                self.labels
                    .insert(label.to_string(), (self.seg, self.offset()));
                text = text[colon + 1..].trim();
            }
            if text.is_empty() {
                continue;
            }
            if let Some(rest) = text.strip_prefix('.') {
                self.directive(rest, line)?;
            } else {
                self.instruction(text, line)?;
            }
        }
        Ok(())
    }

    fn directive(&mut self, text: &str, line: usize) -> Result<()> {
        let (word, rest) = split_word(text);
        let rest = rest.trim();
        match word {
            "text" => self.seg = Seg::Text,
            "rodata" => self.seg = Seg::RoData,
            "data" => self.seg = Seg::Data,
            "bss" => self.seg = Seg::Bss,
            "global" | "globl" => {
                for n in rest.split(',') {
                    let n = n.trim();
                    if !is_ident(n) {
                        return Err(err(line, &format!("bad symbol `{n}` in .global")));
                    }
                    self.globals.push(n.to_string());
                }
            }
            "extern" => {
                for n in rest.split(',') {
                    let n = n.trim();
                    if !is_ident(n) {
                        return Err(err(line, &format!("bad symbol `{n}` in .extern")));
                    }
                    self.externs.push(n.to_string());
                }
            }
            "word" => {
                for v in split_args(rest) {
                    match parse_value(&v, line)? {
                        Value::Num(n) => self.emit(&(n as u32).to_le_bytes(), line)?,
                        Value::Sym { name, addend } => {
                            let off = self.offset();
                            self.relocs.push(PendingReloc {
                                seg: self.seg,
                                offset: off,
                                kind: RelocKind::Abs32,
                                symbol: name,
                                addend,
                            });
                            self.emit(&[0; 4], line)?;
                        }
                    }
                }
            }
            "quad" => {
                for v in split_args(rest) {
                    match parse_value(&v, line)? {
                        Value::Num(n) => self.emit(&(n as u64).to_le_bytes(), line)?,
                        Value::Sym { name, addend } => {
                            let off = self.offset();
                            self.relocs.push(PendingReloc {
                                seg: self.seg,
                                offset: off,
                                kind: RelocKind::Abs64,
                                symbol: name,
                                addend,
                            });
                            self.emit(&[0; 8], line)?;
                        }
                    }
                }
            }
            "ascii" | "asciz" => {
                let s = parse_string(rest, line)?;
                self.emit(s.as_bytes(), line)?;
                if word == "asciz" {
                    self.emit(&[0], line)?;
                }
            }
            "space" => {
                let n = parse_number(rest, line)? as u64;
                if self.seg == Seg::Bss {
                    self.bss_size += n;
                } else {
                    let zeros = vec![0u8; n as usize];
                    self.emit(&zeros, line)?;
                }
            }
            "align" => {
                let n = parse_number(rest, line)? as u64;
                if n == 0 || !n.is_power_of_two() {
                    return Err(err(line, ".align needs a power of two"));
                }
                let cur = self.offset();
                let pad = (n - cur % n) % n;
                if self.seg == Seg::Bss {
                    self.bss_size += pad;
                } else {
                    let zeros = vec![0u8; pad as usize];
                    self.emit(&zeros, line)?;
                }
            }
            "comm" => {
                let args = split_args(rest);
                if args.len() != 2 {
                    return Err(err(line, ".comm needs NAME, SIZE"));
                }
                let size = parse_number(&args[1], line)? as u64;
                if !is_ident(&args[0]) {
                    return Err(err(line, &format!("bad symbol `{}` in .comm", args[0])));
                }
                self.commons.push((args[0].clone(), size));
            }
            other => return Err(err(line, &format!("unknown directive .{other}"))),
        }
        Ok(())
    }

    fn instruction(&mut self, text: &str, line: usize) -> Result<()> {
        let (m, rest) = split_word(text);
        let op = Opcode::from_mnemonic(m)
            .ok_or_else(|| err(line, &format!("unknown mnemonic `{m}`")))?;
        if self.seg != Seg::Text {
            return Err(err(line, "instructions outside .text"));
        }
        let args = split_args(rest.trim());
        let inst_off = self.offset();
        use Opcode::*;
        let inst = match op {
            Nop | Halt | Ret => {
                expect_args(&args, 0, line)?;
                Inst::new(op)
            }
            Li => {
                expect_args(&args, 2, line)?;
                let ra = parse_reg(&args[0], line)?;
                match parse_value(&args[1], line)? {
                    Value::Num(n) => Inst::new(op).ra(ra).imm(n as u32),
                    Value::Sym { name, addend } => {
                        self.relocs.push(PendingReloc {
                            seg: self.seg,
                            offset: inst_off + 4,
                            kind: RelocKind::Abs32,
                            symbol: name,
                            addend,
                        });
                        Inst::new(op).ra(ra)
                    }
                }
            }
            Mov => {
                expect_args(&args, 2, line)?;
                Inst::new(op)
                    .ra(parse_reg(&args[0], line)?)
                    .rb(parse_reg(&args[1], line)?)
            }
            Add | Sub | Mul | Divu | And | Or | Xor | Shl | Shr => {
                expect_args(&args, 3, line)?;
                Inst::new(op)
                    .ra(parse_reg(&args[0], line)?)
                    .rb(parse_reg(&args[1], line)?)
                    .rc(parse_reg(&args[2], line)?)
            }
            Addi => {
                expect_args(&args, 3, line)?;
                Inst::new(op)
                    .ra(parse_reg(&args[0], line)?)
                    .rb(parse_reg(&args[1], line)?)
                    .simm(parse_number(&args[2], line)? as i32)
            }
            Ld | St | Ld8 | St8 => {
                expect_args(&args, 2, line)?;
                let ra = parse_reg(&args[0], line)?;
                let (rb, disp) = parse_mem(&args[1], line)?;
                Inst::new(op).ra(ra).rb(rb).simm(disp)
            }
            Call | Jmp => {
                expect_args(&args, 1, line)?;
                match parse_value(&args[0], line)? {
                    Value::Num(n) => Inst::new(op).imm(n as u32),
                    Value::Sym { name, addend } => {
                        self.relocs.push(PendingReloc {
                            seg: self.seg,
                            offset: inst_off + 4,
                            kind: RelocKind::Abs32,
                            symbol: name,
                            addend,
                        });
                        Inst::new(op)
                    }
                }
            }
            Callr | Jmpr => {
                expect_args(&args, 1, line)?;
                Inst::new(op).rb(parse_reg(&args[0], line)?)
            }
            Beq | Bne | Blt | Bge => {
                expect_args(&args, 3, line)?;
                let ra = parse_reg(&args[0], line)?;
                let rb = parse_reg(&args[1], line)?;
                match parse_value(&args[2], line)? {
                    Value::Num(n) => Inst::new(op).ra(ra).rb(rb).simm(n as i32),
                    Value::Sym { name, addend } => {
                        if addend != 0 {
                            return Err(err(line, "branch targets take no addend"));
                        }
                        // Defer: same-section labels resolve directly, others
                        // become Pcrel32 relocations.
                        self.branch_fixups.push((self.seg, inst_off, name, line));
                        Inst::new(op).ra(ra).rb(rb)
                    }
                }
            }
            Sys => {
                expect_args(&args, 1, line)?;
                Inst::new(op).imm(parse_number(&args[0], line)? as u32)
            }
        };
        self.emit(&inst.encode(), line)
    }

    fn finish(mut self) -> Result<ObjectFile> {
        // Resolve branch fixups.
        let fixups = std::mem::take(&mut self.branch_fixups);
        for (seg, inst_off, label, _line) in fixups {
            match self.labels.get(&label) {
                Some(&(lseg, loff)) if lseg == seg => {
                    // Same-section: patch the displacement directly.
                    let disp = loff as i64 - (inst_off as i64 + INST_BYTES as i64);
                    let site = (inst_off + 4) as usize;
                    self.bytes[seg.index()][site..site + 4]
                        .copy_from_slice(&(disp as i32 as u32).to_le_bytes());
                }
                _ => {
                    // Cross-section or external: a PC-relative relocation.
                    self.relocs.push(PendingReloc {
                        seg,
                        offset: inst_off + 4,
                        kind: RelocKind::Pcrel32,
                        symbol: label,
                        addend: 0,
                    });
                }
            }
        }

        let mut obj = ObjectFile::new(&self.name);
        // Create sections (even empty ones keep indices stable and simple).
        let mut indices = [usize::MAX; 4];
        for seg in SEGS {
            let idx = match seg {
                Seg::Bss => obj.add_section(Section::bss(".bss", self.bss_size, 8)),
                _ => obj.add_section(Section::with_bytes(
                    seg.kind().default_name(),
                    seg.kind(),
                    std::mem::take(&mut self.bytes[seg.index()]),
                    8,
                )),
            };
            indices[seg.index()] = idx;
        }

        // Labels become symbols: global if exported, local otherwise.
        let mut names: Vec<&String> = self.labels.keys().collect();
        names.sort(); // deterministic symbol order
        for name in names {
            let (seg, off) = self.labels[name];
            let mut sym = Symbol::defined(name, indices[seg.index()], off);
            if !self.globals.contains(name) {
                sym = sym.local();
            }
            obj.define(sym).map_err(|e| err(0, &e.to_string()))?;
        }
        for (name, size) in &self.commons {
            obj.define(Symbol::common(name, *size))
                .map_err(|e| err(0, &e.to_string()))?;
        }
        for name in &self.externs {
            if obj.symbols.get(name).is_none() {
                obj.define(Symbol::undefined(name))
                    .map_err(|e| err(0, &e.to_string()))?;
            }
        }
        for r in &self.relocs {
            if let Some(g) = self.globals.iter().find(|g| *g == &r.symbol) {
                // Exported but undefined here is fine; nothing to do.
                let _ = g;
            }
            obj.relocate(Relocation {
                section: indices[r.seg.index()],
                offset: r.offset,
                kind: r.kind,
                symbol: r.symbol.clone(),
                addend: r.addend,
            });
        }
        obj.validate()
            .map_err(|e| err(0, &format!("internal: {e}")))?;
        Ok(obj)
    }
}

fn err(line: usize, msg: &str) -> AsmError {
    AsmError {
        line,
        msg: msg.to_string(),
    }
}

/// Finds the colon ending a leading label, ignoring colons inside strings.
fn find_label(text: &str) -> Option<usize> {
    let bytes = text.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b':' => return Some(i),
            b'"' | b' ' | b'\t' | b',' | b'[' => return None,
            _ => {}
        }
    }
    None
}

fn split_word(text: &str) -> (&str, &str) {
    match text.find(char::is_whitespace) {
        Some(i) => (&text[..i], &text[i..]),
        None => (text, ""),
    }
}

/// Splits comma-separated arguments, respecting double quotes.
fn split_args(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    let mut escaped = false;
    for c in text.chars() {
        if in_str {
            cur.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_str = true;
                cur.push(c);
            }
            ',' => {
                if !cur.trim().is_empty() {
                    out.push(cur.trim().to_string());
                }
                cur.clear();
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_string());
    }
    out
}

fn expect_args(args: &[String], n: usize, line: usize) -> Result<()> {
    if args.len() == n {
        Ok(())
    } else {
        Err(err(
            line,
            &format!("expected {n} operands, found {}", args.len()),
        ))
    }
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || "_$.".contains(c))
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || "_$.".contains(c))
}

fn parse_reg(s: &str, line: usize) -> Result<u8> {
    let rest = s
        .strip_prefix('r')
        .ok_or_else(|| err(line, &format!("expected register, found `{s}`")))?;
    let n: usize = rest
        .parse()
        .map_err(|_| err(line, &format!("expected register, found `{s}`")))?;
    if n >= NUM_REGS {
        return Err(err(line, &format!("register r{n} out of range")));
    }
    Ok(n as u8)
}

fn parse_number(s: &str, line: usize) -> Result<i64> {
    let s = s.trim();
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, s),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse::<i64>()
    }
    .map_err(|_| err(line, &format!("bad number `{s}`")))?;
    Ok(if neg { -v } else { v })
}

/// Parses `NUMBER`, `SYMBOL`, `SYMBOL+N`, or `SYMBOL-N`.
fn parse_value(s: &str, line: usize) -> Result<Value> {
    let s = s.trim();
    if s.starts_with(|c: char| c.is_ascii_digit() || c == '-') {
        return Ok(Value::Num(parse_number(s, line)?));
    }
    let split = s.find(['+', '-']);
    let (name, addend) = match split {
        Some(i) => {
            let a = parse_number(&s[i..], line)?;
            (&s[..i], a)
        }
        None => (s, 0),
    };
    if !is_ident(name) {
        return Err(err(line, &format!("bad operand `{s}`")));
    }
    Ok(Value::Sym {
        name: name.to_string(),
        addend,
    })
}

/// Parses `[rN]`, `[rN+D]`, or `[rN-D]`.
fn parse_mem(s: &str, line: usize) -> Result<(u8, i32)> {
    let inner = s
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| {
            err(
                line,
                &format!("expected memory operand `[rN+D]`, found `{s}`"),
            )
        })?;
    match inner.find(['+', '-']) {
        Some(i) => {
            let r = parse_reg(inner[..i].trim(), line)?;
            let d = parse_number(&inner[i..], line)?;
            Ok((r, d as i32))
        }
        None => Ok((parse_reg(inner.trim(), line)?, 0)),
    }
}

fn parse_string(s: &str, line: usize) -> Result<String> {
    let s = s.trim();
    let inner = s
        .strip_prefix('"')
        .and_then(|t| t.strip_suffix('"'))
        .ok_or_else(|| err(line, &format!("expected quoted string, found `{s}`")))?;
    let mut out = String::new();
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('0') => out.push('\0'),
                Some('\\') => out.push('\\'),
                Some('"') => out.push('"'),
                Some(other) => return Err(err(line, &format!("bad escape `\\{other}`"))),
                None => return Err(err(line, "dangling escape")),
            }
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use omos_obj::SymbolDef;

    #[test]
    fn minimal_program_assembles() {
        let obj = assemble(
            "t.o",
            r#"
            .text
            .global _main
_main:      li r1, 42
            sys 0
            "#,
        )
        .unwrap();
        let text = &obj.sections[obj.section_index(".text").unwrap()];
        assert_eq!(text.size, 16);
        let main = obj.symbols.get("_main").unwrap();
        assert_eq!(
            main.def,
            SymbolDef::Defined {
                section: 0,
                offset: 0
            }
        );
    }

    #[test]
    fn call_to_external_emits_abs32_reloc() {
        let obj = assemble(
            "t.o",
            r#"
            .text
            .global _main
_main:      call _printf
            ret
            "#,
        )
        .unwrap();
        assert_eq!(obj.relocs.len(), 1);
        let r = &obj.relocs[0];
        assert_eq!(r.kind, RelocKind::Abs32);
        assert_eq!(r.symbol, "_printf");
        assert_eq!(r.offset, 4); // imm field of the first instruction
        assert!(!obj.symbols.get("_printf").unwrap().def.is_definition());
    }

    #[test]
    fn same_section_branch_resolved_directly() {
        let obj = assemble(
            "t.o",
            r#"
            .text
_loop:      addi r1, r1, -1
            bne r1, r0, _loop
            ret
            "#,
        )
        .unwrap();
        assert!(obj.relocs.is_empty(), "no relocation for a local branch");
        let text = &obj.sections[0].bytes;
        let inst: [u8; 8] = text[8..16].try_into().unwrap();
        let decoded = Inst::decode(&inst).unwrap();
        // Branch displacement: target 0 - (site 8 + 8) = -16.
        assert_eq!(decoded.imm as i32, -16);
    }

    #[test]
    fn cross_section_branch_becomes_pcrel_reloc() {
        let obj = assemble(
            "t.o",
            r#"
            .text
            beq r0, r0, _elsewhere
            "#,
        )
        .unwrap();
        assert_eq!(obj.relocs.len(), 1);
        assert_eq!(obj.relocs[0].kind, RelocKind::Pcrel32);
        assert_eq!(obj.relocs[0].symbol, "_elsewhere");
    }

    #[test]
    fn data_words_and_symbols() {
        let obj = assemble(
            "t.o",
            r#"
            .data
_tab:       .word 1, 2, _func+8
            .quad _func
            .asciz "hi"
            .align 4
            .space 4
            "#,
        )
        .unwrap();
        let data = &obj.sections[obj.section_index(".data").unwrap()];
        assert_eq!(data.size, 12 + 8 + 3 + 1 + 4);
        assert_eq!(obj.relocs.len(), 2);
        assert_eq!(obj.relocs[0].kind, RelocKind::Abs32);
        assert_eq!(obj.relocs[0].addend, 8);
        assert_eq!(obj.relocs[1].kind, RelocKind::Abs64);
        assert_eq!(&data.bytes[0..4], &1u32.to_le_bytes());
        assert_eq!(&data.bytes[20..23], b"hi\0");
    }

    #[test]
    fn bss_and_comm() {
        let obj = assemble(
            "t.o",
            r#"
            .bss
            .global _heap
_heap:      .space 4096
            .comm _shared_buf, 256
            "#,
        )
        .unwrap();
        let bss = &obj.sections[obj.section_index(".bss").unwrap()];
        assert_eq!(bss.size, 4096);
        assert_eq!(
            obj.symbols.get("_shared_buf").unwrap().def,
            SymbolDef::Common { size: 256 }
        );
        assert_eq!(
            obj.symbols.get("_heap").unwrap().def,
            SymbolDef::Defined {
                section: obj.section_index(".bss").unwrap(),
                offset: 0
            }
        );
    }

    #[test]
    fn local_labels_are_local_symbols() {
        let obj = assemble(
            "t.o",
            r#"
            .text
            .global _f
_f:         ret
_helper:    ret
            "#,
        )
        .unwrap();
        use omos_obj::SymbolBinding;
        assert_eq!(
            obj.symbols.get("_f").unwrap().binding,
            SymbolBinding::Global
        );
        assert_eq!(
            obj.symbols.get("_helper").unwrap().binding,
            SymbolBinding::Local
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("t.o", ".text\n  bogus r1\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = assemble("t.o", "  li r99, 0\n").unwrap_err();
        assert!(e.msg.contains("register"));
        let e = assemble("t.o", ".data\n  li r1, 0\n").unwrap_err();
        assert!(e.msg.contains("outside .text"));
        let e = assemble("t.o", "x:\nx:\n").unwrap_err();
        assert!(e.msg.contains("duplicate"));
        let e = assemble("t.o", ".align 3\n").unwrap_err();
        assert!(e.msg.contains("power of two"));
    }

    #[test]
    fn memory_operands() {
        let obj = assemble(
            "t.o",
            r#"
            .text
            ld r1, [r14+8]
            st r2, [r14-4]
            ld8 r3, [r4]
            "#,
        )
        .unwrap();
        let b = &obj.sections[0].bytes;
        let i0 = Inst::decode(b[0..8].try_into().unwrap()).unwrap();
        assert_eq!((i0.op, i0.ra, i0.rb, i0.imm as i32), (Opcode::Ld, 1, 14, 8));
        let i1 = Inst::decode(b[8..16].try_into().unwrap()).unwrap();
        assert_eq!(
            (i1.op, i1.ra, i1.rb, i1.imm as i32),
            (Opcode::St, 2, 14, -4)
        );
        let i2 = Inst::decode(b[16..24].try_into().unwrap()).unwrap();
        assert_eq!((i2.op, i2.ra, i2.rb, i2.imm as i32), (Opcode::Ld8, 3, 4, 0));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let obj = assemble(
            "t.o",
            "; full comment\n\n.text ; trailing\n nop # other style\n",
        )
        .unwrap();
        assert_eq!(obj.sections[0].size, 8);
    }

    #[test]
    fn string_escapes() {
        let obj = assemble("t.o", ".data\n.ascii \"a\\n\\t\\\"b\\\\\"\n").unwrap();
        let d = &obj.sections[obj.section_index(".data").unwrap()].bytes;
        assert_eq!(d, b"a\n\t\"b\\");
    }
}
