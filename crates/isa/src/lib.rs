//! U32 — the synthetic RISC instruction set the reproduction executes.
//!
//! The paper's machines were PA-RISC and ix86; linked programs there are
//! real machine code whose call stubs, dispatch tables, and relocation
//! sites get patched by the linker and dynamic loader. To reproduce those
//! mechanisms faithfully we need an ISA the linker can patch and a machine
//! that actually runs the result — so a mis-applied relocation crashes the
//! program instead of silently passing a test.
//!
//! * [`inst`] — fixed 8-byte instructions with a 32-bit immediate field
//!   (the universal relocation site), encode/decode/disassemble;
//! * [`asm`] — a two-pass assembler from U32 assembly text to
//!   [`omos_obj::ObjectFile`]s with symbols and relocations;
//! * [`vm`] — the interpreting virtual machine: memory via a trait (the
//!   simulated OS plugs in its address spaces), syscalls via a trait, and
//!   execution statistics;
//! * [`locality`] — the instruction-side locality model (i-cache + paging)
//!   behind the procedure-reordering experiment of §4.1.

pub mod asm;
pub mod inst;
pub mod locality;
pub mod vm;

pub use asm::assemble;
pub use inst::{Inst, Opcode, INST_BYTES};
pub use vm::{ExecStats, Memory, StopReason, SysResult, SyscallHandler, Vm, VmFault};

/// Syscall numbers shared between generated code and the simulated OS.
///
/// Generated stubs (PLT binders, partial-image library stubs) hard-code
/// these numbers, and the OS's syscall dispatcher implements them.
pub mod sysno {
    /// Terminate with the code in `r1`.
    pub const EXIT: u32 = 0;
    /// Write `r3` bytes at `r2` to file descriptor `r1`.
    pub const WRITE: u32 = 1;
    /// Read up to `r3` bytes into `r2` from file descriptor `r1`.
    pub const READ: u32 = 2;
    /// Open the NUL-terminated path at `r2`; returns an fd in `r1`.
    pub const OPEN: u32 = 3;
    /// Close file descriptor `r1`.
    pub const CLOSE: u32 = 4;
    /// Stat the NUL-terminated path at `r2`; fills a stat record at `r3`.
    pub const STAT: u32 = 5;
    /// Read directory entries of the open directory fd `r1`.
    pub const GETDENTS: u32 = 6;
    /// Grow the heap by `r1` bytes; returns the old break in `r1`.
    pub const BRK: u32 = 7;
    /// Lazy PLT bind: resolve PLT entry `r6`, write its GOT slot, return
    /// the target in `r5`. Issued only by generated binder stubs.
    pub const BIND: u32 = 8;
    /// Partial-image stub: ensure library `r5` is loaded and look up the
    /// NUL-terminated name at `r6` in its hash table; returns the entry
    /// point in `r5`. Issued only by generated OMOS stubs.
    pub const OMOS_LOOKUP: u32 = 9;
    /// Current simulated time (ns) in `r1`.
    pub const TIME: u32 = 10;
    /// Terminal/file ioctl-ish call (used by `ls -laF` workloads).
    pub const IOCTL: u32 = 11;
    /// Monitoring probe: record the routine id in `r5` (injected by
    /// OMOS's monitoring wrappers, §4.1/§6).
    pub const MONLOG: u32 = 12;
}
