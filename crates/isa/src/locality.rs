//! The instruction-side locality model behind the reordering experiment.
//!
//! §4.1: "One such optimization is reordering code based on function usage
//! in order to improve locality of reference. ... This reordering benefits
//! both cache performance and paging behavior. We have performed this
//! experiment and achieved average speedups in excess of 10%."
//!
//! The [`Tracker`] watches the PC stream and models two effects:
//!
//! * a direct-mapped instruction cache (hit/miss counts);
//! * a small resident set of code pages with LRU replacement (fault counts
//!   and the peak working set).
//!
//! The cost model then prices misses and faults, so a layout that scatters
//! hot functions across pages measurably slows the simulated program —
//! exactly the effect OMOS's monitored reordering removes.

use std::collections::VecDeque;

/// Page size used by the paging model (matches the paper's HP730: 4 KB).
pub const PAGE_SHIFT: u32 = 12;

/// Configuration of the locality model.
#[derive(Debug, Clone, Copy)]
pub struct LocalityConfig {
    /// Number of direct-mapped i-cache lines.
    pub cache_lines: usize,
    /// Bytes per line (power of two).
    pub line_bytes: u32,
    /// Code pages that fit in the resident set before LRU eviction.
    pub resident_pages: usize,
}

impl Default for LocalityConfig {
    /// A deliberately small machine — 4 KB i-cache, 16-page code residency —
    /// so layout effects show up at benchmark scale.
    fn default() -> Self {
        LocalityConfig {
            cache_lines: 64,
            line_bytes: 64,
            resident_pages: 16,
        }
    }
}

/// Aggregated locality counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LocalityReport {
    /// I-cache hits.
    pub cache_hits: u64,
    /// I-cache misses.
    pub cache_misses: u64,
    /// Page faults (first touch or post-eviction re-touch).
    pub page_faults: u64,
    /// Transitions between different code pages.
    pub page_switches: u64,
    /// Largest number of distinct pages ever resident.
    pub peak_resident: usize,
    /// Total distinct pages touched over the run.
    pub distinct_pages: usize,
}

impl LocalityReport {
    /// Cache miss ratio in `[0, 1]`; zero when nothing ran.
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_misses as f64 / total as f64
        }
    }
}

/// Watches a PC stream and accumulates a [`LocalityReport`].
#[derive(Debug)]
pub struct Tracker {
    config: LocalityConfig,
    /// Tag per cache line; `u32::MAX` = invalid.
    tags: Vec<u32>,
    /// LRU queue of resident pages, most recent at the back.
    resident: VecDeque<u32>,
    /// All pages ever touched (sorted, deduplicated lazily).
    touched: Vec<u32>,
    last_page: Option<u32>,
    report: LocalityReport,
}

impl Tracker {
    /// Creates a tracker with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a power of two or `cache_lines` is zero
    /// (configuration bugs).
    #[must_use]
    pub fn new(config: LocalityConfig) -> Tracker {
        assert!(
            config.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(config.cache_lines > 0, "cache must have lines");
        assert!(config.resident_pages > 0, "resident set must hold pages");
        Tracker {
            tags: vec![u32::MAX; config.cache_lines],
            resident: VecDeque::with_capacity(config.resident_pages),
            touched: Vec::new(),
            last_page: None,
            config,
            report: LocalityReport::default(),
        }
    }

    /// Records one instruction fetch at `pc`.
    pub fn touch(&mut self, pc: u32) {
        // I-cache: direct-mapped on line address.
        let line_addr = pc / self.config.line_bytes;
        let idx = (line_addr as usize) % self.config.cache_lines;
        if self.tags[idx] == line_addr {
            self.report.cache_hits += 1;
        } else {
            self.report.cache_misses += 1;
            self.tags[idx] = line_addr;
        }

        // Paging: LRU resident set.
        let page = pc >> PAGE_SHIFT;
        if self.last_page != Some(page) {
            if self.last_page.is_some() {
                self.report.page_switches += 1;
            }
            self.last_page = Some(page);
        }
        if let Some(pos) = self.resident.iter().position(|&p| p == page) {
            // Move to MRU position.
            self.resident.remove(pos);
            self.resident.push_back(page);
        } else {
            self.report.page_faults += 1;
            if self.resident.len() == self.config.resident_pages {
                self.resident.pop_front();
            }
            self.resident.push_back(page);
            self.report.peak_resident = self.report.peak_resident.max(self.resident.len());
            self.touched.push(page);
        }
    }

    /// Finalizes and returns the report.
    #[must_use]
    pub fn report(&mut self) -> LocalityReport {
        self.touched.sort_unstable();
        self.touched.dedup();
        self.report.distinct_pages = self.touched.len();
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(lines: usize, line_bytes: u32, pages: usize) -> LocalityConfig {
        LocalityConfig {
            cache_lines: lines,
            line_bytes,
            resident_pages: pages,
        }
    }

    #[test]
    fn sequential_code_hits_cache() {
        let mut t = Tracker::new(cfg(64, 64, 16));
        for pc in (0..4096u32).step_by(8) {
            t.touch(pc);
        }
        let r = t.report();
        // 4096/64 = 64 lines, each missed once then hit 7 times.
        assert_eq!(r.cache_misses, 64);
        assert_eq!(r.cache_hits, 512 - 64);
        assert_eq!(r.page_faults, 1);
        assert_eq!(r.distinct_pages, 1);
        assert_eq!(r.page_switches, 0);
    }

    #[test]
    fn conflicting_lines_thrash() {
        // Two addresses mapping to the same line (stride = cache span).
        let mut t = Tracker::new(cfg(4, 64, 16));
        let span = 4 * 64;
        for _ in 0..100 {
            t.touch(0);
            t.touch(span);
        }
        let r = t.report();
        assert_eq!(r.cache_hits, 0);
        assert_eq!(r.cache_misses, 200);
    }

    #[test]
    fn lru_evicts_oldest_page() {
        let mut t = Tracker::new(cfg(64, 64, 2));
        t.touch(0 << PAGE_SHIFT);
        t.touch(1 << PAGE_SHIFT);
        t.touch(0 << PAGE_SHIFT); // refresh page 0
        t.touch(2 << PAGE_SHIFT); // evicts page 1 (LRU)
        t.touch(0 << PAGE_SHIFT); // still resident: no fault
        t.touch(1 << PAGE_SHIFT); // faulted back in
        let r = t.report();
        assert_eq!(r.page_faults, 4);
        assert_eq!(r.distinct_pages, 3);
        assert_eq!(r.peak_resident, 2);
    }

    #[test]
    fn page_switches_counted() {
        let mut t = Tracker::new(cfg(64, 64, 16));
        t.touch(0);
        t.touch(8);
        t.touch(1 << PAGE_SHIFT);
        t.touch(0);
        let r = t.report();
        assert_eq!(r.page_switches, 2);
    }

    #[test]
    fn packed_layout_beats_scattered_layout() {
        // The reordering experiment in miniature: ping-pong between two hot
        // functions. Packed: both on one page. Scattered: 20 pages apart
        // with a tiny resident set, so every switch faults.
        let hot_a_packed = 0u32;
        let hot_b_packed = 512u32;
        let hot_a_scat = 0u32;
        let hot_b_scat = 20 << PAGE_SHIFT;

        let mut packed = Tracker::new(cfg(16, 64, 1));
        let mut scattered = Tracker::new(cfg(16, 64, 1));
        for _ in 0..1000 {
            packed.touch(hot_a_packed);
            packed.touch(hot_b_packed);
            scattered.touch(hot_a_scat);
            scattered.touch(hot_b_scat);
        }
        let rp = packed.report();
        let rs = scattered.report();
        assert!(rp.page_faults < rs.page_faults / 100);
        assert!(rp.miss_ratio() <= rs.miss_ratio());
    }

    #[test]
    fn miss_ratio_of_empty_run_is_zero() {
        let mut t = Tracker::new(LocalityConfig::default());
        assert_eq!(t.report().miss_ratio(), 0.0);
    }
}
