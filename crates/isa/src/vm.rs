//! The U32 interpreting virtual machine.
//!
//! Memory and system calls are traits so the simulated OS can plug in its
//! page-granular address spaces and its syscall table; the VM itself only
//! knows how to fetch, decode, and execute. Execution statistics feed the
//! cost model (every instruction has a price) and the locality model
//! (every fetch address can be traced).

use crate::inst::{Inst, Opcode, INST_BYTES, NUM_REGS, REG_LR};
use crate::locality::Tracker;

/// A machine fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmFault {
    /// Fetched byte did not decode to an instruction.
    BadOpcode {
        /// PC of the offending fetch.
        pc: u32,
    },
    /// Unmapped or protection-violating access.
    MemFault {
        /// Faulting address.
        addr: u32,
        /// True for stores.
        write: bool,
    },
    /// Unsigned division by zero.
    DivByZero {
        /// PC of the offending instruction.
        pc: u32,
    },
    /// The fuel limit was reached (probable infinite loop).
    FuelExhausted,
    /// A syscall handler rejected the request.
    BadSyscall {
        /// Syscall number.
        num: u32,
        /// Explanation.
        msg: String,
    },
}

impl std::fmt::Display for VmFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VmFault::BadOpcode { pc } => write!(f, "illegal instruction at {pc:#x}"),
            VmFault::MemFault { addr, write } => {
                write!(
                    f,
                    "memory fault ({}) at {addr:#x}",
                    if *write { "store" } else { "load" }
                )
            }
            VmFault::DivByZero { pc } => write!(f, "division by zero at {pc:#x}"),
            VmFault::FuelExhausted => write!(f, "fuel exhausted"),
            VmFault::BadSyscall { num, msg } => write!(f, "bad syscall {num}: {msg}"),
        }
    }
}

impl std::error::Error for VmFault {}

/// Why execution stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StopReason {
    /// A `halt` instruction.
    Halted,
    /// The program exited through a syscall, with this code.
    Exited(u32),
    /// A fault.
    Fault(VmFault),
}

/// What a syscall handler tells the VM to do next.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SysResult {
    /// Keep executing.
    Continue,
    /// Terminate with an exit code.
    Exit(u32),
}

/// Byte-addressed memory as seen by the VM.
pub trait Memory {
    /// Reads `buf.len()` bytes at `addr`.
    fn read(&mut self, addr: u32, buf: &mut [u8]) -> Result<(), VmFault>;
    /// Writes `buf` at `addr`.
    fn write(&mut self, addr: u32, buf: &[u8]) -> Result<(), VmFault>;
}

/// The OS half of the machine: services `sys` instructions.
pub trait SyscallHandler {
    /// Handles syscall `num`. Arguments live in `regs[1..=4]`; results go
    /// back into `regs[1]`.
    fn syscall(
        &mut self,
        num: u32,
        regs: &mut [u32; NUM_REGS],
        mem: &mut dyn Memory,
    ) -> Result<SysResult, VmFault>;
}

/// Execution statistics, consumed by the cost and locality models.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Instructions retired.
    pub instructions: u64,
    /// Data loads.
    pub loads: u64,
    /// Data stores.
    pub stores: u64,
    /// Calls (direct and indirect).
    pub calls: u64,
    /// Taken branches.
    pub taken_branches: u64,
    /// Syscalls issued.
    pub syscalls: u64,
}

/// The virtual machine: registers, a PC, statistics, and an optional
/// instruction-locality tracker.
#[derive(Debug)]
pub struct Vm {
    /// General-purpose registers; `regs[0]` always reads zero.
    pub regs: [u32; NUM_REGS],
    /// Program counter.
    pub pc: u32,
    /// Retired-instruction statistics.
    pub stats: ExecStats,
    /// Optional i-side locality tracker (see [`crate::locality`]).
    pub tracker: Option<Tracker>,
}

impl Vm {
    /// Creates a VM with all registers zero and the PC at `entry`.
    #[must_use]
    pub fn new(entry: u32) -> Vm {
        Vm {
            regs: [0; NUM_REGS],
            pc: entry,
            stats: ExecStats::default(),
            tracker: None,
        }
    }

    /// Attaches a locality tracker.
    #[must_use]
    pub fn with_tracker(mut self, t: Tracker) -> Vm {
        self.tracker = Some(t);
        self
    }

    fn reg(&self, r: u8) -> u32 {
        if r == 0 {
            0
        } else {
            self.regs[r as usize]
        }
    }

    fn set_reg(&mut self, r: u8, v: u32) {
        if r != 0 {
            self.regs[r as usize] = v;
        }
    }

    /// Runs until halt, exit, fault, or `fuel` instructions.
    pub fn run(
        &mut self,
        mem: &mut dyn Memory,
        sys: &mut dyn SyscallHandler,
        fuel: u64,
    ) -> StopReason {
        let mut remaining = fuel;
        loop {
            if remaining == 0 {
                return StopReason::Fault(VmFault::FuelExhausted);
            }
            remaining -= 1;
            match self.step(mem, sys) {
                Ok(None) => {}
                Ok(Some(stop)) => return stop,
                Err(fault) => return StopReason::Fault(fault),
            }
        }
    }

    /// Executes one instruction. Returns `Ok(Some(_))` when the program
    /// finishes, `Ok(None)` to continue.
    pub fn step(
        &mut self,
        mem: &mut dyn Memory,
        sys: &mut dyn SyscallHandler,
    ) -> Result<Option<StopReason>, VmFault> {
        let pc = self.pc;
        if let Some(t) = &mut self.tracker {
            t.touch(pc);
        }
        let mut raw = [0u8; 8];
        mem.read(pc, &mut raw)?;
        let inst = Inst::decode(&raw).ok_or(VmFault::BadOpcode { pc })?;
        self.stats.instructions += 1;
        let mut next = pc.wrapping_add(INST_BYTES as u32);
        use Opcode::*;
        match inst.op {
            Nop => {}
            Halt => return Ok(Some(StopReason::Halted)),
            Li => self.set_reg(inst.ra, inst.imm),
            Mov => self.set_reg(inst.ra, self.reg(inst.rb)),
            Add => self.set_reg(inst.ra, self.reg(inst.rb).wrapping_add(self.reg(inst.rc))),
            Sub => self.set_reg(inst.ra, self.reg(inst.rb).wrapping_sub(self.reg(inst.rc))),
            Mul => self.set_reg(inst.ra, self.reg(inst.rb).wrapping_mul(self.reg(inst.rc))),
            Divu => {
                let d = self.reg(inst.rc);
                if d == 0 {
                    return Err(VmFault::DivByZero { pc });
                }
                self.set_reg(inst.ra, self.reg(inst.rb) / d);
            }
            And => self.set_reg(inst.ra, self.reg(inst.rb) & self.reg(inst.rc)),
            Or => self.set_reg(inst.ra, self.reg(inst.rb) | self.reg(inst.rc)),
            Xor => self.set_reg(inst.ra, self.reg(inst.rb) ^ self.reg(inst.rc)),
            Shl => self.set_reg(inst.ra, self.reg(inst.rb) << (self.reg(inst.rc) & 31)),
            Shr => self.set_reg(inst.ra, self.reg(inst.rb) >> (self.reg(inst.rc) & 31)),
            Addi => self.set_reg(inst.ra, self.reg(inst.rb).wrapping_add(inst.imm)),
            Ld => {
                let addr = self.reg(inst.rb).wrapping_add(inst.imm);
                let mut b = [0u8; 4];
                mem.read(addr, &mut b)?;
                self.set_reg(inst.ra, u32::from_le_bytes(b));
                self.stats.loads += 1;
            }
            St => {
                let addr = self.reg(inst.rb).wrapping_add(inst.imm);
                mem.write(addr, &self.reg(inst.ra).to_le_bytes())?;
                self.stats.stores += 1;
            }
            Ld8 => {
                let addr = self.reg(inst.rb).wrapping_add(inst.imm);
                let mut b = [0u8; 1];
                mem.read(addr, &mut b)?;
                self.set_reg(inst.ra, u32::from(b[0]));
                self.stats.loads += 1;
            }
            St8 => {
                let addr = self.reg(inst.rb).wrapping_add(inst.imm);
                mem.write(addr, &[(self.reg(inst.ra) & 0xff) as u8])?;
                self.stats.stores += 1;
            }
            Call => {
                self.set_reg(REG_LR, next);
                next = inst.imm;
                self.stats.calls += 1;
            }
            Callr => {
                self.set_reg(REG_LR, next);
                next = self.reg(inst.rb);
                self.stats.calls += 1;
            }
            Ret => next = self.reg(REG_LR),
            Jmp => next = inst.imm,
            Jmpr => next = self.reg(inst.rb),
            Beq | Bne | Blt | Bge => {
                let a = self.reg(inst.ra);
                let b = self.reg(inst.rb);
                let taken = match inst.op {
                    Beq => a == b,
                    Bne => a != b,
                    Blt => (a as i32) < (b as i32),
                    Bge => (a as i32) >= (b as i32),
                    _ => unreachable!("filtered by match arm"),
                };
                if taken {
                    next = pc.wrapping_add(INST_BYTES as u32).wrapping_add(inst.imm);
                    self.stats.taken_branches += 1;
                }
            }
            Sys => {
                self.stats.syscalls += 1;
                // The handler sees the *committed* next PC so re-entrant
                // handlers (the partial-image stubs) can resume correctly.
                self.pc = next;
                match sys.syscall(inst.imm, &mut self.regs, mem)? {
                    SysResult::Continue => {}
                    SysResult::Exit(code) => return Ok(Some(StopReason::Exited(code))),
                }
                // `regs[0]` stays hardwired even if a handler scribbled it.
                self.regs[0] = 0;
                return Ok(None);
            }
        }
        self.pc = next;
        Ok(None)
    }
}

/// A flat `Vec<u8>`-backed memory for tests and standalone use.
#[derive(Debug)]
pub struct FlatMemory {
    base: u32,
    bytes: Vec<u8>,
}

impl FlatMemory {
    /// Creates `size` zero bytes mapped at `base`.
    #[must_use]
    pub fn new(base: u32, size: usize) -> FlatMemory {
        FlatMemory {
            base,
            bytes: vec![0; size],
        }
    }

    /// Copies `data` into memory at absolute address `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds (test-setup bug).
    pub fn load(&mut self, addr: u32, data: &[u8]) {
        let off = (addr - self.base) as usize;
        self.bytes[off..off + data.len()].copy_from_slice(data);
    }
}

impl Memory for FlatMemory {
    fn read(&mut self, addr: u32, buf: &mut [u8]) -> Result<(), VmFault> {
        let off = addr.wrapping_sub(self.base) as usize;
        if addr < self.base || off + buf.len() > self.bytes.len() {
            return Err(VmFault::MemFault { addr, write: false });
        }
        buf.copy_from_slice(&self.bytes[off..off + buf.len()]);
        Ok(())
    }

    fn write(&mut self, addr: u32, buf: &[u8]) -> Result<(), VmFault> {
        let off = addr.wrapping_sub(self.base) as usize;
        if addr < self.base || off + buf.len() > self.bytes.len() {
            return Err(VmFault::MemFault { addr, write: true });
        }
        self.bytes[off..off + buf.len()].copy_from_slice(buf);
        Ok(())
    }
}

/// A syscall handler that rejects everything except `exit` (number 0).
#[derive(Debug, Default)]
pub struct ExitOnly;

impl SyscallHandler for ExitOnly {
    fn syscall(
        &mut self,
        num: u32,
        regs: &mut [u32; NUM_REGS],
        _mem: &mut dyn Memory,
    ) -> Result<SysResult, VmFault> {
        if num == 0 {
            Ok(SysResult::Exit(regs[1]))
        } else {
            Err(VmFault::BadSyscall {
                num,
                msg: "only exit is supported here".into(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    /// Assembles, lays text at `base`, runs to completion.
    fn run_at(base: u32, src: &str) -> (StopReason, Vm) {
        let obj = assemble("t.o", src).expect("assembles");
        let text = &obj.sections[obj.section_index(".text").unwrap()].bytes;
        // Quick direct placement: no relocations allowed in these tests.
        assert!(
            obj.relocs.is_empty(),
            "test programs must be self-contained"
        );
        let mut mem = FlatMemory::new(base, 64 * 1024);
        mem.load(base, text);
        let mut vm = Vm::new(base);
        vm.regs[14] = base + 60 * 1024; // stack near the top
        let stop = vm.run(&mut mem, &mut ExitOnly, 1_000_000);
        (stop, vm)
    }

    #[test]
    fn arithmetic_and_exit() {
        let (stop, _) = run_at(
            0x1000,
            r#"
            .text
            li r1, 6
            li r2, 7
            mul r1, r1, r2
            sys 0
            "#,
        );
        assert_eq!(stop, StopReason::Exited(42));
    }

    #[test]
    fn r0_is_hardwired_zero() {
        let (stop, _) = run_at(
            0x1000,
            r#"
            .text
            li r0, 99
            mov r1, r0
            sys 0
            "#,
        );
        assert_eq!(stop, StopReason::Exited(0));
    }

    #[test]
    fn loop_counts_down() {
        let (stop, vm) = run_at(
            0x1000,
            r#"
            .text
            li r1, 10
            li r2, 0
_loop:      addi r2, r2, 3
            addi r1, r1, -1
            bne r1, r0, _loop
            mov r1, r2
            sys 0
            "#,
        );
        assert_eq!(stop, StopReason::Exited(30));
        assert_eq!(vm.stats.taken_branches, 9);
    }

    #[test]
    fn call_and_ret_via_patched_relocation() {
        // A direct `call _double` emits an Abs32 relocation; patch it by
        // hand the way the linker will, then run.
        let obj = assemble(
            "t.o",
            r#"
            .text
            li r1, 5
            call _double
            sys 0
_double:    add r1, r1, r1
            ret
            "#,
        )
        .unwrap();
        let base = 0x2000u32;
        let mut text = obj.sections[0].bytes.clone();
        assert_eq!(obj.relocs.len(), 1);
        let r = &obj.relocs[0];
        let target = match obj.symbols.get("_double").unwrap().def {
            omos_obj::SymbolDef::Defined { offset, .. } => base + offset as u32,
            _ => unreachable!("label is defined"),
        };
        assert!(omos_obj::reloc::apply_patch(
            &mut text,
            r.offset,
            r.kind,
            i64::from(target)
        ));
        let mut mem = FlatMemory::new(base, 64 * 1024);
        mem.load(base, &text);
        let mut vm = Vm::new(base);
        let stop = vm.run(&mut mem, &mut ExitOnly, 1000);
        assert_eq!(stop, StopReason::Exited(10));
        assert_eq!(vm.stats.calls, 1);
    }

    #[test]
    fn call_via_register() {
        let (stop, vm) = run_at(
            0x2000,
            r#"
            .text
            li r1, 5
            li r5, 0x2020         ; address of _double below (0x2000 + 4*8)
            callr r5
            sys 0
            nop                   ; 0x2018: padding so _double sits at 0x2020
_double:    add r1, r1, r1
            ret
            "#,
        );
        assert_eq!(stop, StopReason::Exited(10));
        assert_eq!(vm.stats.calls, 1);
    }

    #[test]
    fn memory_loads_and_stores() {
        let (stop, vm) = run_at(
            0x1000,
            r#"
            .text
            li r2, 0x8000
            li r1, 0xabcd
            st r1, [r2+4]
            ld r3, [r2+4]
            ld8 r4, [r2+5]     ; second byte of 0xabcd little-endian = 0xab
            mov r1, r4
            sys 0
            "#,
        );
        assert_eq!(stop, StopReason::Exited(0xab));
        assert_eq!(vm.stats.loads, 2);
        assert_eq!(vm.stats.stores, 1);
    }

    #[test]
    fn signed_compares() {
        let (stop, _) = run_at(
            0x1000,
            r#"
            .text
            li r1, -1          ; 0xffffffff
            li r2, 1
            blt r1, r2, _ok    ; signed: -1 < 1
            li r1, 0
            sys 0
_ok:        li r1, 77
            sys 0
            "#,
        );
        assert_eq!(stop, StopReason::Exited(77));
    }

    #[test]
    fn div_by_zero_faults() {
        let (stop, _) = run_at(
            0x1000,
            r#"
            .text
            li r1, 10
            divu r1, r1, r0
            sys 0
            "#,
        );
        assert!(matches!(stop, StopReason::Fault(VmFault::DivByZero { .. })));
    }

    #[test]
    fn unmapped_access_faults() {
        let (stop, _) = run_at(
            0x1000,
            r#"
            .text
            li r2, 0
            ld r1, [r2]        ; below base
            sys 0
            "#,
        );
        assert!(matches!(
            stop,
            StopReason::Fault(VmFault::MemFault {
                addr: 0,
                write: false
            })
        ));
    }

    #[test]
    fn fuel_exhaustion_detected() {
        let obj = assemble("t.o", ".text\n_l: jmp 0x1000\n").unwrap();
        let text = &obj.sections[0].bytes;
        let mut mem = FlatMemory::new(0x1000, 4096);
        mem.load(0x1000, text);
        let mut vm = Vm::new(0x1000);
        let stop = vm.run(&mut mem, &mut ExitOnly, 100);
        assert_eq!(stop, StopReason::Fault(VmFault::FuelExhausted));
        assert_eq!(vm.stats.instructions, 100);
    }

    #[test]
    fn halt_stops() {
        let (stop, _) = run_at(0x1000, ".text\nhalt\n");
        assert_eq!(stop, StopReason::Halted);
    }

    #[test]
    fn illegal_instruction_faults() {
        let mut mem = FlatMemory::new(0x1000, 4096);
        mem.load(0x1000, &[0xff; 8]);
        let mut vm = Vm::new(0x1000);
        let stop = vm.run(&mut mem, &mut ExitOnly, 10);
        assert_eq!(stop, StopReason::Fault(VmFault::BadOpcode { pc: 0x1000 }));
    }

    #[test]
    fn unknown_syscall_rejected_by_exit_only() {
        let (stop, _) = run_at(0x1000, ".text\nsys 42\n");
        assert!(matches!(
            stop,
            StopReason::Fault(VmFault::BadSyscall { num: 42, .. })
        ));
    }

    #[test]
    fn jmpr_dispatches() {
        let (stop, _) = run_at(
            0x1000,
            r#"
            .text
            li r5, 0x1018
            jmpr r5
            halt               ; skipped
            li r1, 9           ; 0x1018
            sys 0
            "#,
        );
        assert_eq!(stop, StopReason::Exited(9));
    }
}
