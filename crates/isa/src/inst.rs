//! U32 instruction encoding.
//!
//! Every instruction is exactly [`INST_BYTES`] = 8 bytes:
//!
//! ```text
//! byte 0: opcode
//! byte 1: ra
//! byte 2: rb
//! byte 3: rc
//! bytes 4..8: imm (little-endian u32)
//! ```
//!
//! The immediate always sits at offset +4, so an `Abs32`/`Pcrel32`
//! relocation against an instruction patches `inst_offset + 4`.

/// Size of every instruction, in bytes.
pub const INST_BYTES: u64 = 8;

/// Number of general-purpose registers. `r0` is hardwired to zero.
pub const NUM_REGS: usize = 16;

/// Stack-pointer register, by convention.
pub const REG_SP: u8 = 14;
/// Link register (return address), by convention.
pub const REG_LR: u8 = 15;

/// U32 opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Opcode {
    /// No operation.
    Nop = 0,
    /// Stop the machine.
    Halt = 1,
    /// `ra = imm` (also the target of absolute-address relocations).
    Li = 2,
    /// `ra = rb`.
    Mov = 3,
    /// `ra = rb + rc`.
    Add = 4,
    /// `ra = rb - rc`.
    Sub = 5,
    /// `ra = rb * rc` (wrapping).
    Mul = 6,
    /// `ra = rb / rc` (unsigned; faults on zero divisor).
    Divu = 7,
    /// `ra = rb & rc`.
    And = 8,
    /// `ra = rb | rc`.
    Or = 9,
    /// `ra = rb ^ rc`.
    Xor = 10,
    /// `ra = rb << (rc & 31)`.
    Shl = 11,
    /// `ra = rb >> (rc & 31)` (logical).
    Shr = 12,
    /// `ra = rb + sext(imm)`.
    Addi = 13,
    /// `ra = mem32[rb + sext(imm)]`.
    Ld = 14,
    /// `mem32[rb + sext(imm)] = ra`.
    St = 15,
    /// `ra = mem8[rb + sext(imm)]` (zero-extended).
    Ld8 = 16,
    /// `mem8[rb + sext(imm)] = ra & 0xff`.
    St8 = 17,
    /// `lr = pc + 8; pc = imm` (absolute call; `Abs32` reloc site).
    Call = 18,
    /// `lr = pc + 8; pc = rb` (indirect call through a register).
    Callr = 19,
    /// `pc = lr`.
    Ret = 20,
    /// `pc = imm` (absolute jump; `Abs32` reloc site).
    Jmp = 21,
    /// `if ra == rb: pc = pc + 8 + sext(imm)` (`Pcrel32` reloc site).
    Beq = 22,
    /// `if ra != rb: pc = pc + 8 + sext(imm)`.
    Bne = 23,
    /// `if (i32)ra < (i32)rb: pc = pc + 8 + sext(imm)`.
    Blt = 24,
    /// `if (i32)ra >= (i32)rb: pc = pc + 8 + sext(imm)`.
    Bge = 25,
    /// System call `imm`; arguments in `r1..r4`, result in `r1`.
    Sys = 26,
    /// `pc = rb` (indirect jump; dispatch tables use this).
    Jmpr = 27,
}

impl Opcode {
    /// Decodes an opcode byte.
    #[must_use]
    pub fn from_code(c: u8) -> Option<Opcode> {
        use Opcode::*;
        Some(match c {
            0 => Nop,
            1 => Halt,
            2 => Li,
            3 => Mov,
            4 => Add,
            5 => Sub,
            6 => Mul,
            7 => Divu,
            8 => And,
            9 => Or,
            10 => Xor,
            11 => Shl,
            12 => Shr,
            13 => Addi,
            14 => Ld,
            15 => St,
            16 => Ld8,
            17 => St8,
            18 => Call,
            19 => Callr,
            20 => Ret,
            21 => Jmp,
            22 => Beq,
            23 => Bne,
            24 => Blt,
            25 => Bge,
            26 => Sys,
            27 => Jmpr,
            _ => return None,
        })
    }

    /// The assembler mnemonic.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        use Opcode::*;
        match self {
            Nop => "nop",
            Halt => "halt",
            Li => "li",
            Mov => "mov",
            Add => "add",
            Sub => "sub",
            Mul => "mul",
            Divu => "divu",
            And => "and",
            Or => "or",
            Xor => "xor",
            Shl => "shl",
            Shr => "shr",
            Addi => "addi",
            Ld => "ld",
            St => "st",
            Ld8 => "ld8",
            St8 => "st8",
            Call => "call",
            Callr => "callr",
            Ret => "ret",
            Jmp => "jmp",
            Beq => "beq",
            Bne => "bne",
            Blt => "blt",
            Bge => "bge",
            Sys => "sys",
            Jmpr => "jmpr",
        }
    }

    /// Looks an opcode up by mnemonic.
    #[must_use]
    pub fn from_mnemonic(m: &str) -> Option<Opcode> {
        use Opcode::*;
        Some(match m {
            "nop" => Nop,
            "halt" => Halt,
            "li" => Li,
            "mov" => Mov,
            "add" => Add,
            "sub" => Sub,
            "mul" => Mul,
            "divu" => Divu,
            "and" => And,
            "or" => Or,
            "xor" => Xor,
            "shl" => Shl,
            "shr" => Shr,
            "addi" => Addi,
            "ld" => Ld,
            "st" => St,
            "ld8" => Ld8,
            "st8" => St8,
            "call" => Call,
            "callr" => Callr,
            "ret" => Ret,
            "jmp" => Jmp,
            "beq" => Beq,
            "bne" => Bne,
            "blt" => Blt,
            "bge" => Bge,
            "sys" => Sys,
            "jmpr" => Jmpr,
            _ => return None,
        })
    }
}

/// A decoded instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Inst {
    /// Operation.
    pub op: Opcode,
    /// First register operand (usually the destination).
    pub ra: u8,
    /// Second register operand.
    pub rb: u8,
    /// Third register operand.
    pub rc: u8,
    /// 32-bit immediate (the relocation site).
    pub imm: u32,
}

impl Inst {
    /// Builds an instruction; unused fields are zero.
    #[must_use]
    pub fn new(op: Opcode) -> Inst {
        Inst {
            op,
            ra: 0,
            rb: 0,
            rc: 0,
            imm: 0,
        }
    }

    /// Sets `ra`.
    #[must_use]
    pub fn ra(mut self, r: u8) -> Inst {
        self.ra = r;
        self
    }

    /// Sets `rb`.
    #[must_use]
    pub fn rb(mut self, r: u8) -> Inst {
        self.rb = r;
        self
    }

    /// Sets `rc`.
    #[must_use]
    pub fn rc(mut self, r: u8) -> Inst {
        self.rc = r;
        self
    }

    /// Sets the immediate.
    #[must_use]
    pub fn imm(mut self, v: u32) -> Inst {
        self.imm = v;
        self
    }

    /// Sets the immediate from a signed value.
    #[must_use]
    pub fn simm(mut self, v: i32) -> Inst {
        self.imm = v as u32;
        self
    }

    /// Encodes into 8 bytes.
    #[must_use]
    pub fn encode(&self) -> [u8; 8] {
        let mut b = [0u8; 8];
        b[0] = self.op as u8;
        b[1] = self.ra;
        b[2] = self.rb;
        b[3] = self.rc;
        b[4..8].copy_from_slice(&self.imm.to_le_bytes());
        b
    }

    /// Decodes from 8 bytes. Returns `None` on an unknown opcode or an
    /// out-of-range register field (so malformed code faults the guest
    /// as an illegal instruction instead of corrupting the machine).
    #[must_use]
    pub fn decode(b: &[u8; 8]) -> Option<Inst> {
        if b[1] as usize >= NUM_REGS || b[2] as usize >= NUM_REGS || b[3] as usize >= NUM_REGS {
            return None;
        }
        Some(Inst {
            op: Opcode::from_code(b[0])?,
            ra: b[1],
            rb: b[2],
            rc: b[3],
            imm: u32::from_le_bytes(b[4..8].try_into().expect("slice length 4")),
        })
    }

    /// Renders assembler-compatible text.
    #[must_use]
    pub fn disassemble(&self) -> String {
        use Opcode::*;
        let m = self.op.mnemonic();
        match self.op {
            Nop | Halt | Ret => m.to_string(),
            Li => format!("{m} r{}, {:#x}", self.ra, self.imm),
            Mov => format!("{m} r{}, r{}", self.ra, self.rb),
            Add | Sub | Mul | Divu | And | Or | Xor | Shl | Shr => {
                format!("{m} r{}, r{}, r{}", self.ra, self.rb, self.rc)
            }
            Addi => format!("{m} r{}, r{}, {}", self.ra, self.rb, self.imm as i32),
            Ld | Ld8 => format!("{m} r{}, [r{}{:+}]", self.ra, self.rb, self.imm as i32),
            St | St8 => format!("{m} r{}, [r{}{:+}]", self.ra, self.rb, self.imm as i32),
            Call | Jmp => format!("{m} {:#x}", self.imm),
            Callr | Jmpr => format!("{m} r{}", self.rb),
            Beq | Bne | Blt | Bge => {
                format!("{m} r{}, r{}, {}", self.ra, self.rb, self.imm as i32)
            }
            Sys => format!("{m} {}", self.imm),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip_all_opcodes() {
        for code in 0..=27u8 {
            let op = Opcode::from_code(code).expect("valid opcode");
            let inst = Inst {
                op,
                ra: 1,
                rb: 2,
                rc: 3,
                imm: 0xdead_beef,
            };
            let bytes = inst.encode();
            assert_eq!(Inst::decode(&bytes), Some(inst));
        }
    }

    #[test]
    fn unknown_opcode_decodes_to_none() {
        let mut b = [0u8; 8];
        b[0] = 0xff;
        assert_eq!(Inst::decode(&b), None);
    }

    #[test]
    fn out_of_range_registers_decode_to_none() {
        // A register field >= NUM_REGS must be an illegal instruction,
        // not a host-side index-out-of-bounds.
        for field in 1..=3 {
            let mut b = Inst::new(Opcode::Add).encode();
            b[field] = 16;
            assert_eq!(Inst::decode(&b), None, "field {field}");
        }
    }

    #[test]
    fn imm_lives_at_offset_4() {
        let inst = Inst::new(Opcode::Call).imm(0x1122_3344);
        let b = inst.encode();
        assert_eq!(&b[4..8], &0x1122_3344u32.to_le_bytes());
    }

    #[test]
    fn mnemonic_roundtrip() {
        for code in 0..=27u8 {
            let op = Opcode::from_code(code).unwrap();
            assert_eq!(Opcode::from_mnemonic(op.mnemonic()), Some(op));
        }
        assert_eq!(Opcode::from_mnemonic("bogus"), None);
    }

    #[test]
    fn simm_wraps_correctly() {
        let i = Inst::new(Opcode::Addi).simm(-8);
        assert_eq!(i.imm as i32, -8);
    }

    #[test]
    fn disassemble_smoke() {
        assert_eq!(Inst::new(Opcode::Ret).disassemble(), "ret");
        assert_eq!(
            Inst::new(Opcode::Li).ra(3).imm(0x10).disassemble(),
            "li r3, 0x10"
        );
        assert_eq!(
            Inst::new(Opcode::Ld).ra(1).rb(14).simm(-4).disassemble(),
            "ld r1, [r14-4]"
        );
        assert_eq!(Inst::new(Opcode::Sys).imm(1).disassemble(), "sys 1");
    }
}
