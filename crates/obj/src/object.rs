//! The relocatable object file.

use crate::error::{ObjError, Result};
use crate::hash::{ContentHash, Fnv64};
use crate::reloc::Relocation;
use crate::section::{Section, SectionKind};
use crate::symbol::{Symbol, SymbolDef, SymbolTable};

/// A relocatable object file: named sections, a symbol table, relocations.
///
/// This is the *leaf operand* of every OMOS operation — "the leaf operands
/// to OMOS operations are relocatable object files". Mutation happens only
/// while an object is being built (by the assembler, a linker pass, or
/// [`crate::View::materialize`]); once handed to the server it is shared
/// immutably behind an `Arc`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObjectFile {
    /// Human-readable origin (e.g. `/obj/ls.o`). Not part of the content
    /// hash, so the same bytes under two names cache identically.
    pub name: String,
    /// Sections, indexed by the `section` fields of symbols and relocations.
    pub sections: Vec<Section>,
    /// The symbol table.
    pub symbols: SymbolTable,
    /// Relocation records.
    pub relocs: Vec<Relocation>,
}

impl ObjectFile {
    /// Creates an empty object file.
    #[must_use]
    pub fn new(name: &str) -> ObjectFile {
        ObjectFile {
            name: name.to_string(),
            ..ObjectFile::default()
        }
    }

    /// Adds a section and returns its index.
    pub fn add_section(&mut self, section: Section) -> usize {
        self.sections.push(section);
        self.sections.len() - 1
    }

    /// Finds a section index by name.
    #[must_use]
    pub fn section_index(&self, name: &str) -> Option<usize> {
        self.sections.iter().position(|s| s.name == name)
    }

    /// Returns the index of the first section of `kind`, creating a
    /// conventionally-named empty one if absent.
    pub fn section_of_kind(&mut self, kind: SectionKind) -> usize {
        if let Some(i) = self.sections.iter().position(|s| s.kind == kind) {
            return i;
        }
        let s = match kind {
            SectionKind::Bss => Section::bss(kind.default_name(), 0, 8),
            _ => Section::with_bytes(kind.default_name(), kind, Vec::new(), 8),
        };
        self.add_section(s)
    }

    /// Inserts a symbol (see [`SymbolTable::insert`] for merge rules).
    pub fn define(&mut self, sym: Symbol) -> Result<()> {
        self.symbols.insert(sym)
    }

    /// Records a relocation.
    pub fn relocate(&mut self, r: Relocation) {
        // The relocation target symbol becomes a reference if unknown.
        if self.symbols.get(&r.symbol).is_none() {
            // Inserting an undefined into a table that lacks the name cannot
            // fail; ignore the impossible error rather than unwrap.
            let _ = self.symbols.insert(Symbol::undefined(&r.symbol));
        }
        self.relocs.push(r);
    }

    /// Total size of all sections of `kind`.
    #[must_use]
    pub fn size_of_kind(&self, kind: SectionKind) -> u64 {
        self.sections
            .iter()
            .filter(|s| s.kind == kind)
            .map(|s| s.size)
            .sum()
    }

    /// Checks structural invariants: every symbol's defining section exists
    /// and its offset is in range; every relocation site is inside its
    /// section and patchable.
    pub fn validate(&self) -> Result<()> {
        for s in self.symbols.iter() {
            if let SymbolDef::Defined { section, offset } = s.def {
                let sec = self.sections.get(section).ok_or_else(|| {
                    ObjError::BadSection(format!("#{section} (symbol {})", s.name))
                })?;
                if offset > sec.size {
                    return Err(ObjError::Invalid(format!(
                        "symbol {} at {}+{offset:#x} beyond section size {:#x}",
                        s.name, sec.name, sec.size
                    )));
                }
            }
        }
        for r in &self.relocs {
            let sec = self
                .sections
                .get(r.section)
                .ok_or_else(|| ObjError::BadSection(format!("#{} (reloc)", r.section)))?;
            if sec.kind == SectionKind::Bss {
                return Err(ObjError::Invalid(format!(
                    "relocation against BSS section {}",
                    sec.name
                )));
            }
            if r.offset + r.kind.width() > sec.size {
                return Err(ObjError::RelocOutOfRange {
                    section: sec.name.clone(),
                    offset: r.offset,
                });
            }
        }
        Ok(())
    }

    /// Deterministic content hash covering sections, symbols, and
    /// relocations (but not [`ObjectFile::name`]).
    #[must_use]
    pub fn content_hash(&self) -> ContentHash {
        let mut h = Fnv64::new();
        h.write(&(self.sections.len() as u64).to_le_bytes());
        for s in &self.sections {
            s.hash_into(&mut h);
        }
        self.symbols.hash_into(&mut h);
        h.write(&(self.relocs.len() as u64).to_le_bytes());
        for r in &self.relocs {
            r.hash_into(&mut h);
        }
        ContentHash(h.finish())
    }

    /// Counts used by the cost model: `(symbols, relocations, bytes)`.
    #[must_use]
    pub fn work_counts(&self) -> (u64, u64, u64) {
        (
            self.symbols.len() as u64,
            self.relocs.len() as u64,
            self.sections.iter().map(|s| s.bytes.len() as u64).sum(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reloc::RelocKind;

    fn sample() -> ObjectFile {
        let mut o = ObjectFile::new("sample.o");
        let text = o.add_section(Section::with_bytes(
            ".text",
            SectionKind::Text,
            vec![0; 32],
            8,
        ));
        let data = o.add_section(Section::with_bytes(
            ".data",
            SectionKind::Data,
            vec![0; 16],
            8,
        ));
        o.define(Symbol::defined("_main", text, 0)).unwrap();
        o.define(Symbol::defined("_counter", data, 0)).unwrap();
        o.relocate(Relocation::new(text, 4, RelocKind::Abs32, "_counter"));
        o.relocate(Relocation::new(text, 12, RelocKind::Abs32, "_printf"));
        o
    }

    #[test]
    fn relocate_registers_reference() {
        let o = sample();
        assert!(o.symbols.get("_printf").is_some());
        assert!(!o.symbols.get("_printf").unwrap().def.is_definition());
    }

    #[test]
    fn validate_accepts_sample() {
        sample().validate().unwrap();
    }

    #[test]
    fn validate_rejects_reloc_past_end() {
        let mut o = sample();
        o.relocate(Relocation::new(0, 30, RelocKind::Abs32, "_x"));
        assert!(matches!(
            o.validate(),
            Err(ObjError::RelocOutOfRange { .. })
        ));
    }

    #[test]
    fn validate_rejects_bad_symbol_section() {
        let mut o = sample();
        o.define(Symbol::defined("_ghost", 9, 0)).unwrap();
        assert!(matches!(o.validate(), Err(ObjError::BadSection(_))));
    }

    #[test]
    fn validate_rejects_bss_reloc() {
        let mut o = sample();
        let bss = o.add_section(Section::bss(".bss", 64, 8));
        o.relocs
            .push(Relocation::new(bss, 0, RelocKind::Abs32, "_x"));
        assert!(matches!(o.validate(), Err(ObjError::Invalid(_))));
    }

    #[test]
    fn section_of_kind_creates_once() {
        let mut o = ObjectFile::new("t.o");
        let a = o.section_of_kind(SectionKind::Bss);
        let b = o.section_of_kind(SectionKind::Bss);
        assert_eq!(a, b);
        assert_eq!(o.sections.len(), 1);
        assert_eq!(o.sections[a].name, ".bss");
    }

    #[test]
    fn content_hash_ignores_name_but_not_content() {
        let a = sample();
        let mut b = sample();
        b.name = "other.o".into();
        assert_eq!(a.content_hash(), b.content_hash());
        b.sections[0].bytes[0] = 0xff;
        assert_ne!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn work_counts() {
        let o = sample();
        let (syms, relocs, bytes) = o.work_counts();
        assert_eq!(syms, 3);
        assert_eq!(relocs, 2);
        assert_eq!(bytes, 48);
    }

    #[test]
    fn size_of_kind_sums() {
        let mut o = sample();
        o.add_section(Section::with_bytes(
            ".text2",
            SectionKind::Text,
            vec![0; 8],
            8,
        ));
        assert_eq!(o.size_of_kind(SectionKind::Text), 40);
        assert_eq!(o.size_of_kind(SectionKind::Bss), 0);
    }
}
