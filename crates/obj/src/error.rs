//! Error type shared by every XOF operation.

use std::fmt;

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ObjError>;

/// Errors produced while building, transforming, or (de)serializing object
/// files.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObjError {
    /// A symbol was defined more than once during a merge.
    DuplicateSymbol(String),
    /// A symbol required by an operation does not exist.
    UndefinedSymbol(String),
    /// A section index or name was invalid.
    BadSection(String),
    /// A relocation referenced an offset outside its section.
    RelocOutOfRange {
        /// Section the relocation targets.
        section: String,
        /// Byte offset of the relocation site.
        offset: u64,
    },
    /// A regular expression failed to compile.
    BadRegex(String),
    /// The wire image was malformed (bad magic, truncated, etc.).
    Malformed(String),
    /// The requested encoding backend is unknown.
    UnknownFormat(String),
    /// An operation's preconditions were violated (free-form description).
    Invalid(String),
}

impl fmt::Display for ObjError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjError::DuplicateSymbol(s) => write!(f, "multiple definitions of symbol `{s}`"),
            ObjError::UndefinedSymbol(s) => write!(f, "undefined symbol `{s}`"),
            ObjError::BadSection(s) => write!(f, "bad section `{s}`"),
            ObjError::RelocOutOfRange { section, offset } => {
                write!(f, "relocation at {section}+{offset:#x} out of range")
            }
            ObjError::BadRegex(s) => write!(f, "bad regular expression: {s}"),
            ObjError::Malformed(s) => write!(f, "malformed object image: {s}"),
            ObjError::UnknownFormat(s) => write!(f, "unknown object format `{s}`"),
            ObjError::Invalid(s) => write!(f, "invalid operation: {s}"),
        }
    }
}

impl std::error::Error for ObjError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ObjError::DuplicateSymbol("_malloc".into());
        assert!(e.to_string().contains("_malloc"));
        let e = ObjError::RelocOutOfRange {
            section: ".text".into(),
            offset: 0x40,
        };
        assert!(e.to_string().contains(".text+0x40"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ObjError>();
    }
}
