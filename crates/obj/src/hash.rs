//! Content hashing used to key the OMOS caches.
//!
//! OMOS "treats executables as a cache"; every cache level in the server is
//! keyed by a hash of the inputs that produced an artifact. We use FNV-1a
//! (64-bit) — deterministic across runs, which matters because the simulated
//! clock and the benchmark tables must be reproducible.

/// A 64-bit content hash.
///
/// Wrapped in a newtype so cache keys cannot be confused with plain lengths
/// or addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContentHash(pub u64);

impl ContentHash {
    /// Hash of the empty byte string.
    pub const EMPTY: ContentHash = ContentHash(FNV_OFFSET);

    /// Combines this hash with another, order-sensitively.
    #[must_use]
    pub fn combine(self, other: ContentHash) -> ContentHash {
        let mut h = Fnv64::with_state(self.0);
        h.write(&other.0.to_le_bytes());
        ContentHash(h.finish())
    }

    /// Combines this hash with raw bytes.
    #[must_use]
    pub fn with_bytes(self, bytes: &[u8]) -> ContentHash {
        let mut h = Fnv64::with_state(self.0);
        h.write(bytes);
        ContentHash(h.finish())
    }

    /// Combines this hash with a string (length-prefixed so `"ab","c"` and
    /// `"a","bc"` hash differently).
    #[must_use]
    pub fn with_str(self, s: &str) -> ContentHash {
        self.with_bytes(&(s.len() as u64).to_le_bytes())
            .with_bytes(s.as_bytes())
    }

    /// Combines this hash with an integer.
    #[must_use]
    pub fn with_u64(self, v: u64) -> ContentHash {
        self.with_bytes(&v.to_le_bytes())
    }
}

impl std::fmt::Display for ContentHash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a hasher.
#[derive(Debug, Clone)]
pub struct Fnv64 {
    state: u64,
}

impl Fnv64 {
    /// Creates a hasher with the standard FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        Fnv64 { state: FNV_OFFSET }
    }

    /// Creates a hasher seeded with an existing state (for combining).
    #[must_use]
    pub fn with_state(state: u64) -> Self {
        Fnv64 { state }
    }

    /// Feeds bytes into the hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Returns the current hash value.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot FNV-1a hash of a byte slice.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> ContentHash {
    let mut h = Fnv64::new();
    h.write(bytes);
    ContentHash(h.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b"").0, 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a").0, 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar").0, 0x85944171f73967e8);
    }

    #[test]
    fn combine_is_order_sensitive() {
        let a = fnv1a(b"alpha");
        let b = fnv1a(b"beta");
        assert_ne!(a.combine(b), b.combine(a));
    }

    #[test]
    fn with_str_length_prefix_disambiguates() {
        let h1 = ContentHash::EMPTY.with_str("ab").with_str("c");
        let h2 = ContentHash::EMPTY.with_str("a").with_str("bc");
        assert_ne!(h1, h2);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut h = Fnv64::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), fnv1a(b"foobar").0);
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(format!("{}", ContentHash(0xff)), "00000000000000ff");
    }
}
