//! A small, self-contained regular-expression engine.
//!
//! The paper says "module operations typically take a regular expression as a
//! specification of the symbols to select" — e.g. `^_malloc$` in the
//! interposition example of Figure 2. Symbol names are short, so a
//! backtracking matcher over a compiled instruction stream is more than fast
//! enough, and avoids pulling a full regex dependency into the workspace.
//!
//! Supported syntax: literals, `\`-escapes, `.`, character classes
//! `[a-z]`/`[^a-z]`, anchors `^` and `$`, greedy quantifiers `*`, `+`, `?`,
//! counted repetition `{n}`/`{n,}`/`{n,m}`, alternation `|`, and grouping
//! `(...)` (non-capturing; the engine reports the whole-match span only,
//! which is all symbol renaming needs). A `{` that does not open a valid
//! counted repetition is an ordinary literal — symbol names legally
//! contain braces.

use crate::error::{ObjError, Result};

/// A compiled regular expression.
///
/// # Examples
///
/// ```
/// use omos_obj::Regex;
///
/// let re = Regex::new("^_malloc$").unwrap();
/// assert!(re.is_match("_malloc"));
/// assert!(!re.is_match("_xmalloc"));
/// assert_eq!(Regex::new("^_")?.replace("_puts", "_PKG_"), "_PKG_puts");
/// # Ok::<(), omos_obj::ObjError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Regex {
    pattern: String,
    prog: Vec<Inst>,
}

#[derive(Debug, Clone)]
enum Inst {
    Char(char),
    Any,
    Class {
        neg: bool,
        ranges: Vec<(char, char)>,
    },
    Start,
    End,
    /// Try `a` first, then `b` (both are absolute program counters).
    Split(usize, usize),
    Jmp(usize),
    Match,
}

impl Regex {
    /// Compiles a pattern.
    ///
    /// Returns [`ObjError::BadRegex`] on syntax errors (unbalanced parens,
    /// dangling quantifiers, unterminated classes or escapes).
    pub fn new(pattern: &str) -> Result<Regex> {
        let ast = Parser {
            chars: pattern.chars().collect(),
            pos: 0,
            pattern,
        }
        .parse()?;
        let mut prog = Vec::new();
        compile(&ast, &mut prog);
        prog.push(Inst::Match);
        Ok(Regex {
            pattern: pattern.to_string(),
            prog,
        })
    }

    /// The original pattern text.
    #[must_use]
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Returns true if the pattern matches anywhere in `text`.
    #[must_use]
    pub fn is_match(&self, text: &str) -> bool {
        self.find(text).is_some()
    }

    /// Returns the leftmost match as a `(start, end)` byte range.
    #[must_use]
    pub fn find(&self, text: &str) -> Option<(usize, usize)> {
        let chars: Vec<char> = text.chars().collect();
        // Byte offset of each char index (plus one-past-end).
        let mut offs = Vec::with_capacity(chars.len() + 1);
        let mut o = 0;
        for c in &chars {
            offs.push(o);
            o += c.len_utf8();
        }
        offs.push(o);
        for start in 0..=chars.len() {
            if let Some(end) = self.run(&chars, start) {
                return Some((offs[start], offs[end]));
            }
        }
        None
    }

    /// Replaces the leftmost match in `text` with `replacement` (literal; no
    /// capture references). Returns the original string when nothing matches.
    #[must_use]
    pub fn replace(&self, text: &str, replacement: &str) -> String {
        match self.find(text) {
            Some((s, e)) => {
                let mut out = String::with_capacity(text.len() + replacement.len());
                out.push_str(&text[..s]);
                out.push_str(replacement);
                out.push_str(&text[e..]);
                out
            }
            None => text.to_string(),
        }
    }

    /// Runs the program from char index `start`; returns the end index of a
    /// match if one begins exactly at `start`.
    fn run(&self, chars: &[char], start: usize) -> Option<usize> {
        self.exec(0, chars, start)
    }

    fn exec(&self, mut pc: usize, chars: &[char], mut pos: usize) -> Option<usize> {
        loop {
            match &self.prog[pc] {
                Inst::Char(c) => {
                    if pos < chars.len() && chars[pos] == *c {
                        pc += 1;
                        pos += 1;
                    } else {
                        return None;
                    }
                }
                Inst::Any => {
                    if pos < chars.len() {
                        pc += 1;
                        pos += 1;
                    } else {
                        return None;
                    }
                }
                Inst::Class { neg, ranges } => {
                    if pos >= chars.len() {
                        return None;
                    }
                    let c = chars[pos];
                    let inside = ranges.iter().any(|&(lo, hi)| c >= lo && c <= hi);
                    if inside != *neg {
                        pc += 1;
                        pos += 1;
                    } else {
                        return None;
                    }
                }
                Inst::Start => {
                    if pos == 0 {
                        pc += 1;
                    } else {
                        return None;
                    }
                }
                Inst::End => {
                    if pos == chars.len() {
                        pc += 1;
                    } else {
                        return None;
                    }
                }
                Inst::Split(a, b) => {
                    if let Some(end) = self.exec(*a, chars, pos) {
                        return Some(end);
                    }
                    pc = *b;
                }
                Inst::Jmp(t) => pc = *t,
                Inst::Match => return Some(pos),
            }
        }
    }
}

#[derive(Debug, Clone)]
enum Ast {
    Empty,
    Char(char),
    Any,
    Class {
        neg: bool,
        ranges: Vec<(char, char)>,
    },
    Start,
    End,
    Concat(Vec<Ast>),
    Alt(Box<Ast>, Box<Ast>),
    Star(Box<Ast>),
    Plus(Box<Ast>),
    Quest(Box<Ast>),
}

struct Parser<'a> {
    chars: Vec<char>,
    pos: usize,
    pattern: &'a str,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ObjError {
        ObjError::BadRegex(format!("{msg} in `{}`", self.pattern))
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn parse(&mut self) -> Result<Ast> {
        let ast = self.alt()?;
        if self.pos != self.chars.len() {
            return Err(self.err("unexpected `)`"));
        }
        Ok(ast)
    }

    fn alt(&mut self) -> Result<Ast> {
        let mut lhs = self.concat()?;
        while self.peek() == Some('|') {
            self.bump();
            let rhs = self.concat()?;
            lhs = Ast::Alt(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn concat(&mut self) -> Result<Ast> {
        let mut items = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            items.push(self.repeat()?);
        }
        Ok(match items.len() {
            0 => Ast::Empty,
            1 => items.pop().expect("len checked"),
            _ => Ast::Concat(items),
        })
    }

    fn repeat(&mut self) -> Result<Ast> {
        let atom = self.atom()?;
        match self.peek() {
            Some('*') => {
                self.bump();
                Ok(Ast::Star(Box::new(atom)))
            }
            Some('+') => {
                self.bump();
                Ok(Ast::Plus(Box::new(atom)))
            }
            Some('?') => {
                self.bump();
                Ok(Ast::Quest(Box::new(atom)))
            }
            Some('{') => match self.counted()? {
                Some((min, max)) => Ok(expand_counted(&atom, min, max)),
                // Not a counted repetition: leave the `{` for the next
                // atom to consume as a literal.
                None => Ok(atom),
            },
            _ => Ok(atom),
        }
    }

    /// Tries to read `{n}`, `{n,}`, or `{n,m}` at the cursor. Returns
    /// `Ok(None)` without consuming anything when the braces are not a
    /// well-formed counted repetition.
    fn counted(&mut self) -> Result<Option<(u32, Option<u32>)>> {
        /// Repetition counts are expanded by cloning; cap them so a
        /// pathological pattern cannot balloon the program.
        const MAX_COUNT: u32 = 1000;
        let save = self.pos;
        self.bump(); // `{`
        let min = match self.digits() {
            Some(n) => n,
            None => {
                self.pos = save;
                return Ok(None);
            }
        };
        let max = match self.peek() {
            Some('}') => Some(min),
            Some(',') => {
                self.bump();
                match self.peek() {
                    Some('}') => None,
                    _ => match self.digits() {
                        Some(n) => Some(n),
                        None => {
                            self.pos = save;
                            return Ok(None);
                        }
                    },
                }
            }
            _ => {
                self.pos = save;
                return Ok(None);
            }
        };
        if self.peek() != Some('}') {
            self.pos = save;
            return Ok(None);
        }
        self.bump(); // `}`
        if max.is_some_and(|m| m < min) {
            return Err(self.err("inverted repetition"));
        }
        if min > MAX_COUNT || max.is_some_and(|m| m > MAX_COUNT) {
            return Err(self.err("counted repetition too large"));
        }
        Ok(Some((min, max)))
    }

    /// A run of ASCII digits at the cursor, if any.
    fn digits(&mut self) -> Option<u32> {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
        }
        if self.pos == start {
            return None;
        }
        let s: String = self.chars[start..self.pos].iter().collect();
        match s.parse() {
            Ok(n) => Some(n),
            Err(_) => Some(u32::MAX), // overflow; rejected by the cap
        }
    }

    fn atom(&mut self) -> Result<Ast> {
        match self.bump() {
            None => Err(self.err("unexpected end of pattern")),
            Some('(') => {
                let inner = self.alt()?;
                if self.bump() != Some(')') {
                    return Err(self.err("unbalanced `(`"));
                }
                Ok(inner)
            }
            Some('[') => self.class(),
            Some('.') => Ok(Ast::Any),
            Some('^') => Ok(Ast::Start),
            Some('$') => Ok(Ast::End),
            Some('*') | Some('+') | Some('?') => Err(self.err("dangling quantifier")),
            Some('\\') => match self.bump() {
                None => Err(self.err("dangling escape")),
                Some('d') => Ok(Ast::Class {
                    neg: false,
                    ranges: vec![('0', '9')],
                }),
                Some('w') => Ok(Ast::Class {
                    neg: false,
                    ranges: vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')],
                }),
                Some('s') => Ok(Ast::Class {
                    neg: false,
                    ranges: vec![(' ', ' '), ('\t', '\t'), ('\n', '\n'), ('\r', '\r')],
                }),
                Some(c) => Ok(Ast::Char(c)),
            },
            Some(c) => Ok(Ast::Char(c)),
        }
    }

    fn class(&mut self) -> Result<Ast> {
        let neg = if self.peek() == Some('^') {
            self.bump();
            true
        } else {
            false
        };
        let mut ranges = Vec::new();
        let mut first = true;
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated `[`")),
                Some(']') if !first => break,
                Some(c) => {
                    let lo = if c == '\\' {
                        self.bump()
                            .ok_or_else(|| self.err("dangling escape in class"))?
                    } else {
                        c
                    };
                    if self.peek() == Some('-')
                        && self.chars.get(self.pos + 1).is_some_and(|&c| c != ']')
                    {
                        self.bump(); // `-`
                        let hi = match self.bump() {
                            Some('\\') => self
                                .bump()
                                .ok_or_else(|| self.err("dangling escape in class"))?,
                            Some(h) => h,
                            None => return Err(self.err("unterminated range")),
                        };
                        if hi < lo {
                            return Err(self.err("inverted range"));
                        }
                        ranges.push((lo, hi));
                    } else {
                        ranges.push((lo, lo));
                    }
                }
            }
            first = false;
        }
        Ok(Ast::Class { neg, ranges })
    }
}

/// Expands a counted repetition by cloning: `min` mandatory copies, then
/// either a trailing `Star` (`{n,}`) or `max - min` optional copies.
fn expand_counted(atom: &Ast, min: u32, max: Option<u32>) -> Ast {
    let mut items = Vec::new();
    for _ in 0..min {
        items.push(atom.clone());
    }
    match max {
        None => items.push(Ast::Star(Box::new(atom.clone()))),
        Some(max) => {
            for _ in min..max {
                items.push(Ast::Quest(Box::new(atom.clone())));
            }
        }
    }
    match items.len() {
        0 => Ast::Empty,
        1 => items.pop().expect("len checked"),
        _ => Ast::Concat(items),
    }
}

fn compile(ast: &Ast, prog: &mut Vec<Inst>) {
    match ast {
        Ast::Empty => {}
        Ast::Char(c) => prog.push(Inst::Char(*c)),
        Ast::Any => prog.push(Inst::Any),
        Ast::Class { neg, ranges } => {
            prog.push(Inst::Class {
                neg: *neg,
                ranges: ranges.clone(),
            });
        }
        Ast::Start => prog.push(Inst::Start),
        Ast::End => prog.push(Inst::End),
        Ast::Concat(items) => {
            for it in items {
                compile(it, prog);
            }
        }
        Ast::Alt(a, b) => {
            let split = prog.len();
            prog.push(Inst::Jmp(0)); // placeholder for Split
            compile(a, prog);
            let jmp = prog.len();
            prog.push(Inst::Jmp(0)); // placeholder
            let b_start = prog.len();
            compile(b, prog);
            let end = prog.len();
            prog[split] = Inst::Split(split + 1, b_start);
            prog[jmp] = Inst::Jmp(end);
        }
        Ast::Star(inner) => {
            let split = prog.len();
            prog.push(Inst::Jmp(0));
            compile(inner, prog);
            prog.push(Inst::Jmp(split));
            let end = prog.len();
            prog[split] = Inst::Split(split + 1, end);
        }
        Ast::Plus(inner) => {
            let start = prog.len();
            compile(inner, prog);
            let split = prog.len();
            prog.push(Inst::Split(start, split + 1));
        }
        Ast::Quest(inner) => {
            let split = prog.len();
            prog.push(Inst::Jmp(0));
            compile(inner, prog);
            let end = prog.len();
            prog[split] = Inst::Split(split + 1, end);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn re(p: &str) -> Regex {
        Regex::new(p).expect("pattern compiles")
    }

    #[test]
    fn literal_match() {
        assert!(re("malloc").is_match("_malloc_impl"));
        assert!(!re("malloc").is_match("calloc"));
    }

    #[test]
    fn anchors() {
        let r = re("^_malloc$");
        assert!(r.is_match("_malloc"));
        assert!(!r.is_match("__malloc"));
        assert!(!r.is_match("_mallocx"));
    }

    #[test]
    fn dot_and_star() {
        assert!(re("^a.*b$").is_match("ab"));
        assert!(re("^a.*b$").is_match("a123b"));
        assert!(!re("^a.+b$").is_match("ab"));
        assert!(re("^a.+b$").is_match("axb"));
    }

    #[test]
    fn question() {
        let r = re("^colou?r$");
        assert!(r.is_match("color"));
        assert!(r.is_match("colour"));
        assert!(!r.is_match("colouur"));
    }

    #[test]
    fn alternation() {
        let r = re("^(_malloc|_free|_realloc)$");
        assert!(r.is_match("_malloc"));
        assert!(r.is_match("_free"));
        assert!(!r.is_match("_calloc"));
    }

    #[test]
    fn classes() {
        assert!(re("^[a-z]+$").is_match("hello"));
        assert!(!re("^[a-z]+$").is_match("Hello"));
        assert!(re("^[^0-9]+$").is_match("abc"));
        assert!(!re("^[^0-9]+$").is_match("ab3"));
        assert!(re("^[-a-z]+$").is_match("a-b")); // literal `-` at class edge
    }

    #[test]
    fn escapes() {
        assert!(re(r"^\$start$").is_match("$start"));
        assert!(re(r"^\d+$").is_match("12345"));
        assert!(re(r"^\w+$").is_match("sym_9"));
        assert!(!re(r"^\w+$").is_match("a b"));
    }

    #[test]
    fn find_leftmost() {
        assert_eq!(re("l+").find("hello world"), Some((2, 4)));
        assert_eq!(re("z").find("hello"), None);
    }

    #[test]
    fn replace_prefix() {
        // A systematic rename: prepend a package name (the paper's example
        // scheme for interposition).
        let r = re("^_");
        assert_eq!(r.replace("_malloc", "_PKG_"), "_PKG_malloc");
        assert_eq!(r.replace("main", "_PKG_"), "main");
    }

    #[test]
    fn replace_whole() {
        let r = re("^_undefined_routine$");
        assert_eq!(r.replace("_undefined_routine", "_abort"), "_abort");
    }

    #[test]
    fn syntax_errors() {
        assert!(Regex::new("(unclosed").is_err());
        assert!(Regex::new("unopened)").is_err());
        assert!(Regex::new("*dangling").is_err());
        assert!(Regex::new("[unterminated").is_err());
        assert!(Regex::new("[z-a]").is_err());
        assert!(Regex::new("trailing\\").is_err());
        assert!(Regex::new("a{3,1}").is_err(), "inverted repetition");
        assert!(Regex::new("a{2000}").is_err(), "count above the cap");
    }

    #[test]
    fn counted_repetition() {
        let r = re("^a{3}$");
        assert!(r.is_match("aaa"));
        assert!(!r.is_match("aa"));
        assert!(!r.is_match("aaaa"));
        let r = re("^a{2,}$");
        assert!(!r.is_match("a"));
        assert!(r.is_match("aa"));
        assert!(r.is_match("aaaaa"));
        let r = re("^a{1,3}$");
        assert!(r.is_match("a"));
        assert!(r.is_match("aaa"));
        assert!(!r.is_match("aaaa"));
        assert!(re("^(ab){2}c$").is_match("ababc"));
        assert!(re("^x{0}y$").is_match("y"));
        assert!(re("^[0-9]{2}$").is_match("42"));
    }

    #[test]
    fn malformed_braces_are_literals() {
        // Symbol names legally contain braces; only a well-formed
        // counted repetition is a quantifier.
        assert!(re("^_f\\{1\\}$").is_match("_f{1}"));
        assert!(re("^a{b}$").is_match("a{b}"));
        assert!(re("^a{1x}$").is_match("a{1x}"));
        assert!(re("^a{,2}$").is_match("a{,2}"));
        assert!(re("^{2$").is_match("{2"));
        assert!(re("^a{$").is_match("a{"));
        // ...and a well-formed one is NOT a literal.
        assert!(!re("^a{2}$").is_match("a{2}"));
    }

    #[test]
    fn empty_pattern_matches_everything() {
        assert!(re("").is_match(""));
        assert!(re("").is_match("anything"));
    }

    #[test]
    fn nested_groups() {
        let r = re("^_(REAL_)?(malloc|free)$");
        assert!(r.is_match("_malloc"));
        assert!(r.is_match("_REAL_malloc"));
        assert!(r.is_match("_REAL_free"));
        assert!(!r.is_match("_REAL_"));
    }

    #[test]
    fn unicode_offsets_are_byte_ranges() {
        let r = re("b+");
        assert_eq!(r.find("äbb"), Some((2, 4)));
    }
}
