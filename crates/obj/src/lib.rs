//! XOF — the relocatable object format underlying the OMOS reproduction.
//!
//! The paper manipulates HP SOM and BSD `a.out` object files through "an
//! idealized interface for symbol manipulation". This crate provides that
//! idealized interface from scratch:
//!
//! * [`ObjectFile`] — sections, a symbol table, and relocations;
//! * [`View`] — a cheap, immutable overlay over a shared object file that
//!   renames, hides, virtualizes, or copies symbols without touching the
//!   section bytes (the paper's "views" which allow "fast, efficient,
//!   incremental modification of a symbol namespace");
//! * [`encode`] — two wire encodings (`aout`-style and `som`-style) behind a
//!   BFD-like backend switch, mirroring the paper's portability layer;
//! * [`regex`] — a small self-contained regular-expression engine, because
//!   "module operations typically take a regular expression as a
//!   specification of the symbols to select".
//!
//! Nothing in this crate knows about the U32 instruction set or the simulated
//! operating system; it is pure data structures and serialization.

pub mod encode;
pub mod error;
pub mod hash;
pub mod object;
pub mod regex;
pub mod reloc;
pub mod section;
pub mod symbol;
pub mod view;

pub use error::{ObjError, Result};
pub use hash::{fnv1a, ContentHash};
pub use object::ObjectFile;
pub use regex::Regex;
pub use reloc::{RelocKind, Relocation};
pub use section::{Section, SectionKind};
pub use symbol::{Symbol, SymbolBinding, SymbolDef, SymbolTable};
pub use view::View;
