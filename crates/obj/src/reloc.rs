//! Relocations: deferred address fixups recorded against symbols.

use crate::hash::Fnv64;

/// How a relocation site is patched once the target address is known.
///
/// U32 instructions are 8 bytes with a 32-bit immediate in their last four
/// bytes; `Abs32`/`Pcrel32` patch exactly that immediate field (or a bare
/// 32-bit data word). `Hi16`/`Lo16` exist to model PA-RISC-style split
/// immediates used by the `som` backend, and `Abs64` covers pointer-sized
/// data words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RelocKind {
    /// 32-bit absolute address.
    Abs32,
    /// 32-bit PC-relative displacement. The displacement is computed from
    /// the *start of the instruction containing the site* minus 8 bytes
    /// (i.e. relative to the next instruction), matching the VM's branch
    /// semantics.
    Pcrel32,
    /// 64-bit absolute address (data words only).
    Abs64,
    /// High 16 bits of a 32-bit absolute address.
    Hi16,
    /// Low 16 bits of a 32-bit absolute address.
    Lo16,
}

impl RelocKind {
    /// Number of bytes patched at the site.
    #[must_use]
    pub fn width(self) -> u64 {
        match self {
            RelocKind::Abs32 | RelocKind::Pcrel32 => 4,
            RelocKind::Abs64 => 8,
            RelocKind::Hi16 | RelocKind::Lo16 => 2,
        }
    }

    /// Stable small integer for serialization.
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            RelocKind::Abs32 => 0,
            RelocKind::Pcrel32 => 1,
            RelocKind::Abs64 => 2,
            RelocKind::Hi16 => 3,
            RelocKind::Lo16 => 4,
        }
    }

    /// Inverse of [`RelocKind::code`].
    #[must_use]
    pub fn from_code(c: u8) -> Option<RelocKind> {
        match c {
            0 => Some(RelocKind::Abs32),
            1 => Some(RelocKind::Pcrel32),
            2 => Some(RelocKind::Abs64),
            3 => Some(RelocKind::Hi16),
            4 => Some(RelocKind::Lo16),
            _ => None,
        }
    }

    /// True if the patched value depends on where the *site* ends up (and
    /// so stays correct when site and target move together).
    #[must_use]
    pub fn is_pc_relative(self) -> bool {
        matches!(self, RelocKind::Pcrel32)
    }
}

/// A relocation record: "patch `section`+`offset` with the address of
/// `symbol` (+`addend`), encoded per `kind`".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relocation {
    /// Index of the section containing the site.
    pub section: usize,
    /// Byte offset of the site within that section.
    pub offset: u64,
    /// Patch encoding.
    pub kind: RelocKind,
    /// Name of the target symbol.
    pub symbol: String,
    /// Constant added to the symbol's address.
    pub addend: i64,
}

impl Relocation {
    /// Creates a relocation with no addend.
    #[must_use]
    pub fn new(section: usize, offset: u64, kind: RelocKind, symbol: &str) -> Relocation {
        Relocation {
            section,
            offset,
            kind,
            symbol: symbol.to_string(),
            addend: 0,
        }
    }

    /// Sets the addend.
    #[must_use]
    pub fn with_addend(mut self, addend: i64) -> Relocation {
        self.addend = addend;
        self
    }

    /// Feeds this relocation into a hasher.
    pub fn hash_into(&self, h: &mut Fnv64) {
        h.write(&(self.section as u64).to_le_bytes());
        h.write(&self.offset.to_le_bytes());
        h.write(&[self.kind.code()]);
        h.write(self.symbol.as_bytes());
        h.write(&[0xfe]);
        h.write(&self.addend.to_le_bytes());
    }
}

/// Patches `value` into `bytes` at `offset` according to `kind`.
///
/// `value` is the already-computed quantity (absolute address or relative
/// displacement). Returns `false` if the site does not fit in the buffer.
#[must_use]
pub fn apply_patch(bytes: &mut [u8], offset: u64, kind: RelocKind, value: i64) -> bool {
    let off = offset as usize;
    let w = kind.width() as usize;
    if off + w > bytes.len() {
        return false;
    }
    match kind {
        RelocKind::Abs32 | RelocKind::Pcrel32 => {
            bytes[off..off + 4].copy_from_slice(&(value as u32).to_le_bytes());
        }
        RelocKind::Abs64 => {
            bytes[off..off + 8].copy_from_slice(&(value as u64).to_le_bytes());
        }
        RelocKind::Hi16 => {
            let hi = ((value as u32) >> 16) as u16;
            bytes[off..off + 2].copy_from_slice(&hi.to_le_bytes());
        }
        RelocKind::Lo16 => {
            let lo = (value as u32 & 0xffff) as u16;
            bytes[off..off + 2].copy_from_slice(&lo.to_le_bytes());
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths() {
        assert_eq!(RelocKind::Abs32.width(), 4);
        assert_eq!(RelocKind::Pcrel32.width(), 4);
        assert_eq!(RelocKind::Abs64.width(), 8);
        assert_eq!(RelocKind::Hi16.width(), 2);
        assert_eq!(RelocKind::Lo16.width(), 2);
    }

    #[test]
    fn codes_roundtrip() {
        for k in [
            RelocKind::Abs32,
            RelocKind::Pcrel32,
            RelocKind::Abs64,
            RelocKind::Hi16,
            RelocKind::Lo16,
        ] {
            assert_eq!(RelocKind::from_code(k.code()), Some(k));
        }
        assert_eq!(RelocKind::from_code(99), None);
    }

    #[test]
    fn patch_abs32() {
        let mut b = vec![0u8; 8];
        assert!(apply_patch(&mut b, 4, RelocKind::Abs32, 0x1234_5678));
        assert_eq!(&b[4..8], &0x1234_5678u32.to_le_bytes());
    }

    #[test]
    fn patch_pcrel_negative() {
        let mut b = vec![0u8; 4];
        assert!(apply_patch(&mut b, 0, RelocKind::Pcrel32, -16));
        assert_eq!(
            u32::from_le_bytes(b[0..4].try_into().unwrap()),
            (-16i32) as u32
        );
    }

    #[test]
    fn patch_hi_lo_pair_reconstructs() {
        let addr: u32 = 0xdead_beef;
        let mut b = vec![0u8; 4];
        assert!(apply_patch(&mut b, 0, RelocKind::Hi16, i64::from(addr)));
        assert!(apply_patch(&mut b, 2, RelocKind::Lo16, i64::from(addr)));
        let hi = u16::from_le_bytes(b[0..2].try_into().unwrap());
        let lo = u16::from_le_bytes(b[2..4].try_into().unwrap());
        assert_eq!((u32::from(hi) << 16) | u32::from(lo), addr);
    }

    #[test]
    fn patch_out_of_range_is_rejected() {
        let mut b = vec![0u8; 4];
        assert!(!apply_patch(&mut b, 2, RelocKind::Abs32, 0));
        assert!(!apply_patch(&mut b, 0, RelocKind::Abs64, 0));
    }

    #[test]
    fn addend_builder() {
        let r = Relocation::new(0, 8, RelocKind::Abs32, "_x").with_addend(4);
        assert_eq!(r.addend, 4);
        assert_eq!(r.symbol, "_x");
    }
}
