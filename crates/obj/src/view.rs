//! Views: cheap, incremental name-space overlays over shared object files.
//!
//! "OMOS provides a facility that allows many different name configurations
//! ('views') to be mapped onto a given object file, allowing fast, efficient,
//! incremental modification of a symbol namespace. ... Execution of a module
//! operation (with the exceptions of merge and freeze) results in the
//! production of a new view of the operand."
//!
//! A [`View`] is an `Arc`-shared base object plus an ordered list of symbol
//! transformations. Creating a new view is O(1) in section bytes; only
//! [`View::materialize`] (called by `merge`, `freeze`, and the linker) pays
//! to apply the transformations to a concrete [`ObjectFile`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::error::{ObjError, Result};
use crate::hash::ContentHash;
use crate::object::ObjectFile;
use crate::regex::Regex;
use crate::symbol::{Symbol, SymbolBinding, SymbolDef};

/// Which of a name's roles a `rename` applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RenameTarget {
    /// Only definitions (references to the old name become unbound).
    Defs,
    /// Only references (an existing definition keeps its old name).
    Refs,
    /// Both definitions and references (the common case).
    Both,
}

/// One namespace transformation in a view.
#[derive(Debug, Clone)]
pub enum ViewOp {
    /// Systematically renames matching symbols, substituting the matched
    /// span with `replacement`.
    Rename {
        /// Selects symbols to rename.
        pattern: Regex,
        /// Literal replacement for the matched span.
        replacement: String,
        /// Which roles to rename.
        target: RenameTarget,
    },
    /// Removes matching definitions from the exported namespace, freezing
    /// any internal references to them in the process.
    Hide {
        /// Selects definitions to hide.
        pattern: Regex,
    },
    /// Hides all definitions *except* those matching.
    Show {
        /// Selects definitions to keep visible.
        pattern: Regex,
    },
    /// Virtualizes matching bindings: definitions are removed and existing
    /// bindings become unbound references.
    Restrict {
        /// Selects definitions to virtualize.
        pattern: Regex,
    },
    /// Virtualizes all bindings *except* those matching.
    Project {
        /// Selects definitions to keep bound.
        pattern: Regex,
    },
    /// Duplicates matching definitions under new names derived by
    /// substituting the matched span with `replacement`.
    CopyAs {
        /// Selects definitions to copy.
        pattern: Regex,
        /// Literal replacement producing the new name.
        replacement: String,
    },
    /// Makes matching bindings permanent; frozen symbols are immune to
    /// later `rename`/`restrict`/`hide`.
    Freeze {
        /// Selects symbols to freeze.
        pattern: Regex,
    },
}

impl ViewOp {
    fn hash_into(&self, h: ContentHash) -> ContentHash {
        match self {
            ViewOp::Rename {
                pattern,
                replacement,
                target,
            } => h
                .with_str("rename")
                .with_str(pattern.pattern())
                .with_str(replacement)
                .with_u64(match target {
                    RenameTarget::Defs => 0,
                    RenameTarget::Refs => 1,
                    RenameTarget::Both => 2,
                }),
            ViewOp::Hide { pattern } => h.with_str("hide").with_str(pattern.pattern()),
            ViewOp::Show { pattern } => h.with_str("show").with_str(pattern.pattern()),
            ViewOp::Restrict { pattern } => h.with_str("restrict").with_str(pattern.pattern()),
            ViewOp::Project { pattern } => h.with_str("project").with_str(pattern.pattern()),
            ViewOp::CopyAs {
                pattern,
                replacement,
            } => h
                .with_str("copy-as")
                .with_str(pattern.pattern())
                .with_str(replacement),
            ViewOp::Freeze { pattern } => h.with_str("freeze").with_str(pattern.pattern()),
        }
    }
}

/// A name configuration mapped onto a shared object file.
#[derive(Debug, Clone)]
pub struct View {
    base: Arc<ObjectFile>,
    ops: Vec<ViewOp>,
}

impl View {
    /// Wraps an object file in an identity view.
    #[must_use]
    pub fn of(base: Arc<ObjectFile>) -> View {
        View {
            base,
            ops: Vec::new(),
        }
    }

    /// Wraps an owned object file.
    #[must_use]
    pub fn from_object(obj: ObjectFile) -> View {
        View::of(Arc::new(obj))
    }

    /// The underlying object file, without transformations.
    #[must_use]
    pub fn base(&self) -> &Arc<ObjectFile> {
        &self.base
    }

    /// Number of pending transformations.
    #[must_use]
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Derives a new view with one more transformation. O(ops), no byte
    /// copies.
    #[must_use]
    pub fn derive(&self, op: ViewOp) -> View {
        let mut ops = self.ops.clone();
        ops.push(op);
        View {
            base: Arc::clone(&self.base),
            ops,
        }
    }

    /// Deterministic hash of base content plus the transformation list —
    /// the cache key for materialized views.
    #[must_use]
    pub fn content_hash(&self) -> ContentHash {
        let mut h = self.base.content_hash().with_str("view");
        for op in &self.ops {
            h = op.hash_into(h);
        }
        h
    }

    /// Applies all transformations, producing a concrete object file.
    ///
    /// This is the expensive path that `merge` and `freeze` take; every
    /// other operator just derives a new view.
    pub fn materialize(&self) -> Result<ObjectFile> {
        MATERIALIZE_COUNT.fetch_add(1, Ordering::Relaxed);
        let mut obj = (*self.base).clone();
        let mut hidden_counter = 0usize;
        for op in &self.ops {
            apply_op(&mut obj, op, &mut hidden_counter)?;
        }
        Ok(obj)
    }

    /// Names this view exports as definitions, without materializing the
    /// section bytes. Cost is O(symbols × ops).
    pub fn exported_definitions(&self) -> Result<Vec<String>> {
        // Name-only simulation would duplicate the op semantics; symbol
        // tables are small, so run the real transformation on a byte-free
        // copy of the object.
        let mut skeleton = ObjectFile::new(&self.base.name);
        for s in &self.base.sections {
            let mut sec = s.clone();
            sec.bytes = Vec::new();
            skeleton.sections.push(sec);
        }
        skeleton.symbols = self.base.symbols.clone();
        skeleton.relocs = self.base.relocs.clone();
        let mut hidden_counter = 0usize;
        for op in &self.ops {
            apply_op(&mut skeleton, op, &mut hidden_counter)?;
        }
        Ok(skeleton
            .symbols
            .iter()
            .filter(|s| s.def.is_definition() && s.binding != SymbolBinding::Local)
            .map(|s| s.name.clone())
            .collect())
    }
}

/// Process-wide count of [`View::materialize`] calls.
///
/// Materialization is the *expensive* path (it clones section bytes);
/// code that promises to stay on the cheap name-only path — notably the
/// static analyzer's lint pass — asserts this counter does not move.
static MATERIALIZE_COUNT: AtomicU64 = AtomicU64::new(0);

/// The number of [`View::materialize`] calls made by this process so far.
#[must_use]
pub fn materialize_count() -> u64 {
    MATERIALIZE_COUNT.load(Ordering::Relaxed)
}

/// Applies one view operation to a concrete object file.
///
/// Public so name-only consumers (the static analyzer) can run the *real*
/// operator semantics over a byte-free skeleton object instead of
/// re-implementing (and drifting from) the rules in this module.
pub fn apply_view_op(obj: &mut ObjectFile, op: &ViewOp, hidden_counter: &mut usize) -> Result<()> {
    apply_op(obj, op, hidden_counter)
}

/// Applies one operation to a concrete object file.
fn apply_op(obj: &mut ObjectFile, op: &ViewOp, hidden_counter: &mut usize) -> Result<()> {
    match op {
        ViewOp::Rename {
            pattern,
            replacement,
            target,
        } => rename(obj, pattern, replacement, *target),
        ViewOp::Hide { pattern } => {
            let names = matching_defs(obj, pattern, false);
            hide_names(obj, &names, hidden_counter)
        }
        ViewOp::Show { pattern } => {
            let names = matching_defs(obj, pattern, true);
            hide_names(obj, &names, hidden_counter)
        }
        ViewOp::Restrict { pattern } => {
            let names = matching_defs(obj, pattern, false);
            restrict_names(obj, &names)
        }
        ViewOp::Project { pattern } => {
            let names = matching_defs(obj, pattern, true);
            restrict_names(obj, &names)
        }
        ViewOp::CopyAs {
            pattern,
            replacement,
        } => {
            let copies: Vec<(String, String)> = obj
                .symbols
                .iter()
                .filter(|s| s.def.is_definition() && pattern.is_match(&s.name))
                .map(|s| (s.name.clone(), pattern.replace(&s.name, replacement)))
                .collect();
            for (old, new) in copies {
                if old == new {
                    continue;
                }
                let src = obj
                    .symbols
                    .get(&old)
                    .ok_or_else(|| ObjError::UndefinedSymbol(old.clone()))?
                    .clone();
                obj.symbols.insert(Symbol {
                    name: new,
                    frozen: false,
                    ..src
                })?;
            }
            Ok(())
        }
        ViewOp::Freeze { pattern } => {
            for s in obj.symbols.iter_mut() {
                if pattern.is_match(&s.name) {
                    s.frozen = true;
                }
            }
            Ok(())
        }
    }
}

/// Names of non-frozen, non-local definitions matching (or, when `invert`,
/// not matching) the pattern.
fn matching_defs(obj: &ObjectFile, pattern: &Regex, invert: bool) -> Vec<String> {
    obj.symbols
        .iter()
        .filter(|s| {
            s.def.is_definition()
                && s.binding != SymbolBinding::Local
                && !s.frozen
                && (pattern.is_match(&s.name) != invert)
        })
        .map(|s| s.name.clone())
        .collect()
}

fn rename(
    obj: &mut ObjectFile,
    pattern: &Regex,
    replacement: &str,
    target: RenameTarget,
) -> Result<()> {
    let rename_defs = matches!(target, RenameTarget::Defs | RenameTarget::Both);
    let rename_refs = matches!(target, RenameTarget::Refs | RenameTarget::Both);

    // Collect the (old, new) pairs first; mutating while iterating would
    // invalidate the name index.
    let pairs: Vec<(String, String, bool)> = obj
        .symbols
        .iter()
        .filter(|s| !s.frozen && pattern.is_match(&s.name))
        .map(|s| {
            (
                s.name.clone(),
                pattern.replace(&s.name, replacement),
                s.def.is_definition(),
            )
        })
        .filter(|(old, new, _)| old != new)
        .collect();

    for (old, new, is_def) in &pairs {
        let applies = if *is_def { rename_defs } else { rename_refs };
        if !applies {
            continue;
        }
        // Renaming onto an existing name *merges* the entries under the
        // standard upgrade rules — renaming a reference onto a definition
        // binds it (Figure 3 reroutes `_undefined_routine` refs onto the
        // already-defined `_abort`); two real definitions still collide.
        rename_merge(obj, old, new)?;
        if *is_def && !rename_refs && obj.relocs.iter().any(|r| &r.symbol == old) {
            // Definition moved away but references keep the old name: the
            // old name reverts to an unbound reference.
            obj.symbols.insert(Symbol::undefined(old))?;
        }
    }

    if rename_refs {
        for r in &mut obj.relocs {
            if let Some((old, new, _)) = pairs.iter().find(|(o, _, _)| o == &r.symbol) {
                debug_assert_eq!(old, &r.symbol);
                r.symbol = new.clone();
            }
        }
    }
    Ok(())
}

/// Renames `old` to `new`, merging with any existing entry for `new`
/// under [`crate::symbol::SymbolTable::insert`]'s upgrade rules.
fn rename_merge(obj: &mut ObjectFile, old: &str, new: &str) -> Result<()> {
    if old == new {
        return Ok(());
    }
    if obj.symbols.get(new).is_none() {
        return obj.symbols.rename(old, new);
    }
    let mut moved = obj
        .symbols
        .remove(old)
        .ok_or_else(|| ObjError::UndefinedSymbol(old.to_string()))?;
    moved.name = new.to_string();
    obj.symbols.insert(moved)
}

/// Hides the given definitions: each is renamed to a unique local name and
/// frozen, with internal references following (the paper: "removes a given
/// set of symbol definitions from the operand symbol table, freezing any
/// internal references to the symbol in the process").
fn hide_names(obj: &mut ObjectFile, names: &[String], hidden_counter: &mut usize) -> Result<()> {
    for name in names {
        let fresh = loop {
            let candidate = format!("{name}$hidden{}", *hidden_counter);
            *hidden_counter += 1;
            if obj.symbols.get(&candidate).is_none() {
                break candidate;
            }
        };
        obj.symbols.rename(name, &fresh)?;
        if let Some(s) = obj.symbols.get_mut(&fresh) {
            s.binding = SymbolBinding::Local;
            s.frozen = true;
        }
        for r in &mut obj.relocs {
            if &r.symbol == name {
                r.symbol = fresh.clone();
            }
        }
    }
    Ok(())
}

/// Virtualizes the given definitions: the definition disappears and the
/// name reverts to an unbound reference.
fn restrict_names(obj: &mut ObjectFile, names: &[String]) -> Result<()> {
    for name in names {
        if let Some(s) = obj.symbols.get_mut(name) {
            s.def = SymbolDef::Undefined;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reloc::{RelocKind, Relocation};
    use crate::section::{Section, SectionKind};

    /// A libc-like fragment: defines `_malloc` and `_free`; `_free` calls
    /// `_malloc` internally; both are called from outside.
    fn libc_like() -> View {
        let mut o = ObjectFile::new("libc.o");
        let t = o.add_section(Section::with_bytes(
            ".text",
            SectionKind::Text,
            vec![0; 64],
            8,
        ));
        o.define(Symbol::defined("_malloc", t, 0)).unwrap();
        o.define(Symbol::defined("_free", t, 32)).unwrap();
        // An internal reference: `_free` calls `_malloc`.
        o.relocate(Relocation::new(t, 36, RelocKind::Abs32, "_malloc"));
        View::from_object(o)
    }

    fn re(p: &str) -> Regex {
        Regex::new(p).unwrap()
    }

    #[test]
    fn identity_view_materializes_to_base() {
        let v = libc_like();
        let m = v.materialize().unwrap();
        assert_eq!(m.content_hash(), v.base().content_hash());
    }

    #[test]
    fn derive_is_cheap_and_does_not_mutate_parent() {
        let v = libc_like();
        let v2 = v.derive(ViewOp::Hide {
            pattern: re("^_malloc$"),
        });
        assert_eq!(v.op_count(), 0);
        assert_eq!(v2.op_count(), 1);
        assert!(Arc::ptr_eq(v.base(), v2.base()));
    }

    #[test]
    fn rename_both_rewrites_refs() {
        let v = libc_like().derive(
            ViewOp::Rename {
                pattern: re("^_malloc$"),
                replacement: "_xmalloc".into(),
                target: RenameTarget::Both,
            }
            .clone(),
        );
        let m = v.materialize().unwrap();
        assert!(m.symbols.get("_malloc").is_none());
        assert!(m.symbols.get("_xmalloc").unwrap().def.is_definition());
        assert!(m.relocs.iter().all(|r| r.symbol != "_malloc"));
        assert!(m.relocs.iter().any(|r| r.symbol == "_xmalloc"));
    }

    #[test]
    fn rename_defs_only_leaves_refs_unbound() {
        let v = libc_like().derive(ViewOp::Rename {
            pattern: re("^_malloc$"),
            replacement: "_xmalloc".into(),
            target: RenameTarget::Defs,
        });
        let m = v.materialize().unwrap();
        // The definition moved...
        assert!(m.symbols.get("_xmalloc").unwrap().def.is_definition());
        // ...but the internal call still references `_malloc`, now unbound.
        assert!(m.relocs.iter().any(|r| r.symbol == "_malloc"));
        assert!(!m.symbols.get("_malloc").unwrap().def.is_definition());
    }

    #[test]
    fn rename_refs_only_leaves_def() {
        let v = libc_like().derive(ViewOp::Rename {
            pattern: re("^_malloc$"),
            replacement: "_ymalloc".into(),
            target: RenameTarget::Refs,
        });
        let m = v.materialize().unwrap();
        // Reference renamed; `_ymalloc` is a new unbound reference...
        assert!(m.relocs.iter().any(|r| r.symbol == "_ymalloc"));
        // ...while the original definition remains under its old name.
        // (The def entry for `_malloc` matched the pattern but is a
        // definition, so the Refs-target rename must not move it.)
        assert!(m.symbols.get("_malloc").unwrap().def.is_definition());
    }

    #[test]
    fn hide_freezes_internal_refs() {
        let v = libc_like().derive(ViewOp::Hide {
            pattern: re("^_malloc$"),
        });
        let m = v.materialize().unwrap();
        // `_malloc` is gone from the exported namespace...
        assert!(m.symbols.get("_malloc").is_none());
        // ...but the internal call from `_free` still resolves, to a local
        // frozen alias.
        let internal = &m.relocs[0].symbol;
        let s = m.symbols.get(internal).expect("internal ref target exists");
        assert_eq!(s.binding, SymbolBinding::Local);
        assert!(s.frozen);
        assert!(s.def.is_definition());
    }

    #[test]
    fn show_hides_complement() {
        let v = libc_like().derive(ViewOp::Show {
            pattern: re("^_free$"),
        });
        let exported = v.exported_definitions().unwrap();
        assert_eq!(exported, vec!["_free".to_string()]);
    }

    #[test]
    fn restrict_virtualizes() {
        let v = libc_like().derive(ViewOp::Restrict {
            pattern: re("^_malloc$"),
        });
        let m = v.materialize().unwrap();
        let s = m.symbols.get("_malloc").unwrap();
        assert!(!s.def.is_definition());
        // The internal reference is now unbound: ready to be re-bound by a
        // later merge (this is how interposition works).
        assert_eq!(m.relocs[0].symbol, "_malloc");
    }

    #[test]
    fn project_keeps_only_named() {
        let v = libc_like().derive(ViewOp::Project {
            pattern: re("^_malloc$"),
        });
        let m = v.materialize().unwrap();
        assert!(m.symbols.get("_malloc").unwrap().def.is_definition());
        assert!(!m.symbols.get("_free").unwrap().def.is_definition());
    }

    #[test]
    fn copy_as_duplicates_definition() {
        let v = libc_like().derive(ViewOp::CopyAs {
            pattern: re("^_malloc$"),
            replacement: "_REAL_malloc".into(),
        });
        let m = v.materialize().unwrap();
        let a = m.symbols.get("_malloc").unwrap();
        let b = m.symbols.get("_REAL_malloc").unwrap();
        assert_eq!(a.def, b.def);
    }

    #[test]
    fn copy_as_prefix_scheme() {
        // "By invoking copy-as on all definitions of a given set of symbols
        // using some well-known scheme (e.g., prepending a package name)".
        let v = libc_like().derive(ViewOp::CopyAs {
            pattern: re("^_"),
            replacement: "_PKG_".into(),
        });
        let exported = v.exported_definitions().unwrap();
        assert!(exported.contains(&"_PKG_malloc".to_string()));
        assert!(exported.contains(&"_PKG_free".to_string()));
        assert!(exported.contains(&"_malloc".to_string()));
    }

    #[test]
    fn freeze_blocks_later_restrict_and_rename() {
        let v = libc_like()
            .derive(ViewOp::Freeze {
                pattern: re("^_malloc$"),
            })
            .derive(ViewOp::Restrict {
                pattern: re("^_malloc$"),
            })
            .derive(ViewOp::Rename {
                pattern: re("^_malloc$"),
                replacement: "_zz".into(),
                target: RenameTarget::Both,
            });
        let m = v.materialize().unwrap();
        let s = m.symbols.get("_malloc").unwrap();
        assert!(s.def.is_definition(), "frozen binding survived restrict");
        assert!(s.frozen);
    }

    #[test]
    fn interposition_chain_figure2() {
        // The Figure 2 idiom, at the view level:
        //   copy_as ^_malloc$ _REAL_malloc, then restrict ^_malloc$.
        let v = libc_like()
            .derive(ViewOp::CopyAs {
                pattern: re("^_malloc$"),
                replacement: "_REAL_malloc".into(),
            })
            .derive(ViewOp::Restrict {
                pattern: re("^_malloc$"),
            });
        let m = v.materialize().unwrap();
        assert!(m.symbols.get("_REAL_malloc").unwrap().def.is_definition());
        assert!(!m.symbols.get("_malloc").unwrap().def.is_definition());
        // A new `_malloc` can now be merged in while `_REAL_malloc` still
        // reaches the original implementation.
    }

    #[test]
    fn content_hash_reflects_ops() {
        let v = libc_like();
        let v2 = v.derive(ViewOp::Hide {
            pattern: re("^_malloc$"),
        });
        let v3 = v.derive(ViewOp::Hide {
            pattern: re("^_free$"),
        });
        assert_ne!(v.content_hash(), v2.content_hash());
        assert_ne!(v2.content_hash(), v3.content_hash());
        // Same derivation ⇒ same hash (cache hit).
        let v2b = v.derive(ViewOp::Hide {
            pattern: re("^_malloc$"),
        });
        assert_eq!(v2.content_hash(), v2b.content_hash());
    }

    #[test]
    fn hide_generates_fresh_names() {
        // Hiding the same base name twice (via two sections) must not clash.
        let mut o = ObjectFile::new("t.o");
        let t = o.add_section(Section::with_bytes(
            ".text",
            SectionKind::Text,
            vec![0; 16],
            8,
        ));
        o.define(Symbol::defined("_f", t, 0)).unwrap();
        o.define(Symbol::defined("_f$hidden0", t, 8)).unwrap(); // adversarial
        let v = View::from_object(o).derive(ViewOp::Hide {
            pattern: re("^_f$"),
        });
        let m = v.materialize().unwrap();
        // Both survive under distinct names.
        assert_eq!(m.symbols.len(), 2);
    }
}
