//! Sections: named, typed byte containers within an object file.

use crate::hash::{ContentHash, Fnv64};

/// The kind of a section, which determines how the linker lays it out and
/// which permissions its pages get when mapped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SectionKind {
    /// Executable instructions (read + execute, shareable).
    Text,
    /// Read-only data (read, shareable).
    RoData,
    /// Initialized writable data (read + write, copy-on-write).
    Data,
    /// Zero-initialized data; occupies no bytes in the object file.
    Bss,
}

impl SectionKind {
    /// The conventional section name for this kind.
    #[must_use]
    pub fn default_name(self) -> &'static str {
        match self {
            SectionKind::Text => ".text",
            SectionKind::RoData => ".rodata",
            SectionKind::Data => ".data",
            SectionKind::Bss => ".bss",
        }
    }

    /// True if pages of this kind may be shared read-only between tasks.
    #[must_use]
    pub fn is_shareable(self) -> bool {
        matches!(self, SectionKind::Text | SectionKind::RoData)
    }

    /// All kinds, in canonical layout order.
    pub const ALL: [SectionKind; 4] = [
        SectionKind::Text,
        SectionKind::RoData,
        SectionKind::Data,
        SectionKind::Bss,
    ];

    /// Stable small integer for serialization.
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            SectionKind::Text => 0,
            SectionKind::RoData => 1,
            SectionKind::Data => 2,
            SectionKind::Bss => 3,
        }
    }

    /// Inverse of [`SectionKind::code`].
    #[must_use]
    pub fn from_code(c: u8) -> Option<SectionKind> {
        match c {
            0 => Some(SectionKind::Text),
            1 => Some(SectionKind::RoData),
            2 => Some(SectionKind::Data),
            3 => Some(SectionKind::Bss),
            _ => None,
        }
    }
}

/// A section: a run of bytes (or, for BSS, a size) plus alignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    /// Section name (e.g. `.text`).
    pub name: String,
    /// What the bytes are.
    pub kind: SectionKind,
    /// Contents. Empty for BSS.
    pub bytes: Vec<u8>,
    /// Size in bytes. Equals `bytes.len()` except for BSS, where it is the
    /// zero-fill size.
    pub size: u64,
    /// Required alignment (power of two).
    pub align: u64,
}

impl Section {
    /// Creates a section with contents.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two (a construction bug, not a
    /// runtime condition).
    #[must_use]
    pub fn with_bytes(name: &str, kind: SectionKind, bytes: Vec<u8>, align: u64) -> Section {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let size = bytes.len() as u64;
        Section {
            name: name.to_string(),
            kind,
            bytes,
            size,
            align,
        }
    }

    /// Creates a BSS section of `size` zero bytes.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    #[must_use]
    pub fn bss(name: &str, size: u64, align: u64) -> Section {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        Section {
            name: name.to_string(),
            kind: SectionKind::Bss,
            bytes: Vec::new(),
            size,
            align,
        }
    }

    /// Appends bytes, returning the offset where they begin.
    pub fn append(&mut self, bytes: &[u8]) -> u64 {
        let off = self.bytes.len() as u64;
        self.bytes.extend_from_slice(bytes);
        self.size = self.bytes.len() as u64;
        off
    }

    /// Extends a BSS section by `n` bytes, returning the prior size.
    pub fn extend_bss(&mut self, n: u64) -> u64 {
        debug_assert_eq!(self.kind, SectionKind::Bss);
        let off = self.size;
        self.size += n;
        off
    }

    /// Feeds this section's identity and contents into a hasher.
    pub fn hash_into(&self, h: &mut Fnv64) {
        h.write(self.name.as_bytes());
        h.write(&[self.kind.code()]);
        h.write(&self.size.to_le_bytes());
        h.write(&self.align.to_le_bytes());
        h.write(&self.bytes);
    }

    /// Content hash of this section alone.
    #[must_use]
    pub fn content_hash(&self) -> ContentHash {
        let mut h = Fnv64::new();
        self.hash_into(&mut h);
        ContentHash(h.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_tracks_size() {
        let mut s = Section::with_bytes(".data", SectionKind::Data, vec![1, 2], 4);
        assert_eq!(s.size, 2);
        let off = s.append(&[3, 4, 5]);
        assert_eq!(off, 2);
        assert_eq!(s.size, 5);
        assert_eq!(s.bytes, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn bss_has_size_but_no_bytes() {
        let mut s = Section::bss(".bss", 128, 8);
        assert_eq!(s.size, 128);
        assert!(s.bytes.is_empty());
        let off = s.extend_bss(64);
        assert_eq!(off, 128);
        assert_eq!(s.size, 192);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_alignment_panics() {
        let _ = Section::with_bytes(".text", SectionKind::Text, vec![], 3);
    }

    #[test]
    fn kind_codes_roundtrip() {
        for k in SectionKind::ALL {
            assert_eq!(SectionKind::from_code(k.code()), Some(k));
        }
        assert_eq!(SectionKind::from_code(9), None);
    }

    #[test]
    fn shareability() {
        assert!(SectionKind::Text.is_shareable());
        assert!(SectionKind::RoData.is_shareable());
        assert!(!SectionKind::Data.is_shareable());
        assert!(!SectionKind::Bss.is_shareable());
    }

    #[test]
    fn hash_differs_on_content() {
        let a = Section::with_bytes(".text", SectionKind::Text, vec![1], 4);
        let b = Section::with_bytes(".text", SectionKind::Text, vec![2], 4);
        assert_ne!(a.content_hash(), b.content_hash());
    }
}
