//! Symbols and symbol tables.
//!
//! A module in the Jigsaw sense is "a self-referential naming scope"; the
//! symbol table is the concrete representation of that scope: definitions
//! (bound names), references (free names), commons, and absolutes.

use std::collections::HashMap;

use crate::error::{ObjError, Result};
use crate::hash::Fnv64;

/// Linkage visibility of a symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SymbolBinding {
    /// Participates in inter-module resolution.
    Global,
    /// Resolved only within its own object file.
    Local,
    /// Like global, but yields to a global definition on conflict.
    Weak,
}

impl SymbolBinding {
    /// Stable small integer for serialization.
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            SymbolBinding::Global => 0,
            SymbolBinding::Local => 1,
            SymbolBinding::Weak => 2,
        }
    }

    /// Inverse of [`SymbolBinding::code`].
    #[must_use]
    pub fn from_code(c: u8) -> Option<SymbolBinding> {
        match c {
            0 => Some(SymbolBinding::Global),
            1 => Some(SymbolBinding::Local),
            2 => Some(SymbolBinding::Weak),
            _ => None,
        }
    }
}

/// What a symbol denotes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SymbolDef {
    /// Defined at `offset` within section `section` (an index into the
    /// object's section list).
    Defined {
        /// Index of the defining section.
        section: usize,
        /// Byte offset within the section.
        offset: u64,
    },
    /// A common (tentatively defined, zero-initialized) symbol of `size`
    /// bytes, merged into BSS at link time.
    Common {
        /// Size in bytes.
        size: u64,
    },
    /// A free reference: used but not defined here.
    Undefined,
    /// An absolute value, independent of any section.
    Absolute {
        /// The value.
        value: u64,
    },
}

impl SymbolDef {
    /// True if this entry defines the symbol (including commons/absolutes).
    #[must_use]
    pub fn is_definition(&self) -> bool {
        !matches!(self, SymbolDef::Undefined)
    }
}

/// A named symbol-table entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Symbol {
    /// The symbol's name.
    pub name: String,
    /// Linkage visibility.
    pub binding: SymbolBinding,
    /// What the name denotes.
    pub def: SymbolDef,
    /// True once the binding has been *frozen* (made permanent by the
    /// `freeze`/`hide` operators); frozen bindings are immune to later
    /// `rename`/`restrict` operations.
    pub frozen: bool,
}

impl Symbol {
    /// Creates a global definition at `section`+`offset`.
    #[must_use]
    pub fn defined(name: &str, section: usize, offset: u64) -> Symbol {
        Symbol {
            name: name.to_string(),
            binding: SymbolBinding::Global,
            def: SymbolDef::Defined { section, offset },
            frozen: false,
        }
    }

    /// Creates an undefined (free) reference.
    #[must_use]
    pub fn undefined(name: &str) -> Symbol {
        Symbol {
            name: name.to_string(),
            binding: SymbolBinding::Global,
            def: SymbolDef::Undefined,
            frozen: false,
        }
    }

    /// Creates a common symbol of `size` bytes.
    #[must_use]
    pub fn common(name: &str, size: u64) -> Symbol {
        Symbol {
            name: name.to_string(),
            binding: SymbolBinding::Global,
            def: SymbolDef::Common { size },
            frozen: false,
        }
    }

    /// Creates an absolute symbol.
    #[must_use]
    pub fn absolute(name: &str, value: u64) -> Symbol {
        Symbol {
            name: name.to_string(),
            binding: SymbolBinding::Global,
            def: SymbolDef::Absolute { value },
            frozen: false,
        }
    }

    /// Marks this symbol local.
    #[must_use]
    pub fn local(mut self) -> Symbol {
        self.binding = SymbolBinding::Local;
        self
    }

    /// Marks this symbol weak.
    #[must_use]
    pub fn weak(mut self) -> Symbol {
        self.binding = SymbolBinding::Weak;
        self
    }
}

/// An ordered symbol table with by-name lookup.
///
/// A table may contain at most one entry per name. (Separate *definition*
/// and *reference* entries for the same name collapse into one entry whose
/// `def` says which it is; a defined symbol is implicitly also referenceable.)
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SymbolTable {
    symbols: Vec<Symbol>,
    by_name: HashMap<String, usize>,
}

impl SymbolTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> SymbolTable {
        SymbolTable::default()
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// True if the table has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Iterates over entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Symbol> {
        self.symbols.iter()
    }

    /// Iterates mutably (names must not be changed through this iterator;
    /// use [`SymbolTable::rename`] instead, which maintains the index).
    pub(crate) fn iter_mut(&mut self) -> impl Iterator<Item = &mut Symbol> {
        self.symbols.iter_mut()
    }

    /// Looks up an entry by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&Symbol> {
        self.by_name.get(name).map(|&i| &self.symbols[i])
    }

    /// Looks up an entry mutably by name.
    pub fn get_mut(&mut self, name: &str) -> Option<&mut Symbol> {
        match self.by_name.get(name) {
            Some(&i) => Some(&mut self.symbols[i]),
            None => None,
        }
    }

    /// Inserts a new entry, or upgrades an existing one.
    ///
    /// Upgrade rules (mirroring classic Unix linkers):
    /// * undefined + anything ⇒ the other;
    /// * common + common ⇒ the larger common;
    /// * common + defined ⇒ defined;
    /// * weak definition + global definition ⇒ global;
    /// * two strong definitions ⇒ [`ObjError::DuplicateSymbol`].
    pub fn insert(&mut self, sym: Symbol) -> Result<()> {
        if let Some(&i) = self.by_name.get(&sym.name) {
            let cur = &mut self.symbols[i];
            match (&cur.def, &sym.def) {
                (SymbolDef::Undefined, _) => {
                    let frozen = cur.frozen;
                    *cur = sym;
                    cur.frozen |= frozen;
                }
                (_, SymbolDef::Undefined) => {
                    // Existing entry already covers the reference.
                }
                (SymbolDef::Common { size: a }, SymbolDef::Common { size: b }) => {
                    cur.def = SymbolDef::Common { size: (*a).max(*b) };
                }
                (SymbolDef::Common { .. }, _) => {
                    let frozen = cur.frozen;
                    *cur = sym;
                    cur.frozen |= frozen;
                }
                (_, SymbolDef::Common { .. }) => {
                    // Real definition beats common.
                }
                _ => {
                    // Two real definitions: weak yields to global.
                    match (cur.binding, sym.binding) {
                        (SymbolBinding::Weak, SymbolBinding::Global) => {
                            let frozen = cur.frozen;
                            *cur = sym;
                            cur.frozen |= frozen;
                        }
                        (SymbolBinding::Global, SymbolBinding::Weak) => {}
                        (SymbolBinding::Weak, SymbolBinding::Weak) => {}
                        _ => return Err(ObjError::DuplicateSymbol(sym.name)),
                    }
                }
            }
            Ok(())
        } else {
            self.by_name.insert(sym.name.clone(), self.symbols.len());
            self.symbols.push(sym);
            Ok(())
        }
    }

    /// Inserts an entry, replacing any existing entry for that name
    /// unconditionally (the `override` operator's conflict rule).
    pub fn insert_override(&mut self, sym: Symbol) {
        if let Some(&i) = self.by_name.get(&sym.name) {
            self.symbols[i] = sym;
        } else {
            self.by_name.insert(sym.name.clone(), self.symbols.len());
            self.symbols.push(sym);
        }
    }

    /// Removes an entry by name, returning it.
    pub fn remove(&mut self, name: &str) -> Option<Symbol> {
        let i = self.by_name.remove(name)?;
        let sym = self.symbols.remove(i);
        // Reindex everything after the removal point.
        for (j, s) in self.symbols.iter().enumerate().skip(i) {
            self.by_name.insert(s.name.clone(), j);
        }
        Some(sym)
    }

    /// Renames an entry, keeping the index consistent.
    ///
    /// Returns an error if `to` already exists or `from` does not.
    pub fn rename(&mut self, from: &str, to: &str) -> Result<()> {
        if from == to {
            return Ok(());
        }
        if self.by_name.contains_key(to) {
            return Err(ObjError::DuplicateSymbol(to.to_string()));
        }
        let i = *self
            .by_name
            .get(from)
            .ok_or_else(|| ObjError::UndefinedSymbol(from.to_string()))?;
        self.by_name.remove(from);
        self.symbols[i].name = to.to_string();
        self.by_name.insert(to.to_string(), i);
        Ok(())
    }

    /// Names of all definitions (including commons and absolutes).
    pub fn definitions(&self) -> impl Iterator<Item = &Symbol> {
        self.symbols.iter().filter(|s| s.def.is_definition())
    }

    /// Names of all free (undefined) references.
    pub fn undefined(&self) -> impl Iterator<Item = &Symbol> {
        self.symbols.iter().filter(|s| !s.def.is_definition())
    }

    /// Feeds the table into a hasher, in insertion order.
    pub fn hash_into(&self, h: &mut Fnv64) {
        for s in &self.symbols {
            h.write(s.name.as_bytes());
            h.write(&[0xff, s.binding.code(), u8::from(s.frozen)]);
            match s.def {
                SymbolDef::Defined { section, offset } => {
                    h.write(&[0]);
                    h.write(&(section as u64).to_le_bytes());
                    h.write(&offset.to_le_bytes());
                }
                SymbolDef::Common { size } => {
                    h.write(&[1]);
                    h.write(&size.to_le_bytes());
                }
                SymbolDef::Undefined => h.write(&[2]),
                SymbolDef::Absolute { value } => {
                    h.write(&[3]);
                    h.write(&value.to_le_bytes());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_lookup() {
        let mut t = SymbolTable::new();
        t.insert(Symbol::defined("_main", 0, 0)).unwrap();
        t.insert(Symbol::undefined("_printf")).unwrap();
        assert_eq!(t.len(), 2);
        assert!(t.get("_main").unwrap().def.is_definition());
        assert!(!t.get("_printf").unwrap().def.is_definition());
        assert!(t.get("_missing").is_none());
    }

    #[test]
    fn undefined_upgrades_to_defined() {
        let mut t = SymbolTable::new();
        t.insert(Symbol::undefined("_f")).unwrap();
        t.insert(Symbol::defined("_f", 0, 16)).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(
            t.get("_f").unwrap().def,
            SymbolDef::Defined {
                section: 0,
                offset: 16
            }
        );
    }

    #[test]
    fn defined_absorbs_reference() {
        let mut t = SymbolTable::new();
        t.insert(Symbol::defined("_f", 0, 16)).unwrap();
        t.insert(Symbol::undefined("_f")).unwrap();
        assert_eq!(t.len(), 1);
        assert!(t.get("_f").unwrap().def.is_definition());
    }

    #[test]
    fn duplicate_strong_definitions_error() {
        let mut t = SymbolTable::new();
        t.insert(Symbol::defined("_f", 0, 0)).unwrap();
        let err = t.insert(Symbol::defined("_f", 1, 8)).unwrap_err();
        assert_eq!(err, ObjError::DuplicateSymbol("_f".into()));
    }

    #[test]
    fn commons_take_max_size() {
        let mut t = SymbolTable::new();
        t.insert(Symbol::common("_buf", 64)).unwrap();
        t.insert(Symbol::common("_buf", 128)).unwrap();
        t.insert(Symbol::common("_buf", 32)).unwrap();
        assert_eq!(t.get("_buf").unwrap().def, SymbolDef::Common { size: 128 });
    }

    #[test]
    fn definition_beats_common() {
        let mut t = SymbolTable::new();
        t.insert(Symbol::common("_buf", 64)).unwrap();
        t.insert(Symbol::defined("_buf", 2, 0)).unwrap();
        assert_eq!(
            t.get("_buf").unwrap().def,
            SymbolDef::Defined {
                section: 2,
                offset: 0
            }
        );

        let mut t = SymbolTable::new();
        t.insert(Symbol::defined("_buf", 2, 0)).unwrap();
        t.insert(Symbol::common("_buf", 64)).unwrap();
        assert_eq!(
            t.get("_buf").unwrap().def,
            SymbolDef::Defined {
                section: 2,
                offset: 0
            }
        );
    }

    #[test]
    fn weak_yields_to_global() {
        let mut t = SymbolTable::new();
        t.insert(Symbol::defined("_f", 0, 0).weak()).unwrap();
        t.insert(Symbol::defined("_f", 1, 4)).unwrap();
        assert_eq!(
            t.get("_f").unwrap().def,
            SymbolDef::Defined {
                section: 1,
                offset: 4
            }
        );

        let mut t = SymbolTable::new();
        t.insert(Symbol::defined("_f", 1, 4)).unwrap();
        t.insert(Symbol::defined("_f", 0, 0).weak()).unwrap();
        assert_eq!(
            t.get("_f").unwrap().def,
            SymbolDef::Defined {
                section: 1,
                offset: 4
            }
        );
    }

    #[test]
    fn override_replaces_unconditionally() {
        let mut t = SymbolTable::new();
        t.insert(Symbol::defined("_f", 0, 0)).unwrap();
        t.insert_override(Symbol::defined("_f", 3, 12));
        assert_eq!(
            t.get("_f").unwrap().def,
            SymbolDef::Defined {
                section: 3,
                offset: 12
            }
        );
    }

    #[test]
    fn remove_reindexes() {
        let mut t = SymbolTable::new();
        t.insert(Symbol::defined("_a", 0, 0)).unwrap();
        t.insert(Symbol::defined("_b", 0, 4)).unwrap();
        t.insert(Symbol::defined("_c", 0, 8)).unwrap();
        let removed = t.remove("_b").unwrap();
        assert_eq!(removed.name, "_b");
        assert_eq!(t.len(), 2);
        assert_eq!(
            t.get("_c").unwrap().def,
            SymbolDef::Defined {
                section: 0,
                offset: 8
            }
        );
        assert!(t.get("_b").is_none());
    }

    #[test]
    fn rename_maintains_index() {
        let mut t = SymbolTable::new();
        t.insert(Symbol::defined("_malloc", 0, 0)).unwrap();
        t.rename("_malloc", "_REAL_malloc").unwrap();
        assert!(t.get("_malloc").is_none());
        assert!(t.get("_REAL_malloc").is_some());
        assert!(t.rename("_missing", "_x").is_err());
        t.insert(Symbol::defined("_other", 0, 4)).unwrap();
        assert!(t.rename("_other", "_REAL_malloc").is_err());
        // Renaming a symbol to itself is a no-op, not a duplicate error.
        t.rename("_other", "_other").unwrap();
    }

    #[test]
    fn definitions_and_undefined_split() {
        let mut t = SymbolTable::new();
        t.insert(Symbol::defined("_a", 0, 0)).unwrap();
        t.insert(Symbol::undefined("_b")).unwrap();
        t.insert(Symbol::common("_c", 8)).unwrap();
        t.insert(Symbol::absolute("_d", 0x1000)).unwrap();
        assert_eq!(t.definitions().count(), 3);
        assert_eq!(t.undefined().count(), 1);
    }
}
