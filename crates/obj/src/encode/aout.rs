//! The `aout` backend: a flat header-plus-tables encoding.
//!
//! Layout (all little-endian):
//!
//! ```text
//! magic "XAO1" | name | nsect | nsym | nreloc
//! per section: name kind size align nbytes bytes
//! per symbol:  name binding frozen defkind defpayload
//! per reloc:   section offset kind symbol addend
//! ```

use super::wire::{Reader, Writer};
use super::{Backend, Format};
use crate::error::{ObjError, Result};
use crate::object::ObjectFile;
use crate::reloc::{RelocKind, Relocation};
use crate::section::{Section, SectionKind};
use crate::symbol::{Symbol, SymbolBinding, SymbolDef};

const MAGIC: &[u8; 4] = b"XAO1";

/// The `aout` encoding backend.
#[derive(Debug, Clone, Copy, Default)]
pub struct AoutBackend;

impl Backend for AoutBackend {
    fn format(&self) -> Format {
        Format::Aout
    }

    fn write(&self, obj: &ObjectFile) -> Vec<u8> {
        let mut w = Writer::new();
        w.bytes(MAGIC);
        w.str(&obj.name);
        w.u32(obj.sections.len() as u32);
        w.u32(obj.symbols.len() as u32);
        w.u32(obj.relocs.len() as u32);
        for s in &obj.sections {
            w.str(&s.name);
            w.u8(s.kind.code());
            w.u64(s.size);
            w.u64(s.align);
            w.u32(s.bytes.len() as u32);
            w.bytes(&s.bytes);
        }
        for sym in obj.symbols.iter() {
            write_symbol(&mut w, sym);
        }
        for r in &obj.relocs {
            w.u32(r.section as u32);
            w.u64(r.offset);
            w.u8(r.kind.code());
            w.str(&r.symbol);
            w.i64(r.addend);
        }
        w.into_bytes()
    }

    fn read(&self, bytes: &[u8]) -> Result<ObjectFile> {
        let mut r = Reader::new(bytes);
        let magic = r.bytes(4)?;
        if magic != MAGIC {
            return Err(ObjError::Malformed("bad aout magic".into()));
        }
        let name = r.str()?;
        let nsect = r.u32()? as usize;
        let nsym = r.u32()? as usize;
        let nreloc = r.u32()? as usize;
        let mut obj = ObjectFile::new(&name);
        for _ in 0..nsect {
            let name = r.str()?;
            let kind = SectionKind::from_code(r.u8()?)
                .ok_or_else(|| ObjError::Malformed("bad section kind".into()))?;
            let size = r.u64()?;
            let align = r.u64()?;
            if !align.is_power_of_two() {
                return Err(ObjError::Malformed(format!("bad alignment {align}")));
            }
            let nbytes = r.u32()? as usize;
            let data = r.bytes(nbytes)?.to_vec();
            if kind != SectionKind::Bss && size != nbytes as u64 {
                return Err(ObjError::Malformed("section size/bytes mismatch".into()));
            }
            obj.sections.push(Section {
                name,
                kind,
                bytes: data,
                size,
                align,
            });
        }
        for _ in 0..nsym {
            let sym = read_symbol(&mut r)?;
            obj.symbols
                .insert(sym)
                .map_err(|e| ObjError::Malformed(format!("symbol table: {e}")))?;
        }
        for _ in 0..nreloc {
            let section = r.u32()? as usize;
            let offset = r.u64()?;
            let kind = RelocKind::from_code(r.u8()?)
                .ok_or_else(|| ObjError::Malformed("bad reloc kind".into()))?;
            let symbol = r.str()?;
            let addend = r.i64()?;
            obj.relocs.push(Relocation {
                section,
                offset,
                kind,
                symbol,
                addend,
            });
        }
        if r.remaining() != 0 {
            return Err(ObjError::Malformed(format!(
                "{} trailing bytes",
                r.remaining()
            )));
        }
        Ok(obj)
    }

    fn sniff(&self, bytes: &[u8]) -> bool {
        bytes.len() >= 4 && &bytes[..4] == MAGIC
    }
}

pub(super) fn write_symbol(w: &mut Writer, sym: &Symbol) {
    w.str(&sym.name);
    w.u8(sym.binding.code());
    w.u8(u8::from(sym.frozen));
    match sym.def {
        SymbolDef::Defined { section, offset } => {
            w.u8(0);
            w.u32(section as u32);
            w.u64(offset);
        }
        SymbolDef::Common { size } => {
            w.u8(1);
            w.u64(size);
        }
        SymbolDef::Undefined => w.u8(2),
        SymbolDef::Absolute { value } => {
            w.u8(3);
            w.u64(value);
        }
    }
}

pub(super) fn read_symbol(r: &mut Reader<'_>) -> Result<Symbol> {
    let name = r.str()?;
    let binding = SymbolBinding::from_code(r.u8()?)
        .ok_or_else(|| ObjError::Malformed("bad symbol binding".into()))?;
    let frozen = r.u8()? != 0;
    let def = match r.u8()? {
        0 => SymbolDef::Defined {
            section: r.u32()? as usize,
            offset: r.u64()?,
        },
        1 => SymbolDef::Common { size: r.u64()? },
        2 => SymbolDef::Undefined,
        3 => SymbolDef::Absolute { value: r.u64()? },
        k => return Err(ObjError::Malformed(format!("bad symbol def kind {k}"))),
    };
    Ok(Symbol {
        name,
        binding,
        def,
        frozen,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sniff_needs_full_magic() {
        assert!(!AoutBackend.sniff(b"XAO"));
        assert!(AoutBackend.sniff(b"XAO1extra"));
        assert!(!AoutBackend.sniff(b"XSM1"));
    }

    #[test]
    fn empty_object_roundtrips() {
        let obj = ObjectFile::new("empty.o");
        let bytes = AoutBackend.write(&obj);
        assert_eq!(AoutBackend.read(&bytes).unwrap(), obj);
    }

    #[test]
    fn trailing_garbage_rejected() {
        let obj = ObjectFile::new("t.o");
        let mut bytes = AoutBackend.write(&obj);
        bytes.push(0);
        assert!(AoutBackend.read(&bytes).is_err());
    }

    #[test]
    fn bad_section_kind_rejected() {
        let obj = super::super::tests::sample();
        let bytes = AoutBackend.write(&obj);
        let mut corrupt = bytes.clone();
        // Find the first section-kind byte: after magic(4) + name + counts.
        // Name "sample.o" = 4 + 8 bytes; counts = 12; section name ".text" = 4+5.
        let kind_off = 4 + (4 + 8) + 12 + (4 + 5);
        corrupt[kind_off] = 0x7f;
        assert!(AoutBackend.read(&corrupt).is_err());
    }
}
