//! The `som` backend: a chunked, tag-length-value encoding.
//!
//! Layout:
//!
//! ```text
//! magic "XSM1"
//! chunk*  where chunk = tag(4 bytes) length(u32) payload(length bytes)
//! "END!" chunk terminates
//! ```
//!
//! Chunks: `NAME` (object name), `SPCE` (one section — SOM calls them
//! "spaces"), `SYMB` (entire symbol table), `FIXU` (all relocations — SOM
//! calls them "fixups"). Unknown chunk tags are skipped, which lets newer
//! writers add chunks without breaking older readers — the kind of format
//! evolution the paper's BFD discussion is about.

use super::aout::{read_symbol, write_symbol};
use super::wire::{Reader, Writer};
use super::{Backend, Format};
use crate::error::{ObjError, Result};
use crate::object::ObjectFile;
use crate::reloc::{RelocKind, Relocation};
use crate::section::{Section, SectionKind};

const MAGIC: &[u8; 4] = b"XSM1";

/// The `som` encoding backend.
#[derive(Debug, Clone, Copy, Default)]
pub struct SomBackend;

fn chunk(w: &mut Writer, tag: &[u8; 4], payload: Writer) {
    w.bytes(tag);
    let bytes = payload.into_bytes();
    w.u32(bytes.len() as u32);
    w.bytes(&bytes);
}

impl Backend for SomBackend {
    fn format(&self) -> Format {
        Format::Som
    }

    fn write(&self, obj: &ObjectFile) -> Vec<u8> {
        let mut w = Writer::new();
        w.bytes(MAGIC);

        let mut name = Writer::new();
        name.str(&obj.name);
        chunk(&mut w, b"NAME", name);

        for s in &obj.sections {
            let mut p = Writer::new();
            p.str(&s.name);
            p.u8(s.kind.code());
            p.u64(s.size);
            p.u64(s.align);
            p.u32(s.bytes.len() as u32);
            p.bytes(&s.bytes);
            chunk(&mut w, b"SPCE", p);
        }

        let mut symb = Writer::new();
        symb.u32(obj.symbols.len() as u32);
        for sym in obj.symbols.iter() {
            write_symbol(&mut symb, sym);
        }
        chunk(&mut w, b"SYMB", symb);

        let mut fixu = Writer::new();
        fixu.u32(obj.relocs.len() as u32);
        for r in &obj.relocs {
            fixu.u32(r.section as u32);
            fixu.u64(r.offset);
            fixu.u8(r.kind.code());
            fixu.str(&r.symbol);
            fixu.i64(r.addend);
        }
        chunk(&mut w, b"FIXU", fixu);

        chunk(&mut w, b"END!", Writer::new());
        w.into_bytes()
    }

    fn read(&self, bytes: &[u8]) -> Result<ObjectFile> {
        let mut r = Reader::new(bytes);
        if r.bytes(4)? != MAGIC {
            return Err(ObjError::Malformed("bad som magic".into()));
        }
        let mut obj = ObjectFile::new("");
        let mut saw_end = false;
        while r.remaining() > 0 {
            let tag: [u8; 4] = r.bytes(4)?.try_into().expect("len checked");
            let len = r.u32()? as usize;
            let payload = r.bytes(len)?;
            let mut p = Reader::new(payload);
            match &tag {
                b"NAME" => obj.name = p.str()?,
                b"SPCE" => {
                    let name = p.str()?;
                    let kind = SectionKind::from_code(p.u8()?)
                        .ok_or_else(|| ObjError::Malformed("bad space kind".into()))?;
                    let size = p.u64()?;
                    let align = p.u64()?;
                    if !align.is_power_of_two() {
                        return Err(ObjError::Malformed(format!("bad alignment {align}")));
                    }
                    let nbytes = p.u32()? as usize;
                    let data = p.bytes(nbytes)?.to_vec();
                    if kind != SectionKind::Bss && size != nbytes as u64 {
                        return Err(ObjError::Malformed("space size/bytes mismatch".into()));
                    }
                    obj.sections.push(Section {
                        name,
                        kind,
                        bytes: data,
                        size,
                        align,
                    });
                }
                b"SYMB" => {
                    let n = p.u32()? as usize;
                    for _ in 0..n {
                        let sym = read_symbol(&mut p)?;
                        obj.symbols
                            .insert(sym)
                            .map_err(|e| ObjError::Malformed(format!("symbol table: {e}")))?;
                    }
                }
                b"FIXU" => {
                    let n = p.u32()? as usize;
                    for _ in 0..n {
                        let section = p.u32()? as usize;
                        let offset = p.u64()?;
                        let kind = RelocKind::from_code(p.u8()?)
                            .ok_or_else(|| ObjError::Malformed("bad fixup kind".into()))?;
                        let symbol = p.str()?;
                        let addend = p.i64()?;
                        obj.relocs.push(Relocation {
                            section,
                            offset,
                            kind,
                            symbol,
                            addend,
                        });
                    }
                }
                b"END!" => {
                    saw_end = true;
                    break;
                }
                _ => {
                    // Unknown chunk: skip (forward compatibility).
                }
            }
        }
        if !saw_end {
            return Err(ObjError::Malformed("missing END! chunk".into()));
        }
        Ok(obj)
    }

    fn sniff(&self, bytes: &[u8]) -> bool {
        bytes.len() >= 4 && &bytes[..4] == MAGIC
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_chunks_are_skipped() {
        let obj = super::super::tests::sample();
        let bytes = SomBackend.write(&obj);
        // Splice an unknown chunk right after the magic.
        let mut spliced = bytes[..4].to_vec();
        spliced.extend_from_slice(b"WEIRD"[..4].try_into().unwrap_or(b"WEIR"));
        spliced.extend_from_slice(&(3u32).to_le_bytes());
        spliced.extend_from_slice(&[1, 2, 3]);
        spliced.extend_from_slice(&bytes[4..]);
        assert_eq!(SomBackend.read(&spliced).unwrap(), obj);
    }

    #[test]
    fn missing_end_chunk_rejected() {
        let obj = ObjectFile::new("t.o");
        let bytes = SomBackend.write(&obj);
        // Drop the END! chunk (last 8 bytes: tag + zero length).
        assert!(SomBackend.read(&bytes[..bytes.len() - 8]).is_err());
    }

    #[test]
    fn empty_object_roundtrips() {
        let obj = ObjectFile::new("");
        let bytes = SomBackend.write(&obj);
        assert_eq!(SomBackend.read(&bytes).unwrap(), obj);
    }
}
