//! The versioned, checksummed container frame for persisted artifacts.
//!
//! Everything the durable server writes to "disk" — objects, blueprints,
//! linked images, the checkpoint manifest, journal records — travels
//! inside one of these frames:
//!
//! ```text
//! magic "OMCF" | version u16 | kind u8 | payload_len u64 | payload | fnv64
//! ```
//!
//! The trailing FNV-1a checksum covers every byte before it, so a torn
//! write, a flipped bit, or a frame from a different build generation is
//! detected at [`open`] time and reported as a typed error. Restore
//! treats any such failure as "this artifact does not exist" and falls
//! back to relinking — corruption degrades, it never propagates.
//!
//! Frames are self-delimiting, so a file may hold a back-to-back
//! sequence of them (the binding journal does); [`scan_frames`] walks
//! such a sequence and stops cleanly at a torn tail.

use crate::error::{ObjError, Result};
use crate::hash::fnv1a;

use super::wire::{Reader, Writer};

/// Magic prefix of every container frame.
pub const MAGIC: &[u8; 4] = b"OMCF";

/// Current container version. Bumped on any layout change; frames from
/// other versions are rejected (version skew ⇒ relink, never reuse).
pub const VERSION: u16 = 1;

/// What kind of payload a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContainerKind {
    /// A serialized [`crate::ObjectFile`] (in some [`super::Format`]).
    Object,
    /// A serialized blueprint (m-graph).
    Blueprint,
    /// A serialized linked image.
    Image,
    /// A checkpoint manifest.
    Manifest,
    /// One binding-journal record.
    JournalRecord,
    /// A canonical resolution manifest (symbol → provider bindings).
    Resolution,
}

impl ContainerKind {
    const ALL: [ContainerKind; 6] = [
        ContainerKind::Object,
        ContainerKind::Blueprint,
        ContainerKind::Image,
        ContainerKind::Manifest,
        ContainerKind::JournalRecord,
        ContainerKind::Resolution,
    ];

    fn tag(self) -> u8 {
        match self {
            ContainerKind::Object => 1,
            ContainerKind::Blueprint => 2,
            ContainerKind::Image => 3,
            ContainerKind::Manifest => 4,
            ContainerKind::JournalRecord => 5,
            ContainerKind::Resolution => 6,
        }
    }

    fn from_tag(tag: u8) -> Option<ContainerKind> {
        ContainerKind::ALL.into_iter().find(|k| k.tag() == tag)
    }

    /// Human-readable kind name (used in error messages and reports).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ContainerKind::Object => "object",
            ContainerKind::Blueprint => "blueprint",
            ContainerKind::Image => "image",
            ContainerKind::Manifest => "manifest",
            ContainerKind::JournalRecord => "journal-record",
            ContainerKind::Resolution => "resolution",
        }
    }
}

/// Wraps `payload` in a sealed frame: header, payload, checksum.
#[must_use]
pub fn seal(kind: ContainerKind, payload: &[u8]) -> Vec<u8> {
    let mut w = Writer::new();
    w.bytes(MAGIC);
    w.u16(VERSION);
    w.u8(kind.tag());
    w.u64(payload.len() as u64);
    w.bytes(payload);
    // Checksum covers header + payload, i.e. everything so far.
    let mut body = w.into_bytes();
    let sum = fnv1a(&body);
    body.extend_from_slice(&sum.0.to_le_bytes());
    body
}

/// Parses one frame from the front of `bytes`, verifying magic, version,
/// kind tag, length, and checksum. Returns the payload and the total
/// frame length consumed.
fn open_frame(bytes: &[u8]) -> Result<(ContainerKind, &[u8], usize)> {
    let mut r = Reader::new(bytes);
    let magic = r.bytes(4)?;
    if magic != MAGIC {
        return Err(ObjError::Malformed("container: bad magic".into()));
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(ObjError::Malformed(format!(
            "container: version skew (found {version}, want {VERSION})"
        )));
    }
    let tag = r.u8()?;
    let kind = ContainerKind::from_tag(tag)
        .ok_or_else(|| ObjError::Malformed(format!("container: unknown kind tag {tag}")))?;
    let len = r.u64()? as usize;
    if len > r.remaining() {
        return Err(ObjError::Malformed(format!(
            "container: truncated payload (claims {len} bytes, {} remain)",
            r.remaining()
        )));
    }
    let payload = r.bytes(len)?;
    let body_end = r.position();
    let sum = r.u64()?;
    if fnv1a(&bytes[..body_end]).0 != sum {
        return Err(ObjError::Malformed("container: checksum mismatch".into()));
    }
    Ok((kind, payload, r.position()))
}

/// Unwraps a sealed frame, checking it carries the expected `kind` and
/// that nothing trails it. Any malformation — bad magic, version skew,
/// truncation, checksum mismatch, wrong kind — is a typed error.
pub fn open(kind: ContainerKind, bytes: &[u8]) -> Result<&[u8]> {
    let (found, payload, consumed) = open_frame(bytes)?;
    if found != kind {
        return Err(ObjError::Malformed(format!(
            "container: kind mismatch (found {}, want {})",
            found.name(),
            kind.name()
        )));
    }
    if consumed != bytes.len() {
        return Err(ObjError::Malformed(format!(
            "container: {} trailing bytes after frame",
            bytes.len() - consumed
        )));
    }
    Ok(payload)
}

/// Walks a back-to-back sequence of frames (the journal layout),
/// returning every verifiable frame. A malformed stretch — a torn tail
/// after a crash mid-append, or a corrupt record — is skipped by
/// resynchronizing at the next frame header, so one damaged record
/// cannot hide everything behind it. The second element is true when
/// any damage was skipped.
#[must_use]
pub fn scan_frames(bytes: &[u8]) -> (Vec<(ContainerKind, &[u8])>, bool) {
    let mut out = Vec::new();
    let mut pos = 0;
    let mut damaged = false;
    while pos < bytes.len() {
        match open_frame(&bytes[pos..]) {
            Ok((kind, payload, consumed)) => {
                out.push((kind, payload));
                pos += consumed;
            }
            Err(_) => {
                damaged = true;
                match bytes[pos + 1..]
                    .windows(MAGIC.len())
                    .position(|w| w == MAGIC)
                {
                    Some(i) => pos += 1 + i,
                    None => break,
                }
            }
        }
    }
    (out, damaged)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_open_roundtrip() {
        for kind in ContainerKind::ALL {
            let framed = seal(kind, b"payload bytes");
            assert_eq!(open(kind, &framed).unwrap(), b"payload bytes");
        }
    }

    #[test]
    fn empty_payload_roundtrips() {
        let framed = seal(ContainerKind::Manifest, b"");
        assert_eq!(open(ContainerKind::Manifest, &framed).unwrap(), b"");
    }

    #[test]
    fn kind_mismatch_rejected() {
        let framed = seal(ContainerKind::Object, b"x");
        assert!(open(ContainerKind::Image, &framed).is_err());
    }

    #[test]
    fn every_single_byte_corruption_detected() {
        let framed = seal(ContainerKind::Image, b"some image payload");
        for i in 0..framed.len() {
            for flip in [0x01u8, 0x80] {
                let mut bad = framed.clone();
                bad[i] ^= flip;
                assert!(
                    open(ContainerKind::Image, &bad).is_err(),
                    "flipping bit {flip:#x} of byte {i} must not decode"
                );
            }
        }
    }

    #[test]
    fn every_truncation_detected() {
        let framed = seal(ContainerKind::Blueprint, b"graph");
        for cut in 0..framed.len() {
            assert!(open(ContainerKind::Blueprint, &framed[..cut]).is_err());
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut framed = seal(ContainerKind::Object, b"x");
        framed.push(0);
        assert!(open(ContainerKind::Object, &framed).is_err());
    }

    #[test]
    fn version_skew_rejected() {
        let mut framed = seal(ContainerKind::Object, b"x");
        framed[4] ^= 0xff; // version field low byte
        let err = open(ContainerKind::Object, &framed).unwrap_err();
        assert!(err.to_string().contains("version skew") || err.to_string().contains("checksum"));
    }

    #[test]
    fn scan_frames_walks_sequence_and_tolerates_torn_tail() {
        let mut file = Vec::new();
        file.extend_from_slice(&seal(ContainerKind::JournalRecord, b"one"));
        file.extend_from_slice(&seal(ContainerKind::JournalRecord, b"two"));
        let (frames, torn) = scan_frames(&file);
        assert!(!torn);
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[1].1, b"two");

        // Append a torn third record: every prefix of it must scan to
        // exactly the two good records plus a torn flag.
        let third = seal(ContainerKind::JournalRecord, b"three");
        for cut in 1..third.len() {
            let mut torn_file = file.clone();
            torn_file.extend_from_slice(&third[..cut]);
            let (frames, torn) = scan_frames(&torn_file);
            assert_eq!(
                frames.len(),
                2,
                "torn tail at {cut} must not yield a record"
            );
            assert!(torn);
        }

        // The full third record scans clean.
        file.extend_from_slice(&third);
        let (frames, torn) = scan_frames(&file);
        assert_eq!(frames.len(), 3);
        assert!(!torn);
    }

    #[test]
    fn scan_frames_resyncs_past_a_corrupt_record() {
        let one = seal(ContainerKind::JournalRecord, b"one");
        let two = seal(ContainerKind::JournalRecord, b"two");
        // Corrupt any single byte of the first record: the second must
        // still be recovered by resynchronizing at its header.
        for i in 0..one.len() {
            let mut file = one.clone();
            file[i] ^= 0x01;
            file.extend_from_slice(&two);
            let (frames, damaged) = scan_frames(&file);
            assert!(damaged, "corruption at byte {i} must be flagged");
            assert_eq!(
                frames.iter().filter(|(_, p)| *p == b"two").count(),
                1,
                "record after corruption at byte {i} must survive"
            );
        }
    }

    #[test]
    fn empty_input_scans_clean() {
        let (frames, torn) = scan_frames(&[]);
        assert!(frames.is_empty());
        assert!(!torn);
    }
}
