//! Wire encodings for object files, behind a BFD-like backend switch.
//!
//! The paper's OMOS understood HP SOM and `a.out`, and was being retargeted
//! to the GNU BFD library — "an array of object-format specific backends".
//! We model that portability layer with a [`Backend`] trait and two concrete
//! encodings with deliberately different layouts:
//!
//! * [`aout`] — a flat, header-plus-tables layout in the spirit of BSD
//!   `a.out`;
//! * [`som`] — a chunked, tag-length-value layout in the spirit of HP SOM
//!   "spaces".
//!
//! [`read_any`] sniffs the magic number and dispatches, exactly as the
//! object-file switch in the paper does.

pub mod aout;
pub mod container;
pub mod som;
mod wire;

pub use container::ContainerKind;
pub use wire::{Reader, Writer};

use crate::error::{ObjError, Result};
use crate::object::ObjectFile;

/// The encodings this build understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Format {
    /// Flat header-plus-tables encoding.
    Aout,
    /// Chunked tag-length-value encoding.
    Som,
}

impl Format {
    /// Parses a format name (`"aout"` / `"som"`).
    pub fn parse(name: &str) -> Result<Format> {
        match name {
            "aout" | "a.out" => Ok(Format::Aout),
            "som" => Ok(Format::Som),
            other => Err(ObjError::UnknownFormat(other.to_string())),
        }
    }

    /// Canonical name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Format::Aout => "aout",
            Format::Som => "som",
        }
    }
}

/// An object-format backend: serialize, deserialize, and sniff.
pub trait Backend {
    /// The format this backend implements.
    fn format(&self) -> Format;
    /// Serializes an object file.
    fn write(&self, obj: &ObjectFile) -> Vec<u8>;
    /// Deserializes an object file.
    fn read(&self, bytes: &[u8]) -> Result<ObjectFile>;
    /// Returns true if `bytes` begin with this backend's magic.
    fn sniff(&self, bytes: &[u8]) -> bool;
}

/// All registered backends.
#[must_use]
pub fn backends() -> Vec<Box<dyn Backend>> {
    vec![Box::new(aout::AoutBackend), Box::new(som::SomBackend)]
}

/// Serializes `obj` in the given format.
#[must_use]
pub fn write(format: Format, obj: &ObjectFile) -> Vec<u8> {
    match format {
        Format::Aout => aout::AoutBackend.write(obj),
        Format::Som => som::SomBackend.write(obj),
    }
}

/// Deserializes `bytes` in the given format.
pub fn read(format: Format, bytes: &[u8]) -> Result<ObjectFile> {
    match format {
        Format::Aout => aout::AoutBackend.read(bytes),
        Format::Som => som::SomBackend.read(bytes),
    }
}

/// Sniffs the magic number and dispatches to the right backend.
pub fn read_any(bytes: &[u8]) -> Result<ObjectFile> {
    for b in backends() {
        if b.sniff(bytes) {
            return b.read(bytes);
        }
    }
    Err(ObjError::Malformed(
        "no backend recognizes this image".into(),
    ))
}

/// Identifies the format of an image without decoding it.
#[must_use]
pub fn sniff(bytes: &[u8]) -> Option<Format> {
    backends()
        .into_iter()
        .find(|b| b.sniff(bytes))
        .map(|b| b.format())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reloc::{RelocKind, Relocation};
    use crate::section::{Section, SectionKind};
    use crate::symbol::Symbol;

    pub(crate) fn sample() -> ObjectFile {
        let mut o = ObjectFile::new("sample.o");
        let t = o.add_section(Section::with_bytes(
            ".text",
            SectionKind::Text,
            vec![1, 2, 3, 4, 0, 0, 0, 0],
            8,
        ));
        let d = o.add_section(Section::with_bytes(
            ".data",
            SectionKind::Data,
            vec![9; 12],
            4,
        ));
        o.add_section(Section::bss(".bss", 256, 16));
        o.define(Symbol::defined("_main", t, 0)).unwrap();
        o.define(Symbol::defined("_var", d, 4)).unwrap();
        o.define(Symbol::common("_buf", 64)).unwrap();
        o.define(Symbol::absolute("_magic", 0xdead)).unwrap();
        o.define(Symbol::defined("_local_helper", t, 4).local())
            .unwrap();
        o.define(Symbol::defined("_weak_thing", t, 4).weak())
            .unwrap();
        o.relocate(Relocation::new(t, 0, RelocKind::Abs32, "_printf").with_addend(-3));
        o.relocate(Relocation::new(t, 4, RelocKind::Pcrel32, "_main"));
        o.relocate(Relocation::new(d, 0, RelocKind::Abs64, "_var").with_addend(8));
        o
    }

    #[test]
    fn roundtrip_both_formats() {
        let obj = sample();
        for fmt in [Format::Aout, Format::Som] {
            let bytes = write(fmt, &obj);
            let back = read(fmt, &bytes).unwrap();
            assert_eq!(back, obj, "round-trip through {}", fmt.name());
        }
    }

    #[test]
    fn read_any_dispatches_by_magic() {
        let obj = sample();
        for fmt in [Format::Aout, Format::Som] {
            let bytes = write(fmt, &obj);
            assert_eq!(sniff(&bytes), Some(fmt));
            assert_eq!(read_any(&bytes).unwrap(), obj);
        }
    }

    #[test]
    fn formats_are_actually_different() {
        let obj = sample();
        assert_ne!(write(Format::Aout, &obj), write(Format::Som, &obj));
    }

    #[test]
    fn unknown_magic_rejected() {
        assert!(read_any(b"#!/bin/omos\n").is_err());
        assert!(read_any(&[]).is_err());
        assert!(sniff(b"ELF?").is_none());
    }

    #[test]
    fn cross_reading_fails_cleanly() {
        let obj = sample();
        let aout_bytes = write(Format::Aout, &obj);
        assert!(read(Format::Som, &aout_bytes).is_err());
        let som_bytes = write(Format::Som, &obj);
        assert!(read(Format::Aout, &som_bytes).is_err());
    }

    #[test]
    fn truncation_is_detected() {
        let obj = sample();
        for fmt in [Format::Aout, Format::Som] {
            let bytes = write(fmt, &obj);
            for cut in [1, bytes.len() / 2, bytes.len() - 1] {
                assert!(
                    read(fmt, &bytes[..cut]).is_err(),
                    "truncated-at-{cut} {} image must not decode",
                    fmt.name()
                );
            }
        }
    }

    #[test]
    fn format_parse() {
        assert_eq!(Format::parse("aout").unwrap(), Format::Aout);
        assert_eq!(Format::parse("a.out").unwrap(), Format::Aout);
        assert_eq!(Format::parse("som").unwrap(), Format::Som);
        assert!(Format::parse("elf").is_err());
    }
}
