//! Little-endian wire primitives shared by the encoding backends.

use crate::error::{ObjError, Result};

/// Append-only little-endian byte writer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Consumes the writer, returning the bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes a single byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a 16-bit little-endian value.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a 32-bit little-endian value.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a 64-bit little-endian value.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a 64-bit little-endian signed value.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes raw bytes.
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Writes a `u32`-length-prefixed string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.bytes(s.as_bytes());
    }
}

/// Checked little-endian byte reader.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a byte slice.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current cursor position.
    #[must_use]
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(ObjError::Malformed(format!(
                "truncated: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a 16-bit little-endian value.
    pub fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("len checked"),
        ))
    }

    /// Reads a 32-bit little-endian value.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("len checked"),
        ))
    }

    /// Reads a 64-bit little-endian value.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("len checked"),
        ))
    }

    /// Reads a 64-bit little-endian signed value.
    pub fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("len checked"),
        ))
    }

    /// Reads exactly `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }

    /// Reads a `u32`-length-prefixed string.
    pub fn str(&mut self) -> Result<String> {
        let n = self.u32()? as usize;
        // Guard against absurd lengths in corrupt images before allocating.
        if n > self.remaining() {
            return Err(ObjError::Malformed(format!(
                "truncated string: claims {n} bytes, {} remain",
                self.remaining()
            )));
        }
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| ObjError::Malformed("string is not UTF-8".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut w = Writer::new();
        w.u8(0xab);
        w.u16(0x1234);
        w.u32(0xdead_beef);
        w.u64(0x0123_4567_89ab_cdef);
        w.i64(-42);
        w.str("hello");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 0xab);
        assert_eq!(r.u16().unwrap(), 0x1234);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), 0x0123_4567_89ab_cdef);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.str().unwrap(), "hello");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncated_reads_error() {
        let mut r = Reader::new(&[1, 2]);
        assert!(r.u32().is_err());
        // Failed read must not consume.
        assert_eq!(r.remaining(), 2);
        assert_eq!(r.u16().unwrap(), 0x0201);
    }

    #[test]
    fn bogus_string_length_rejected_without_alloc() {
        let mut w = Writer::new();
        w.u32(u32::MAX);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(r.str().is_err());
    }

    #[test]
    fn non_utf8_string_rejected() {
        let mut w = Writer::new();
        w.u32(2);
        w.bytes(&[0xff, 0xfe]);
        let bytes = w.into_bytes();
        assert!(Reader::new(&bytes).str().is_err());
    }
}
