//! The blueprint surface syntax: "a simple Lisp-like syntax".
//!
//! Atoms are symbols (`/lib/libc`, `merge`), double-quoted strings, or
//! integers (decimal or `0x` hex); `;` comments run to end of line.
//!
//! Every parsed node carries the byte [`Span`] it was read from, so
//! diagnostics (parse errors, evaluator errors, and the static
//! analyzer's lints) can point at the offending operator in the
//! blueprint source.

use std::fmt;

/// A half-open byte range `[start, end)` in the blueprint source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// First byte of the spanned text.
    pub start: usize,
    /// One past the last byte of the spanned text.
    pub end: usize,
}

impl Span {
    /// Builds a span.
    #[must_use]
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    /// The 1-based line and column of the span's start within `src`.
    #[must_use]
    pub fn line_col(&self, src: &str) -> (usize, usize) {
        let upto = &src[..self.start.min(src.len())];
        let line = upto.bytes().filter(|&b| b == b'\n').count() + 1;
        let col = upto
            .rfind('\n')
            .map_or(self.start + 1, |nl| self.start - nl);
        (line, col)
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bytes {}..{}", self.start, self.end)
    }
}

/// A parsed s-expression with its source span.
///
/// Equality and hashing compare *structure only* (the [`SexprKind`]
/// tree), never spans: two parses of the same text laid out differently
/// are equal, which the server's structural blueprint hashing relies
/// on.
#[derive(Debug, Clone, Eq)]
pub struct Sexpr {
    /// What was parsed.
    pub kind: SexprKind,
    /// Where it was parsed from.
    pub span: Span,
}

/// The shape of one s-expression node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SexprKind {
    /// A bare symbol (operator names, namespace paths).
    Sym(String),
    /// A quoted string (regular expressions, source text).
    Str(String),
    /// An integer (addresses, sizes).
    Num(i64),
    /// A parenthesized list.
    List(Vec<Sexpr>),
}

impl PartialEq for Sexpr {
    fn eq(&self, other: &Sexpr) -> bool {
        self.kind == other.kind
    }
}

impl Sexpr {
    /// The symbol text, if this is a symbol.
    #[must_use]
    pub fn as_sym(&self) -> Option<&str> {
        match &self.kind {
            SexprKind::Sym(s) => Some(s),
            _ => None,
        }
    }

    /// The string text, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match &self.kind {
            SexprKind::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    #[must_use]
    pub fn as_num(&self) -> Option<i64> {
        match &self.kind {
            SexprKind::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The element list, if this is a list.
    #[must_use]
    pub fn as_list(&self) -> Option<&[Sexpr]> {
        match &self.kind {
            SexprKind::List(l) => Some(l),
            _ => None,
        }
    }
}

impl fmt::Display for Sexpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            SexprKind::Sym(s) => write!(f, "{s}"),
            SexprKind::Str(s) => write!(f, "{s:?}"),
            SexprKind::Num(n) => write!(f, "{n}"),
            SexprKind::List(items) => {
                write!(f, "(")?;
                for (i, it) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{it}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// A parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input.
    pub offset: usize,
    /// Description.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a whole input into its top-level s-expressions.
pub fn parse_sexprs(input: &str) -> Result<Vec<Sexpr>, ParseError> {
    let mut p = Parser {
        chars: input.char_indices().collect(),
        pos: 0,
    };
    let mut out = Vec::new();
    loop {
        p.skip_ws();
        if p.eof() {
            return Ok(out);
        }
        out.push(p.expr()?);
    }
}

struct Parser {
    chars: Vec<(usize, char)>,
    pos: usize,
}

impl Parser {
    fn eof(&self) -> bool {
        self.pos >= self.chars.len()
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).map(|&(_, c)| c)
    }

    fn offset(&self) -> usize {
        self.chars.get(self.pos).map_or_else(
            || self.chars.last().map_or(0, |&(o, c)| o + c.len_utf8()),
            |&(o, _)| o,
        )
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            offset: self.offset(),
            msg: msg.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some(';') => {
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                _ => return,
            }
        }
    }

    fn expr(&mut self) -> Result<Sexpr, ParseError> {
        self.skip_ws();
        let start = self.offset();
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some('(') => {
                self.bump();
                let mut items = Vec::new();
                loop {
                    self.skip_ws();
                    match self.peek() {
                        None => return Err(self.err("unterminated `(`")),
                        Some(')') => {
                            self.bump();
                            return Ok(Sexpr {
                                kind: SexprKind::List(items),
                                span: Span::new(start, self.offset()),
                            });
                        }
                        _ => items.push(self.expr()?),
                    }
                }
            }
            Some(')') => Err(self.err("unexpected `)`")),
            Some('"') => self.string(start),
            _ => self.atom(start),
        }
    }

    fn string(&mut self, start: usize) -> Result<Sexpr, ParseError> {
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some('"') => {
                    return Ok(Sexpr {
                        kind: SexprKind::Str(out),
                        span: Span::new(start, self.offset()),
                    })
                }
                Some('\\') => match self.bump() {
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('\\') => out.push('\\'),
                    Some('"') => out.push('"'),
                    Some(other) => {
                        return Err(self.err(&format!("bad escape `\\{other}`")));
                    }
                    None => return Err(self.err("dangling escape")),
                },
                Some(c) => out.push(c),
            }
        }
    }

    fn atom(&mut self, start: usize) -> Result<Sexpr, ParseError> {
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c.is_whitespace() || c == '(' || c == ')' || c == ';' || c == '"' {
                break;
            }
            text.push(c);
            self.bump();
        }
        if text.is_empty() {
            return Err(self.err("empty atom"));
        }
        let span = Span::new(start, self.offset());
        // Numbers: decimal or hex, optionally negative.
        let body = text.strip_prefix('-').unwrap_or(&text);
        let parsed = if let Some(h) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
            i64::from_str_radix(h, 16).ok()
        } else if body.chars().all(|c| c.is_ascii_digit()) && !body.is_empty() {
            body.parse::<i64>().ok()
        } else {
            None
        };
        let kind = match parsed {
            Some(n) if text.starts_with('-') => SexprKind::Num(-n),
            Some(n) => SexprKind::Num(n),
            None => SexprKind::Sym(text),
        };
        Ok(Sexpr { kind, span })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_figure1_meta_object() {
        let src = r#"
            (constraint-list "T" 0x100000 "D" 0x40200000) ; default address constraint
            (merge
              /libc/gen /libc/stdio /libc/string /libc/stdlib
              /libc/hppa /libc/net /libc/quad /libc/rpc)
        "#;
        let forms = parse_sexprs(src).unwrap();
        assert_eq!(forms.len(), 2);
        let cl = forms[0].as_list().unwrap();
        assert_eq!(cl[0].as_sym(), Some("constraint-list"));
        assert_eq!(cl[2].as_num(), Some(0x100000));
        let merge = forms[1].as_list().unwrap();
        assert_eq!(merge.len(), 9);
        assert_eq!(merge[1].as_sym(), Some("/libc/gen"));
    }

    #[test]
    fn parses_figure2_interposition() {
        let src = r#"
            ;; malloc() -> malloc'()
            (hide "_REAL_malloc"
              (merge
                (restrict "^_malloc$"
                  (copy_as "^_malloc$" "_REAL_malloc"
                    (merge /bin/ls.o /lib/libc.o)))
                /lib/test_malloc.o))
        "#;
        let forms = parse_sexprs(src).unwrap();
        assert_eq!(forms.len(), 1);
        let hide = forms[0].as_list().unwrap();
        assert_eq!(hide[0].as_sym(), Some("hide"));
        assert_eq!(hide[1].as_str(), Some("_REAL_malloc"));
    }

    #[test]
    fn string_escapes_match_source_operator_usage() {
        // Figure 3: (source "c" "int undef_var = 0;\n")
        let forms = parse_sexprs(r#"(source "c" "int undef_var = 0;\n")"#).unwrap();
        let l = forms[0].as_list().unwrap();
        assert_eq!(l[2].as_str(), Some("int undef_var = 0;\n"));
    }

    #[test]
    fn numbers_hex_decimal_negative() {
        let forms = parse_sexprs("(x 10 0x10 -5 -0x20)").unwrap();
        let l = forms[0].as_list().unwrap();
        assert_eq!(l[1].as_num(), Some(10));
        assert_eq!(l[2].as_num(), Some(16));
        assert_eq!(l[3].as_num(), Some(-5));
        assert_eq!(l[4].as_num(), Some(-32));
    }

    #[test]
    fn errors() {
        assert!(parse_sexprs("(unclosed").is_err());
        assert!(parse_sexprs(")").is_err());
        assert!(parse_sexprs("\"unterminated").is_err());
        assert!(parse_sexprs(r#""bad \q escape""#).is_err());
    }

    #[test]
    fn display_round_trips_structure() {
        let src = r#"(merge /a (hide "x" /b) 7)"#;
        let forms = parse_sexprs(src).unwrap();
        let printed = forms[0].to_string();
        assert_eq!(parse_sexprs(&printed).unwrap(), forms);
    }

    #[test]
    fn empty_input_ok() {
        assert!(parse_sexprs("  ; just a comment\n").unwrap().is_empty());
    }

    #[test]
    fn spans_cover_their_source_text() {
        let src = r#"(merge /a (hide "x" /b) 0x10)"#;
        let forms = parse_sexprs(src).unwrap();
        let top = &forms[0];
        assert_eq!(&src[top.span.start..top.span.end], src);
        let items = top.as_list().unwrap();
        assert_eq!(&src[items[1].span.start..items[1].span.end], "/a");
        let hide = &items[2];
        assert_eq!(&src[hide.span.start..hide.span.end], r#"(hide "x" /b)"#);
        let pat = &hide.as_list().unwrap()[1];
        assert_eq!(&src[pat.span.start..pat.span.end], r#""x""#);
        assert_eq!(&src[items[3].span.start..items[3].span.end], "0x10");
    }

    #[test]
    fn line_col_is_one_based() {
        let src = "(a\n  (b))";
        let forms = parse_sexprs(src).unwrap();
        let inner = &forms[0].as_list().unwrap()[1];
        assert_eq!(inner.span.line_col(src), (2, 3));
        assert_eq!(forms[0].span.line_col(src), (1, 1));
    }
}
