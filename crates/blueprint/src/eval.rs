//! M-graph evaluation.
//!
//! Executing an m-graph "may result in OMOS compiling source code,
//! performing symbol translations, and combining and relocating
//! fragments". The evaluator is deliberately *server-agnostic*: namespace
//! resolution, sub-result caching, and dynamic-library registration come
//! through the [`EvalContext`] trait, which the OMOS server implements.
//!
//! The output separates the *client module* (everything merged inline)
//! from the *shared libraries* it references ([`LibraryUse`]): a leaf that
//! resolves to a library-class meta-object (one carrying a
//! `constraint-list`, like Figure 1's libc) or an explicit
//! `lib-constrained` specialization is not merged into the client — the
//! server places it with the constraint system and binds the client to
//! its exports, which is precisely the self-contained scheme. A
//! `lib-dynamic` specialization instead *is* merged, as generated stubs.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use omos_constraint::RegionClass;
use omos_link::make_partial_stubs;
use omos_module::Module;
use omos_obj::{ContentHash, ObjError};

use crate::ast::{Blueprint, BlueprintError, MNode, SpecKind};
use crate::sexpr::Span;
use crate::source::{compile_source, SourceError};

/// Evaluation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// Blueprint shape problem discovered during evaluation.
    Blueprint(BlueprintError),
    /// Module/object operation failure (duplicate symbols, bad regex...).
    Obj(ObjError),
    /// `source` operator failure.
    Source(SourceError),
    /// A namespace path did not resolve.
    Resolve(String),
    /// Meta-objects reference each other in a cycle.
    Cycle(String),
    /// An operation appeared somewhere it cannot (e.g. constrained
    /// library under `hide`).
    Misplaced(String),
    /// A parallel evaluation worker died (panicked) while executing a
    /// work unit; the request aborts cleanly.
    Worker(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Blueprint(e) => write!(f, "{e}"),
            EvalError::Obj(e) => write!(f, "{e}"),
            EvalError::Source(e) => write!(f, "{e}"),
            EvalError::Resolve(p) => write!(f, "cannot resolve `{p}`"),
            EvalError::Cycle(p) => write!(f, "meta-object cycle through `{p}`"),
            EvalError::Misplaced(m) => write!(f, "misplaced operation: {m}"),
            EvalError::Worker(m) => write!(f, "evaluation worker failed: {m}"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<ObjError> for EvalError {
    fn from(e: ObjError) -> EvalError {
        EvalError::Obj(e)
    }
}

impl From<BlueprintError> for EvalError {
    fn from(e: BlueprintError) -> EvalError {
        EvalError::Blueprint(e)
    }
}

impl From<SourceError> for EvalError {
    fn from(e: SourceError) -> EvalError {
        EvalError::Source(e)
    }
}

/// What a namespace path resolves to.
#[derive(Debug, Clone)]
pub enum ResolvedNode {
    /// A relocatable object file (a leaf fragment).
    Object(std::sync::Arc<omos_obj::ObjectFile>),
    /// Another meta-object (its blueprint).
    Meta(Blueprint),
}

/// A cached evaluation result: the module plus the namespace paths its
/// derivation resolved. The evaluator folds the dependency record into
/// the enclosing scope on a hit so invalidation stays precise.
#[derive(Debug, Clone)]
pub struct CachedEval {
    /// The memoized module.
    pub module: Module,
    /// Namespace paths the cached derivation resolved.
    pub deps: Arc<BTreeSet<String>>,
}

/// Server services the evaluator needs.
///
/// Every method takes `&self`: the server's caches are internally
/// synchronized (sharded locks, atomics), and the parallel executor
/// probes and publishes from worker threads sharing one context. The
/// `Sync` supertrait makes `&dyn EvalContext` shareable across a
/// scoped worker pool.
pub trait EvalContext: Sync {
    /// Resolves a namespace path.
    fn resolve(&self, path: &str) -> Result<ResolvedNode, EvalError>;

    /// Looks up a cached evaluation result by structural key.
    fn cache_get(&self, key: ContentHash) -> Option<CachedEval>;

    /// Stores an evaluation result together with the namespace paths
    /// its derivation resolved (its invalidation record).
    fn cache_put(&self, key: ContentHash, module: &Module, deps: &Arc<BTreeSet<String>>);

    /// Registers a `lib-dynamic` implementation module, returning the
    /// library id the generated stubs will pass to `OMOS_LOOKUP`.
    fn register_dynamic_impl(&self, key: ContentHash, module: &Module) -> Result<u32, EvalError>;
}

/// Work counters for one evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// m-graph nodes visited.
    pub nodes: u64,
    /// Sub-results served from the cache.
    pub cache_hits: u64,
    /// Merge/override operations actually performed.
    pub merges: u64,
    /// `source` compilations performed.
    pub source_compiles: u64,
    /// Leaf objects loaded through the resolver.
    pub leaves: u64,
}

/// A shared library the evaluated client references.
#[derive(Debug, Clone)]
pub struct LibraryUse {
    /// Namespace name (or a synthetic name for inline specializations).
    pub name: String,
    /// Structural identity of the library's graph.
    pub key: ContentHash,
    /// The library's (un-placed) module.
    pub module: Module,
    /// Placement preferences, strongest first.
    pub constraints: Vec<(RegionClass, u64)>,
}

/// The result of evaluating a blueprint.
#[derive(Debug)]
pub struct EvalOutput {
    /// The client module: every inline-merged fragment (including
    /// generated dynamic stubs).
    pub module: Module,
    /// Self-contained shared libraries referenced, to be placed and bound
    /// by the server.
    pub libraries: Vec<LibraryUse>,
    /// Blueprint-level default constraints (for the client itself).
    pub constraints: Vec<(RegionClass, u64)>,
    /// Work counters.
    pub stats: EvalStats,
    /// Every namespace path the evaluation resolved (the request's
    /// invalidation record).
    pub deps: BTreeSet<String>,
}

struct Evaluator<'a> {
    ctx: &'a dyn EvalContext,
    stats: EvalStats,
    libraries: Vec<LibraryUse>,
    visiting: Vec<String>,
    /// Dependency scopes mirroring the recursion: `scopes[0]` is the
    /// whole evaluation's record; a deeper entry collects the paths one
    /// cache-missing subtree resolves, becoming that subtree's cache
    /// entry record when it completes (and folding into its parent).
    scopes: Vec<BTreeSet<String>>,
}

/// Evaluates a blueprint to a client module plus its library uses.
pub fn eval_blueprint(bp: &Blueprint, ctx: &dyn EvalContext) -> Result<EvalOutput, EvalError> {
    let mut ev = Evaluator {
        ctx,
        stats: EvalStats::default(),
        libraries: Vec::new(),
        visiting: Vec::new(),
        scopes: vec![BTreeSet::new()],
    };
    let module = ev.node(&bp.root).map_err(|e| locate_error(e, bp))?;
    let mut deps = BTreeSet::new();
    for s in ev.scopes {
        deps.extend(s);
    }
    Ok(EvalOutput {
        module,
        libraries: ev.libraries,
        constraints: bp.constraints.clone(),
        stats: ev.stats,
        deps,
    })
}

impl Evaluator<'_> {
    fn record(&mut self, path: &str) {
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .insert(path.to_string());
    }

    fn fold_deps(&mut self, deps: &BTreeSet<String>) {
        let top = self.scopes.last_mut().expect("scope stack never empty");
        for d in deps {
            top.insert(d.clone());
        }
    }

    fn node(&mut self, n: &MNode) -> Result<Module, EvalError> {
        self.stats.nodes += 1;
        let key = n.hash();
        if let Some(c) = self.ctx.cache_get(key) {
            self.stats.cache_hits += 1;
            // A hit stands on the entry's own dependency record: fold it
            // into the enclosing scope so the result invalidates when any
            // of those paths change.
            self.fold_deps(&c.deps);
            // Cached result for a subtree: library uses under it were
            // recorded when it was first evaluated and are re-declared by
            // re-walking only the library-introducing nodes.
            self.collect_library_uses(n)?;
            return Ok(c.module);
        }
        self.scopes.push(BTreeSet::new());
        let m = self.node_uncached(n)?;
        let deps = Arc::new(self.scopes.pop().expect("scope pushed above"));
        self.ctx.cache_put(key, &m, &deps);
        self.fold_deps(&deps);
        Ok(m)
    }

    fn node_uncached(&mut self, n: &MNode) -> Result<Module, EvalError> {
        match n {
            MNode::Leaf(path) => self.leaf(path),
            MNode::Merge(items) => {
                let mut acc: Option<Module> = None;
                for it in items {
                    let m = match self.library_candidate(it)? {
                        Some(()) => continue, // recorded as a library use
                        None => self.node(it)?,
                    };
                    acc = Some(match acc {
                        None => m,
                        Some(a) => {
                            self.stats.merges += 1;
                            a.merge_with(&m)?
                        }
                    });
                }
                match acc {
                    Some(a) => Ok(a),
                    None => {
                        // Every operand was a shared library: the "client"
                        // is empty, which is a blueprint bug.
                        Err(EvalError::Misplaced(
                            "merge of only shared libraries produces an empty client".into(),
                        ))
                    }
                }
            }
            MNode::Override(a, b) => {
                let ma = self.node(a)?;
                let mb = self.node(b)?;
                self.stats.merges += 1;
                Ok(ma.override_with(&mb)?)
            }
            MNode::Rename {
                pattern,
                replacement,
                target,
                operand,
            } => Ok(self.node(operand)?.rename(pattern, replacement, *target)?),
            MNode::Hide { pattern, operand } => Ok(self.node(operand)?.hide(pattern)?),
            MNode::Show { pattern, operand } => Ok(self.node(operand)?.show(pattern)?),
            MNode::Restrict { pattern, operand } => Ok(self.node(operand)?.restrict(pattern)?),
            MNode::Project { pattern, operand } => Ok(self.node(operand)?.project(pattern)?),
            MNode::CopyAs {
                pattern,
                replacement,
                operand,
            } => Ok(self.node(operand)?.copy_as(pattern, replacement)?),
            MNode::Freeze { pattern, operand } => Ok(self.node(operand)?.freeze(pattern)?),
            MNode::Initializers(o) => Ok(self.node(o)?.initializers()?),
            MNode::Source { lang, code } => {
                self.stats.source_compiles += 1;
                let obj = compile_source(lang, code, "<source>")?;
                Ok(Module::from_object(obj))
            }
            MNode::Specialize { kind, operand } => match kind {
                SpecKind::Static | SpecKind::DynamicImpl => self.node(operand),
                SpecKind::Dynamic => {
                    let impl_module = self.node(operand)?;
                    let key = impl_module.content_hash().with_str("dynamic-impl");
                    let lib_id = self.ctx.register_dynamic_impl(key, &impl_module)?;
                    let mut exports = impl_module.exports()?;
                    exports.sort();
                    Ok(Module::from_object(make_partial_stubs(lib_id, &exports)))
                }
                SpecKind::Constrained(cs) => {
                    // A constrained specialization evaluated in a position
                    // where its module is demanded directly (not under a
                    // merge): produce the module; the constraints apply
                    // when the server instantiates it standalone.
                    let m = self.node(operand)?;
                    let _ = cs;
                    Ok(m)
                }
            },
        }
    }

    /// If `n` introduces a self-contained shared library inside a merge,
    /// records the library use and returns `Some(())`.
    fn library_candidate(&mut self, n: &MNode) -> Result<Option<()>, EvalError> {
        match n {
            MNode::Specialize {
                kind: SpecKind::Constrained(cs),
                operand,
            } => {
                let module = self.node(operand)?;
                self.libraries.push(LibraryUse {
                    name: leaf_name(operand),
                    // Content-derived: rebuilding the library's fragments
                    // must produce a new key even under an unchanged graph.
                    key: module.content_hash(),
                    module,
                    constraints: cs.clone(),
                });
                Ok(Some(()))
            }
            MNode::Leaf(path) => {
                // A leaf naming a library-class meta-object (one with a
                // constraint-list) is a self-contained library reference.
                self.record(path);
                match self.ctx.resolve(path)? {
                    ResolvedNode::Meta(bp) if !bp.constraints.is_empty() => {
                        let module = self.meta(path, &bp)?;
                        self.libraries.push(LibraryUse {
                            name: path.clone(),
                            key: module.content_hash(),
                            module,
                            constraints: bp.constraints.clone(),
                        });
                        Ok(Some(()))
                    }
                    _ => Ok(None),
                }
            }
            _ => Ok(None),
        }
    }

    /// Re-declares library uses under an already-cached subtree without
    /// re-evaluating the expensive parts (modules come from the cache).
    fn collect_library_uses(&mut self, n: &MNode) -> Result<(), EvalError> {
        match n {
            MNode::Merge(items) => {
                for it in items {
                    if self.library_candidate(it)?.is_none() {
                        self.collect_library_uses(it)?;
                    }
                }
                Ok(())
            }
            MNode::Override(a, b) => {
                self.collect_library_uses(a)?;
                self.collect_library_uses(b)
            }
            MNode::Rename { operand, .. }
            | MNode::Hide { operand, .. }
            | MNode::Show { operand, .. }
            | MNode::Restrict { operand, .. }
            | MNode::Project { operand, .. }
            | MNode::CopyAs { operand, .. }
            | MNode::Freeze { operand, .. }
            | MNode::Specialize { operand, .. } => self.collect_library_uses(operand),
            MNode::Initializers(o) => self.collect_library_uses(o),
            MNode::Leaf(_) | MNode::Source { .. } => Ok(()),
        }
    }

    fn leaf(&mut self, path: &str) -> Result<Module, EvalError> {
        self.record(path);
        match self.ctx.resolve(path)? {
            ResolvedNode::Object(obj) => {
                self.stats.leaves += 1;
                Ok(Module::from_arc(obj))
            }
            ResolvedNode::Meta(bp) => self.meta(path, &bp),
        }
    }

    fn meta(&mut self, path: &str, bp: &Blueprint) -> Result<Module, EvalError> {
        if let Some(pos) = self.visiting.iter().position(|p| p == path) {
            return Err(EvalError::Cycle(cycle_chain(&self.visiting[pos..], path)));
        }
        self.visiting.push(path.to_string());
        let result = self.node(&bp.root);
        self.visiting.pop();
        result
    }
}

/// Formats the full blueprint path chain of a detected cycle: every
/// meta-object from the first re-entered node down to the repeat, e.g.
/// `/meta/a -> /meta/b -> /meta/a`.
pub(crate) fn cycle_chain(visiting_tail: &[String], repeat: &str) -> String {
    let mut chain: Vec<&str> = visiting_tail.iter().map(String::as_str).collect();
    chain.push(repeat);
    chain.join(" -> ")
}

pub(crate) fn leaf_name(n: &MNode) -> String {
    match n {
        MNode::Leaf(p) => p.clone(),
        other => format!("<inline:{}>", other.hash()),
    }
}

/// Attaches the blueprint source location of the failing leaf to
/// `Resolve`/`Cycle` errors (the variant stays a plain `String`; the
/// location is folded into the message). A cycle error carries the full
/// ` -> `-joined path chain; the located leaf is the chain's final
/// (re-entered) component. Errors raised from inside a *referenced*
/// meta-object have no span in this blueprint and pass through
/// unchanged.
pub(crate) fn locate_error(e: EvalError, bp: &Blueprint) -> EvalError {
    let locate = |name: &str| -> Option<Span> {
        let mut path = Vec::new();
        find_leaf_span(&bp.root, name, &mut path, bp)
    };
    match e {
        EvalError::Resolve(p) => match locate(&p) {
            Some(span) => EvalError::Resolve(format!("{p} (at {span})")),
            None => EvalError::Resolve(p),
        },
        EvalError::Cycle(p) => {
            let last = p.rsplit(" -> ").next().unwrap_or(&p);
            match locate(last) {
                Some(span) => EvalError::Cycle(format!("{p} (at {span})")),
                None => EvalError::Cycle(p),
            }
        }
        other => other,
    }
}

fn find_leaf_span(n: &MNode, target: &str, path: &mut Vec<u32>, bp: &Blueprint) -> Option<Span> {
    let mut descend = |i: u32, c: &MNode| -> Option<Span> {
        path.push(i);
        let found = find_leaf_span(c, target, path, bp);
        path.pop();
        found
    };
    match n {
        MNode::Leaf(p) if p == target => bp.spans.get(path),
        MNode::Leaf(_) | MNode::Source { .. } => None,
        MNode::Merge(items) => items
            .iter()
            .enumerate()
            .find_map(|(i, c)| descend(i as u32, c)),
        MNode::Override(a, b) => descend(0, a).or_else(|| descend(1, b)),
        MNode::Rename { operand, .. }
        | MNode::Hide { operand, .. }
        | MNode::Show { operand, .. }
        | MNode::Restrict { operand, .. }
        | MNode::Project { operand, .. }
        | MNode::CopyAs { operand, .. }
        | MNode::Freeze { operand, .. }
        | MNode::Specialize { operand, .. } => descend(0, operand),
        MNode::Initializers(o) => descend(0, o),
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use omos_isa::assemble;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Mutex};

    /// A test context: a flat namespace of objects and metas plus a real
    /// cache. Mutable state sits behind locks so the context serves the
    /// `&self` trait (and the parallel executor's worker threads).
    #[derive(Default)]
    pub(crate) struct TestCtx {
        pub(crate) objects: HashMap<String, Arc<omos_obj::ObjectFile>>,
        pub(crate) metas: HashMap<String, Blueprint>,
        pub(crate) cache: Mutex<HashMap<ContentHash, CachedEval>>,
        pub(crate) dynamic: Mutex<Vec<(ContentHash, Module)>>,
        pub(crate) resolve_calls: AtomicU64,
    }

    impl TestCtx {
        pub(crate) fn add_asm(&mut self, path: &str, src: &str) {
            self.objects.insert(
                path.to_string(),
                Arc::new(assemble(path, src).expect("assembles")),
            );
        }

        pub(crate) fn add_meta(&mut self, path: &str, src: &str) {
            self.metas
                .insert(path.to_string(), Blueprint::parse(src).expect("parses"));
        }

        pub(crate) fn dynamic_count(&self) -> usize {
            self.dynamic.lock().unwrap().len()
        }
    }

    impl EvalContext for TestCtx {
        fn resolve(&self, path: &str) -> Result<ResolvedNode, EvalError> {
            self.resolve_calls.fetch_add(1, Ordering::Relaxed);
            if let Some(o) = self.objects.get(path) {
                return Ok(ResolvedNode::Object(Arc::clone(o)));
            }
            if let Some(m) = self.metas.get(path) {
                return Ok(ResolvedNode::Meta(m.clone()));
            }
            Err(EvalError::Resolve(path.to_string()))
        }

        fn cache_get(&self, key: ContentHash) -> Option<CachedEval> {
            self.cache.lock().unwrap().get(&key).cloned()
        }

        fn cache_put(&self, key: ContentHash, module: &Module, deps: &Arc<BTreeSet<String>>) {
            self.cache.lock().unwrap().insert(
                key,
                CachedEval {
                    module: module.clone(),
                    deps: Arc::clone(deps),
                },
            );
        }

        fn register_dynamic_impl(
            &self,
            key: ContentHash,
            module: &Module,
        ) -> Result<u32, EvalError> {
            let mut dynamic = self.dynamic.lock().unwrap();
            if let Some(i) = dynamic.iter().position(|(k, _)| *k == key) {
                return Ok(i as u32);
            }
            dynamic.push((key, module.clone()));
            Ok(dynamic.len() as u32 - 1)
        }
    }

    pub(crate) fn ls_world() -> TestCtx {
        let mut ctx = TestCtx::default();
        ctx.add_asm(
            "/obj/ls.o",
            ".text\n.global _start\n_start: call _puts\n sys 0\n",
        );
        ctx.add_asm(
            "/libc/stdio.o",
            ".text\n.global _puts\n_puts: li r1, 0\n ret\n",
        );
        ctx
    }

    #[test]
    fn simple_merge_evaluates() {
        let ctx = ls_world();
        let bp = Blueprint::parse("(merge /obj/ls.o /libc/stdio.o)").unwrap();
        let out = eval_blueprint(&bp, &ctx).unwrap();
        assert!(out.module.free_references().unwrap().is_empty());
        assert!(out.libraries.is_empty());
        assert_eq!(out.stats.merges, 1);
        assert_eq!(out.stats.leaves, 2);
    }

    #[test]
    fn second_evaluation_hits_cache() {
        let ctx = ls_world();
        let bp = Blueprint::parse("(merge /obj/ls.o /libc/stdio.o)").unwrap();
        let first = eval_blueprint(&bp, &ctx).unwrap();
        assert_eq!(first.stats.cache_hits, 0);
        let second = eval_blueprint(&bp, &ctx).unwrap();
        assert_eq!(second.stats.cache_hits, 1, "root served from cache");
        assert_eq!(second.stats.merges, 0, "no merge redone");
        assert_eq!(first.module.content_hash(), second.module.content_hash());
    }

    #[test]
    fn library_class_meta_object_becomes_library_use() {
        let mut ctx = ls_world();
        ctx.add_meta(
            "/lib/libc",
            r#"
            (constraint-list "T" 0x1000000 "D" 0x41000000)
            (merge /libc/stdio.o)
            "#,
        );
        let bp = Blueprint::parse("(merge /obj/ls.o /lib/libc)").unwrap();
        let out = eval_blueprint(&bp, &ctx).unwrap();
        // The client still references _puts (unbound) — the server binds
        // it against the placed library.
        assert!(out
            .module
            .free_references()
            .unwrap()
            .contains(&"_puts".to_string()));
        assert_eq!(out.libraries.len(), 1);
        let lib = &out.libraries[0];
        assert_eq!(lib.name, "/lib/libc");
        assert_eq!(lib.constraints[0], (RegionClass::Text, 0x100_0000));
        assert!(lib.module.exports().unwrap().contains(&"_puts".to_string()));
    }

    #[test]
    fn explicit_constrained_specialization_in_merge() {
        let ctx = ls_world();
        let bp = Blueprint::parse(
            r#"(merge /obj/ls.o
                 (specialize "lib-constrained" (list "T" 0x2000000) /libc/stdio.o))"#,
        )
        .unwrap();
        let out = eval_blueprint(&bp, &ctx).unwrap();
        assert_eq!(out.libraries.len(), 1);
        assert_eq!(
            out.libraries[0].constraints,
            vec![(RegionClass::Text, 0x200_0000)]
        );
    }

    #[test]
    fn dynamic_specialization_generates_stubs() {
        let ctx = ls_world();
        let bp = Blueprint::parse(r#"(merge /obj/ls.o (specialize "lib-dynamic" /libc/stdio.o))"#)
            .unwrap();
        let out = eval_blueprint(&bp, &ctx).unwrap();
        // Stubs define _puts, so the client is fully bound statically.
        assert!(out.module.free_references().unwrap().is_empty());
        assert!(
            out.libraries.is_empty(),
            "dynamic libs are not placement requests"
        );
        assert_eq!(ctx.dynamic_count(), 1, "implementation registered");
        // Re-evaluating registers nothing new.
        let _ = eval_blueprint(&bp, &ctx).unwrap();
        assert_eq!(ctx.dynamic_count(), 1);
    }

    #[test]
    fn figure2_blueprint_evaluates() {
        let mut ctx = TestCtx::default();
        ctx.add_asm(
            "/bin/ls.o",
            ".text\n.global _start\n_start: call _malloc\n sys 0\n",
        );
        ctx.add_asm(
            "/lib/libc.o",
            ".text\n.global _malloc\n_malloc: li r1, 0x1000\n ret\n",
        );
        ctx.add_asm(
            "/lib/test_malloc.o",
            r#"
            .text
            .global _malloc
            .extern _REAL_malloc
_malloc:    mov r8, r15
            call _REAL_malloc
            mov r15, r8
            ret
            "#,
        );
        let bp = Blueprint::parse(
            r#"
            (hide "_REAL_malloc"
              (merge
                (restrict "^_malloc$"
                  (copy_as "^_malloc$" "_REAL_malloc"
                    (merge /bin/ls.o /lib/libc.o)))
                /lib/test_malloc.o))
            "#,
        )
        .unwrap();
        let out = eval_blueprint(&bp, &ctx).unwrap();
        let exports = out.module.exports().unwrap();
        assert!(exports.contains(&"_malloc".to_string()));
        assert!(!exports.contains(&"_REAL_malloc".to_string()));
        assert!(out.module.free_references().unwrap().is_empty());
    }

    #[test]
    fn figure3_blueprint_evaluates() {
        let mut ctx = TestCtx::default();
        ctx.add_asm(
            "/lib/lib-with-problems",
            r#"
            .text
            .global _entry
_entry:     call _undefined_routine
            li r2, _undef_var
            ld r1, [r2]
            ret
            "#,
        );
        ctx.add_asm("/lib/abort.o", ".text\n.global _abort\n_abort: halt\n");
        let bp = Blueprint::parse(
            r#"
            (merge
              (source "c" "int undef_var = 0;\n")
              (rename "^_undefined_routine$" "_abort" /lib/lib-with-problems)
              /lib/abort.o)
            "#,
        )
        .unwrap();
        let out = eval_blueprint(&bp, &ctx).unwrap();
        assert!(out.module.free_references().unwrap().is_empty());
        assert_eq!(out.stats.source_compiles, 1);
    }

    #[test]
    fn meta_object_cycles_detected() {
        let mut ctx = TestCtx::default();
        ctx.add_meta("/meta/a", "(merge /meta/b /meta/b)");
        ctx.add_meta("/meta/b", "(merge /meta/a /meta/a)");
        let bp = Blueprint::parse("(merge /meta/a /meta/a)").unwrap();
        let err = eval_blueprint(&bp, &ctx).unwrap_err();
        assert!(matches!(err, EvalError::Cycle(_)));
    }

    #[test]
    fn two_meta_cycle_reports_full_path_chain() {
        let mut ctx = TestCtx::default();
        ctx.add_meta("/meta/a", "(merge /meta/b /meta/b)");
        ctx.add_meta("/meta/b", "(merge /meta/a /meta/a)");
        let bp = Blueprint::parse("(merge /meta/a /meta/a)").unwrap();
        let Err(EvalError::Cycle(chain)) = eval_blueprint(&bp, &ctx) else {
            panic!("expected cycle error");
        };
        // The whole chain, not just the innermost node: entered through
        // /meta/a, descended into /meta/b, re-entered /meta/a.
        assert!(
            chain.starts_with("/meta/a -> /meta/b -> /meta/a"),
            "got {chain}"
        );
    }

    #[test]
    fn unresolved_path_errors() {
        let ctx = TestCtx::default();
        let bp = Blueprint::parse("(merge /nope /alsono)").unwrap();
        assert!(matches!(
            eval_blueprint(&bp, &ctx),
            Err(EvalError::Resolve(_))
        ));
    }

    #[test]
    fn resolve_and_cycle_errors_name_blueprint_location() {
        let ctx = ls_world();
        let src = "(merge /obj/ls.o /nope)";
        let bp = Blueprint::parse(src).unwrap();
        let Err(EvalError::Resolve(msg)) = eval_blueprint(&bp, &ctx) else {
            panic!("expected resolve error");
        };
        let leaf = src.find("/nope").unwrap();
        assert_eq!(msg, format!("/nope (at bytes {}..{})", leaf, leaf + 5));

        let mut ctx = TestCtx::default();
        ctx.add_meta("/meta/a", "(merge /meta/a /meta/a)");
        let bp = Blueprint::parse("(merge /meta/a /meta/a)").unwrap();
        let Err(EvalError::Cycle(msg)) = eval_blueprint(&bp, &ctx) else {
            panic!("expected cycle error");
        };
        assert!(msg.contains("/meta/a (at bytes "), "got {msg}");
    }

    #[test]
    fn merge_of_only_libraries_rejected() {
        let mut ctx = ls_world();
        ctx.add_meta(
            "/lib/libc",
            "(constraint-list \"T\" 0x1000000)\n(merge /libc/stdio.o)",
        );
        let bp = Blueprint::parse("(merge /lib/libc)").unwrap();
        assert!(matches!(
            eval_blueprint(&bp, &ctx),
            Err(EvalError::Misplaced(_))
        ));
    }

    #[test]
    fn cached_subtree_still_declares_libraries() {
        let mut ctx = ls_world();
        ctx.add_meta(
            "/lib/libc",
            "(constraint-list \"T\" 0x1000000)\n(merge /libc/stdio.o)",
        );
        let bp = Blueprint::parse("(merge /obj/ls.o /lib/libc)").unwrap();
        let first = eval_blueprint(&bp, &ctx).unwrap();
        let second = eval_blueprint(&bp, &ctx).unwrap();
        assert_eq!(first.libraries.len(), 1);
        assert_eq!(second.libraries.len(), 1, "library uses survive caching");
        assert_eq!(first.libraries[0].key, second.libraries[0].key);
    }
}
