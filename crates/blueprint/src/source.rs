//! The `source` operator: fragments from source text.
//!
//! §3.3 lists `Source: produces a fragment from a C, C++, or assembly
//! language source object`, and §6 shows it filling in "missing variable
//! or routine definitions with default values" (Figure 3's
//! `int undef_var = 0;`). We support two languages:
//!
//! * `"asm"` — U32 assembly, passed straight to the assembler;
//! * `"c"` — a deliberately small C subset sufficient for default values
//!   and wrapper routines: global `int` definitions, zero/one-argument
//!   `int` functions, assignments, calls, `return`, and `+`/`-`
//!   arithmetic. C names are mangled with a leading underscore, matching
//!   the paper's symbol style (`malloc` ⇒ `_malloc`).

use std::fmt;

use omos_isa::assemble;
use omos_obj::ObjectFile;

/// A source-compilation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceError {
    /// Description.
    pub msg: String,
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "source error: {}", self.msg)
    }
}

impl std::error::Error for SourceError {}

fn serr<T>(msg: impl Into<String>) -> Result<T, SourceError> {
    Err(SourceError { msg: msg.into() })
}

/// Compiles `code` in `lang` (`"c"` or `"asm"`) into an object file.
pub fn compile_source(lang: &str, code: &str, name: &str) -> Result<ObjectFile, SourceError> {
    match lang {
        "asm" | "s" => assemble(name, code).map_err(|e| SourceError { msg: e.to_string() }),
        "c" => {
            let asm = compile_c(code)?;
            assemble(name, &asm).map_err(|e| SourceError {
                msg: format!("internal: {e}"),
            })
        }
        other => serr(format!("unsupported source language `{other}`")),
    }
}

// --- The mini-C compiler. ---------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Num(i64),
    Punct(char),
    KwInt,
    KwReturn,
}

fn lex(src: &str) -> Result<Vec<Tok>, SourceError> {
    let mut out = Vec::new();
    let mut chars = src.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
        } else if c.is_ascii_alphabetic() || c == '_' {
            let mut id = String::new();
            while let Some(&c) = chars.peek() {
                if c.is_ascii_alphanumeric() || c == '_' {
                    id.push(c);
                    chars.next();
                } else {
                    break;
                }
            }
            out.push(match id.as_str() {
                "int" => Tok::KwInt,
                "return" => Tok::KwReturn,
                _ => Tok::Ident(id),
            });
        } else if c.is_ascii_digit() {
            let mut n = String::new();
            while let Some(&c) = chars.peek() {
                if c.is_ascii_alphanumeric() {
                    n.push(c);
                    chars.next();
                } else {
                    break;
                }
            }
            let v = if let Some(h) = n.strip_prefix("0x").or_else(|| n.strip_prefix("0X")) {
                i64::from_str_radix(h, 16)
            } else {
                n.parse()
            }
            .map_err(|_| SourceError {
                msg: format!("bad number `{n}`"),
            })?;
            out.push(Tok::Num(v));
        } else if "(){};=+-,".contains(c) {
            chars.next();
            out.push(Tok::Punct(c));
        } else if c == '/' {
            chars.next();
            if chars.peek() == Some(&'/') {
                for c in chars.by_ref() {
                    if c == '\n' {
                        break;
                    }
                }
            } else {
                return serr("unexpected `/`");
            }
        } else {
            return serr(format!("unexpected character `{c}`"));
        }
    }
    Ok(out)
}

#[derive(Debug)]
enum Expr {
    Num(i64),
    Var(String),
    Call(String, Option<Box<Expr>>),
    Bin(char, Box<Expr>, Box<Expr>),
}

#[derive(Debug)]
enum Stmt {
    Return(Expr),
    Assign(String, Expr),
    Expr(Expr),
}

#[derive(Debug)]
enum Decl {
    Var {
        name: String,
        init: i64,
    },
    Func {
        name: String,
        param: Option<String>,
        body: Vec<Stmt>,
    },
}

struct CParser {
    toks: Vec<Tok>,
    pos: usize,
}

impl CParser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_punct(&mut self, c: char) -> Result<(), SourceError> {
        match self.bump() {
            Some(Tok::Punct(p)) if p == c => Ok(()),
            other => serr(format!("expected `{c}`, found {other:?}")),
        }
    }

    fn ident(&mut self) -> Result<String, SourceError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            other => serr(format!("expected identifier, found {other:?}")),
        }
    }

    fn decls(&mut self) -> Result<Vec<Decl>, SourceError> {
        let mut out = Vec::new();
        while self.peek().is_some() {
            match self.bump() {
                Some(Tok::KwInt) => {}
                other => return serr(format!("expected `int`, found {other:?}")),
            }
            let name = self.ident()?;
            match self.peek() {
                Some(Tok::Punct('(')) => {
                    self.bump();
                    let mut param = None;
                    if self.peek() == Some(&Tok::KwInt) {
                        self.bump();
                        param = Some(self.ident()?);
                    }
                    self.expect_punct(')')?;
                    self.expect_punct('{')?;
                    let mut body = Vec::new();
                    while self.peek() != Some(&Tok::Punct('}')) {
                        body.push(self.stmt()?);
                    }
                    self.expect_punct('}')?;
                    out.push(Decl::Func { name, param, body });
                }
                Some(Tok::Punct('=')) => {
                    self.bump();
                    let neg = if self.peek() == Some(&Tok::Punct('-')) {
                        self.bump();
                        true
                    } else {
                        false
                    };
                    let v = match self.bump() {
                        Some(Tok::Num(n)) => n,
                        other => {
                            return serr(format!(
                                "global initializer must be a constant, found {other:?}"
                            ))
                        }
                    };
                    self.expect_punct(';')?;
                    out.push(Decl::Var {
                        name,
                        init: if neg { -v } else { v },
                    });
                }
                Some(Tok::Punct(';')) => {
                    self.bump();
                    out.push(Decl::Var { name, init: 0 });
                }
                other => return serr(format!("unexpected token after name: {other:?}")),
            }
        }
        Ok(out)
    }

    fn stmt(&mut self) -> Result<Stmt, SourceError> {
        if self.peek() == Some(&Tok::KwReturn) {
            self.bump();
            let e = self.expr()?;
            self.expect_punct(';')?;
            return Ok(Stmt::Return(e));
        }
        // Assignment or expression statement.
        if let (Some(Tok::Ident(name)), Some(Tok::Punct('='))) =
            (self.toks.get(self.pos), self.toks.get(self.pos + 1))
        {
            let name = name.clone();
            self.pos += 2;
            let e = self.expr()?;
            self.expect_punct(';')?;
            return Ok(Stmt::Assign(name, e));
        }
        let e = self.expr()?;
        self.expect_punct(';')?;
        Ok(Stmt::Expr(e))
    }

    fn expr(&mut self) -> Result<Expr, SourceError> {
        let mut lhs = self.atom()?;
        while let Some(Tok::Punct(op @ ('+' | '-'))) = self.peek() {
            let op = *op;
            self.bump();
            let rhs = self.atom()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn atom(&mut self) -> Result<Expr, SourceError> {
        match self.bump() {
            Some(Tok::Num(n)) => Ok(Expr::Num(n)),
            Some(Tok::Punct('-')) => match self.bump() {
                Some(Tok::Num(n)) => Ok(Expr::Num(-n)),
                other => serr(format!("expected number after `-`, found {other:?}")),
            },
            Some(Tok::Punct('(')) => {
                let e = self.expr()?;
                self.expect_punct(')')?;
                Ok(e)
            }
            Some(Tok::Ident(name)) => {
                if self.peek() == Some(&Tok::Punct('(')) {
                    self.bump();
                    let arg = if self.peek() == Some(&Tok::Punct(')')) {
                        None
                    } else {
                        Some(Box::new(self.expr()?))
                    };
                    self.expect_punct(')')?;
                    Ok(Expr::Call(name, arg))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => serr(format!("unexpected token in expression: {other:?}")),
        }
    }
}

struct Codegen {
    asm: String,
    /// Words currently pushed for expression temporaries; parameter
    /// frame-slot addressing must account for them.
    depth: u32,
}

impl Codegen {
    fn line(&mut self, s: &str) {
        self.asm.push_str("    ");
        self.asm.push_str(s);
        self.asm.push('\n');
    }

    /// Evaluates `e` into r1. Uses the stack for temporaries so calls
    /// inside compound expressions are safe; `self.depth` tracks pushed
    /// words so the parameter frame slot stays addressable.
    fn expr(&mut self, e: &Expr, param: Option<&str>) -> Result<(), SourceError> {
        match e {
            Expr::Num(n) => self.line(&format!("li r1, {n}")),
            Expr::Var(name) => {
                if param == Some(name.as_str()) {
                    // The parameter was saved to the frame in the prologue,
                    // above any live expression temporaries.
                    let off = 4 + self.depth * 4;
                    self.line(&format!("ld r1, [r14+{off}]"));
                } else {
                    self.line(&format!("li r10, _{name}"));
                    self.line("ld r1, [r10]");
                }
            }
            Expr::Call(name, arg) => {
                if let Some(a) = arg {
                    self.expr(a, param)?;
                }
                self.line(&format!("call _{name}"));
            }
            Expr::Bin(op, a, b) => {
                self.expr(a, param)?;
                self.line("addi r14, r14, -4");
                self.line("st r1, [r14]");
                self.depth += 1;
                self.expr(b, param)?;
                self.line("ld r10, [r14]");
                self.line("addi r14, r14, 4");
                self.depth -= 1;
                match op {
                    '+' => self.line("add r1, r10, r1"),
                    '-' => self.line("sub r1, r10, r1"),
                    other => return serr(format!("bad operator {other}")),
                }
            }
        }
        Ok(())
    }

    fn epilogue(&mut self) {
        self.line("ld r15, [r14]");
        self.line("addi r14, r14, 8");
        self.line("ret");
    }
}

/// Compiles the mini-C subset to U32 assembly text.
pub fn compile_c(src: &str) -> Result<String, SourceError> {
    let toks = lex(src)?;
    let decls = CParser { toks, pos: 0 }.decls()?;
    let mut cg = Codegen {
        asm: String::new(),
        depth: 0,
    };
    let mut data = String::new();

    cg.asm.push_str(".text\n");
    for d in &decls {
        match d {
            Decl::Var { name, init } => {
                data.push_str(&format!(".global _{name}\n_{name}: .word {init}\n"));
            }
            Decl::Func { name, param, body } => {
                cg.asm.push_str(&format!(".global _{name}\n_{name}:\n"));
                // Frame: [r14] = saved lr, [r14+4] = saved parameter.
                cg.line("addi r14, r14, -8");
                cg.line("st r15, [r14]");
                if param.is_some() {
                    cg.line("st r1, [r14+4]");
                }
                let mut returned = false;
                for s in body {
                    match s {
                        Stmt::Return(e) => {
                            cg.expr(e, param.as_deref())?;
                            cg.epilogue();
                            returned = true;
                        }
                        Stmt::Assign(name, e) => {
                            cg.expr(e, param.as_deref())?;
                            cg.line(&format!("li r10, _{name}"));
                            cg.line("st r1, [r10]");
                        }
                        Stmt::Expr(e) => cg.expr(e, param.as_deref())?,
                    }
                }
                if !returned {
                    cg.line("li r1, 0");
                    cg.epilogue();
                }
            }
        }
    }
    if !data.is_empty() {
        cg.asm.push_str(".data\n");
        cg.asm.push_str(&data);
    }
    Ok(cg.asm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use omos_isa::vm::{ExitOnly, FlatMemory, Vm};
    use omos_isa::StopReason;
    use omos_link::{link, LinkOptions};

    fn run_c(main_body: &str, extra: &str) -> u32 {
        let c = compile_source(
            "c",
            &format!("{extra}\nint cmain() {{ {main_body} }}"),
            "t.o",
        )
        .expect("compiles");
        let start = omos_isa::assemble(
            "start.o",
            ".text\n.global _start\n_start: call _cmain\n sys 0\n",
        )
        .unwrap();
        let out = link(&[start, c], &LinkOptions::program("t")).expect("links");
        let lo = out.image.segments.iter().map(|s| s.vaddr).min().unwrap();
        let hi = out.image.segments.iter().map(|s| s.end()).max().unwrap();
        let mut mem = FlatMemory::new(lo, (hi - u64::from(lo)) as usize + 65536);
        for s in &out.image.segments {
            mem.load(s.vaddr, &s.bytes);
        }
        let mut vm = Vm::new(out.image.entry.unwrap());
        vm.regs[14] = hi as u32 + 65000;
        match vm.run(&mut mem, &mut ExitOnly, 1_000_000) {
            StopReason::Exited(code) => code,
            other => panic!("program did not exit cleanly: {other:?}"),
        }
    }

    #[test]
    fn figure3_default_value() {
        let obj = compile_source("c", "int undef_var = 0;\n", "defaults.o").unwrap();
        let s = obj.symbols.get("_undef_var").expect("exported");
        assert!(s.def.is_definition());
    }

    #[test]
    fn constants_and_arithmetic() {
        assert_eq!(run_c("return 40 + 2;", ""), 42);
        assert_eq!(run_c("return 50 - 8;", ""), 42);
        assert_eq!(run_c("return 1 + 2 + 3 - 4;", ""), 2);
        assert_eq!(run_c("return (10 - 2) - 3;", ""), 5);
    }

    #[test]
    fn globals_read_and_write() {
        assert_eq!(
            run_c(
                "counter = counter + 5; return counter;",
                "int counter = 10;"
            ),
            15
        );
        assert_eq!(run_c("return uninit;", "int uninit;"), 0);
        assert_eq!(run_c("return neg;", "int neg = -7;") as i32, -7);
    }

    #[test]
    fn calls_with_and_without_args() {
        let extra = "int seven() { return 7; }\nint double_it(int x) { return x + x; }";
        assert_eq!(run_c("return seven();", extra), 7);
        assert_eq!(run_c("return double_it(21);", extra), 42);
        assert_eq!(run_c("return double_it(seven()) + 1;", extra), 15);
    }

    #[test]
    fn call_inside_compound_expression_is_safe() {
        // The stack discipline must protect temporaries across the call.
        let extra = "int five() { return 5; }";
        assert_eq!(run_c("return 100 - five();", extra), 95);
        assert_eq!(run_c("return five() + five() + five();", extra), 15);
    }

    #[test]
    fn undefined_references_stay_symbolic() {
        // A wrapper calling an undefined routine: the call becomes a
        // relocation to `_other`, resolvable by a later merge.
        let obj = compile_source("c", "int wrapper() { return other(); }", "w.o").unwrap();
        assert!(obj.relocs.iter().any(|r| r.symbol == "_other"));
    }

    #[test]
    fn asm_passthrough() {
        let obj = compile_source("asm", ".text\n.global _f\n_f: ret\n", "f.o").unwrap();
        assert!(obj.symbols.get("_f").is_some());
    }

    #[test]
    fn errors_reported() {
        assert!(compile_source("fortran", "x", "t.o").is_err());
        assert!(compile_source("c", "float x;", "t.o").is_err());
        assert!(compile_source("c", "int f() { return $; }", "t.o").is_err());
        assert!(compile_source("c", "int x = y;", "t.o").is_err());
        assert!(compile_source("c", "int f() { return 1 }", "t.o").is_err());
    }

    #[test]
    fn implicit_return_zero() {
        assert_eq!(run_c("g = 3;", "int g;"), 0);
    }
}
