//! The m-graph: blueprints parsed into executable operation graphs.

use std::collections::HashMap;
use std::fmt;

use omos_constraint::RegionClass;
use omos_obj::view::RenameTarget;
use omos_obj::{ContentHash, Regex};

use crate::sexpr::{parse_sexprs, Sexpr, Span};

/// A blueprint syntax/shape error, pointing at the offending form when
/// the source location is known.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlueprintError {
    /// Description.
    pub msg: String,
    /// Byte span of the offending form in the blueprint source.
    pub span: Option<Span>,
}

impl BlueprintError {
    /// An error without location information.
    pub fn new(msg: impl Into<String>) -> BlueprintError {
        BlueprintError {
            msg: msg.into(),
            span: None,
        }
    }

    /// Attaches a source span.
    #[must_use]
    pub fn at(mut self, span: Span) -> BlueprintError {
        self.span = Some(span);
        self
    }
}

impl fmt::Display for BlueprintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.span {
            Some(span) => write!(f, "blueprint error at {span}: {}", self.msg),
            None => write!(f, "blueprint error: {}", self.msg),
        }
    }
}

impl std::error::Error for BlueprintError {}

fn berr<T>(msg: impl Into<String>) -> Result<T, BlueprintError> {
    Err(BlueprintError::new(msg))
}

fn berr_at<T>(msg: impl Into<String>, span: Span) -> Result<T, BlueprintError> {
    Err(BlueprintError::new(msg).at(span))
}

/// The path of one m-graph node from the root: the sequence of operand
/// indices taken to reach it. The root is the empty path; `merge`'s
/// operands are children `0..n`; `override`'s are `0` and `1`; every
/// unary operator's operand is child `0`.
pub type NodePath = Vec<u32>;

/// Source spans for m-graph nodes, keyed by [`NodePath`].
///
/// This is *location metadata*, deliberately excluded from equality (two
/// structurally identical blueprints compare equal regardless of
/// layout) and from [`Blueprint::hash`] (cache keys must not depend on
/// whitespace).
#[derive(Debug, Clone, Default, Eq)]
pub struct SpanMap {
    map: HashMap<NodePath, Span>,
}

impl PartialEq for SpanMap {
    fn eq(&self, _other: &SpanMap) -> bool {
        true // metadata: never participates in structural equality
    }
}

impl SpanMap {
    /// Records the span of the node at `path`.
    pub fn insert(&mut self, path: NodePath, span: Span) {
        self.map.insert(path, span);
    }

    /// The span of the node at `path`, if recorded.
    #[must_use]
    pub fn get(&self, path: &[u32]) -> Option<Span> {
        self.map.get(path).copied()
    }

    /// Number of nodes with recorded spans.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether any spans are recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Specialization kinds (§3.4, §4.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecKind {
    /// `lib-static`: link the operand directly into the client.
    Static,
    /// `lib-constrained`: a self-contained shared library whose segments
    /// prefer the given addresses.
    Constrained(Vec<(RegionClass, u64)>),
    /// `lib-dynamic`: replace the operand with generated partial-image
    /// stubs; the implementation loads on first call.
    Dynamic,
    /// `lib-dynamic-impl`: the loadable implementation of a dynamic
    /// library (what the stubs fetch).
    DynamicImpl,
}

/// One node of the m-graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MNode {
    /// A namespace path: an object file or another meta-object.
    Leaf(String),
    /// `merge`: n-ary strict merge.
    Merge(Vec<MNode>),
    /// `override`: conflicts resolve in favor of the second operand.
    Override(Box<MNode>, Box<MNode>),
    /// `rename` (and the ref/def-only variants).
    Rename {
        /// Symbol selector.
        pattern: String,
        /// Replacement for the matched span.
        replacement: String,
        /// Which roles to rename.
        target: RenameTarget,
        /// Operand.
        operand: Box<MNode>,
    },
    /// `hide`.
    Hide {
        /// Symbol selector.
        pattern: String,
        /// Operand.
        operand: Box<MNode>,
    },
    /// `show`.
    Show {
        /// Symbol selector.
        pattern: String,
        /// Operand.
        operand: Box<MNode>,
    },
    /// `restrict`.
    Restrict {
        /// Symbol selector.
        pattern: String,
        /// Operand.
        operand: Box<MNode>,
    },
    /// `project`.
    Project {
        /// Symbol selector.
        pattern: String,
        /// Operand.
        operand: Box<MNode>,
    },
    /// `copy_as`.
    CopyAs {
        /// Symbol selector.
        pattern: String,
        /// Replacement producing the copy's name.
        replacement: String,
        /// Operand.
        operand: Box<MNode>,
    },
    /// `freeze`.
    Freeze {
        /// Symbol selector.
        pattern: String,
        /// Operand.
        operand: Box<MNode>,
    },
    /// `initializers`.
    Initializers(Box<MNode>),
    /// `source`: compile source text into a fragment.
    Source {
        /// Language: `"c"` or `"asm"`.
        lang: String,
        /// Source text.
        code: String,
    },
    /// `specialize`.
    Specialize {
        /// The specialization to apply.
        kind: SpecKind,
        /// Operand.
        operand: Box<MNode>,
    },
}

impl MNode {
    /// Structural hash — the cache key for evaluated sub-graphs.
    #[must_use]
    pub fn hash(&self) -> ContentHash {
        self.hash_into(ContentHash::EMPTY)
    }

    fn hash_into(&self, h: ContentHash) -> ContentHash {
        match self {
            MNode::Leaf(p) => h.with_str("leaf").with_str(p),
            MNode::Merge(items) => {
                let mut h = h.with_str("merge").with_u64(items.len() as u64);
                for i in items {
                    h = i.hash_into(h);
                }
                h
            }
            MNode::Override(a, b) => b.hash_into(a.hash_into(h.with_str("override"))),
            MNode::Rename {
                pattern,
                replacement,
                target,
                operand,
            } => operand.hash_into(
                h.with_str("rename")
                    .with_str(pattern)
                    .with_str(replacement)
                    .with_u64(match target {
                        RenameTarget::Defs => 0,
                        RenameTarget::Refs => 1,
                        RenameTarget::Both => 2,
                    }),
            ),
            MNode::Hide { pattern, operand } => {
                operand.hash_into(h.with_str("hide").with_str(pattern))
            }
            MNode::Show { pattern, operand } => {
                operand.hash_into(h.with_str("show").with_str(pattern))
            }
            MNode::Restrict { pattern, operand } => {
                operand.hash_into(h.with_str("restrict").with_str(pattern))
            }
            MNode::Project { pattern, operand } => {
                operand.hash_into(h.with_str("project").with_str(pattern))
            }
            MNode::CopyAs {
                pattern,
                replacement,
                operand,
            } => operand.hash_into(
                h.with_str("copy-as")
                    .with_str(pattern)
                    .with_str(replacement),
            ),
            MNode::Freeze { pattern, operand } => {
                operand.hash_into(h.with_str("freeze").with_str(pattern))
            }
            MNode::Initializers(o) => o.hash_into(h.with_str("initializers")),
            MNode::Source { lang, code } => h.with_str("source").with_str(lang).with_str(code),
            MNode::Specialize { kind, operand } => {
                let h = match kind {
                    SpecKind::Static => h.with_str("spec-static"),
                    SpecKind::Dynamic => h.with_str("spec-dynamic"),
                    SpecKind::DynamicImpl => h.with_str("spec-dynamic-impl"),
                    SpecKind::Constrained(cs) => {
                        let mut h = h.with_str("spec-constrained");
                        for (c, a) in cs {
                            h = h
                                .with_str(match c {
                                    RegionClass::Text => "T",
                                    RegionClass::Data => "D",
                                    RegionClass::PolicyData => "P",
                                })
                                .with_u64(*a);
                        }
                        h
                    }
                };
                operand.hash_into(h)
            }
        }
    }

    /// Parses one m-graph expression from an s-expression.
    pub fn from_sexpr(s: &Sexpr) -> Result<MNode, BlueprintError> {
        let mut spans = SpanMap::default();
        MNode::from_sexpr_spanned(s, Vec::new(), &mut spans)
    }

    /// Parses one m-graph expression, recording each node's source span
    /// into `spans` under its [`NodePath`] (`path` is this node's path).
    pub fn from_sexpr_spanned(
        s: &Sexpr,
        path: NodePath,
        spans: &mut SpanMap,
    ) -> Result<MNode, BlueprintError> {
        spans.insert(path.clone(), s.span);
        let child = |i: u32| -> NodePath {
            let mut p = path.clone();
            p.push(i);
            p
        };
        if let Some(p) = s.as_sym() {
            return Ok(MNode::Leaf(p.to_string()));
        }
        let Some(items) = s.as_list() else {
            return berr_at(
                format!("expected an m-graph expression, found `{s}`"),
                s.span,
            );
        };
        let Some(op) = items.first().and_then(Sexpr::as_sym) else {
            return berr_at("operation list must start with an operator symbol", s.span);
        };
        let args = &items[1..];
        match op {
            "merge" => {
                if args.is_empty() {
                    return berr_at("merge needs at least one operand", s.span);
                }
                Ok(MNode::Merge(
                    args.iter()
                        .enumerate()
                        .map(|(i, a)| MNode::from_sexpr_spanned(a, child(i as u32), spans))
                        .collect::<Result<_, _>>()?,
                ))
            }
            "override" => {
                if args.len() != 2 {
                    return berr_at("override needs exactly two operands", s.span);
                }
                Ok(MNode::Override(
                    Box::new(MNode::from_sexpr_spanned(&args[0], child(0), spans)?),
                    Box::new(MNode::from_sexpr_spanned(&args[1], child(1), spans)?),
                ))
            }
            "rename" | "rename-refs" | "rename-defs" => {
                let (pattern, replacement, operand) = str_str_node(op, s, args, &path, spans)?;
                let target = match op {
                    "rename-refs" => RenameTarget::Refs,
                    "rename-defs" => RenameTarget::Defs,
                    _ => RenameTarget::Both,
                };
                Ok(MNode::Rename {
                    pattern,
                    replacement,
                    target,
                    operand,
                })
            }
            "hide" | "show" | "restrict" | "project" | "freeze" => {
                let (pattern, operand) = str_node(op, s, args, &path, spans)?;
                Ok(match op {
                    "hide" => MNode::Hide { pattern, operand },
                    "show" => MNode::Show { pattern, operand },
                    "restrict" => MNode::Restrict { pattern, operand },
                    "project" => MNode::Project { pattern, operand },
                    _ => MNode::Freeze { pattern, operand },
                })
            }
            "copy_as" | "copy-as" => {
                let (pattern, replacement, operand) = str_str_node(op, s, args, &path, spans)?;
                Ok(MNode::CopyAs {
                    pattern,
                    replacement,
                    operand,
                })
            }
            "initializers" => {
                if args.len() != 1 {
                    return berr_at("initializers needs exactly one operand", s.span);
                }
                Ok(MNode::Initializers(Box::new(MNode::from_sexpr_spanned(
                    &args[0],
                    child(0),
                    spans,
                )?)))
            }
            "source" => {
                let lang = args.first().and_then(Sexpr::as_str).ok_or_else(|| {
                    BlueprintError::new("source needs a language string").at(s.span)
                })?;
                let code = args
                    .get(1)
                    .and_then(Sexpr::as_str)
                    .ok_or_else(|| BlueprintError::new("source needs a code string").at(s.span))?;
                Ok(MNode::Source {
                    lang: lang.to_string(),
                    code: code.to_string(),
                })
            }
            "specialize" => parse_specialize(s, args, &path, spans),
            "constrain" => {
                // (constrain "T" 0x1000000 m): sugar for a
                // single-region constrained specialization.
                if args.len() != 3 {
                    return berr_at("constrain needs TAG ADDR OPERAND", s.span);
                }
                let cs = parse_constraint_pairs(&args[..2])?;
                Ok(MNode::Specialize {
                    kind: SpecKind::Constrained(cs),
                    operand: Box::new(MNode::from_sexpr_spanned(&args[2], child(0), spans)?),
                })
            }
            other => berr_at(format!("unknown operator `{other}`"), s.span),
        }
    }
}

fn str_node(
    op: &str,
    form: &Sexpr,
    args: &[Sexpr],
    path: &[u32],
    spans: &mut SpanMap,
) -> Result<(String, Box<MNode>), BlueprintError> {
    if args.len() != 2 {
        return berr_at(format!("{op} needs PATTERN OPERAND"), form.span);
    }
    let pattern = args[0].as_str().ok_or_else(|| {
        BlueprintError::new(format!("{op}: pattern must be a string")).at(form.span)
    })?;
    let mut child = path.to_vec();
    child.push(0);
    Ok((
        pattern.to_string(),
        Box::new(MNode::from_sexpr_spanned(&args[1], child, spans)?),
    ))
}

fn str_str_node(
    op: &str,
    form: &Sexpr,
    args: &[Sexpr],
    path: &[u32],
    spans: &mut SpanMap,
) -> Result<(String, String, Box<MNode>), BlueprintError> {
    if args.len() != 3 {
        return berr_at(format!("{op} needs PATTERN REPLACEMENT OPERAND"), form.span);
    }
    let pattern = args[0].as_str().ok_or_else(|| {
        BlueprintError::new(format!("{op}: pattern must be a string")).at(form.span)
    })?;
    let replacement = args[1].as_str().ok_or_else(|| {
        BlueprintError::new(format!("{op}: replacement must be a string")).at(form.span)
    })?;
    let mut child = path.to_vec();
    child.push(0);
    Ok((
        pattern.to_string(),
        replacement.to_string(),
        Box::new(MNode::from_sexpr_spanned(&args[2], child, spans)?),
    ))
}

fn parse_specialize(
    form: &Sexpr,
    args: &[Sexpr],
    path: &[u32],
    spans: &mut SpanMap,
) -> Result<MNode, BlueprintError> {
    let kind_name = args
        .first()
        .and_then(Sexpr::as_str)
        .ok_or_else(|| BlueprintError::new("specialize needs a kind string").at(form.span))?;
    let mut child = path.to_vec();
    child.push(0);
    match kind_name {
        "lib-static" => {
            if args.len() != 2 {
                return berr_at("specialize lib-static needs one operand", form.span);
            }
            Ok(MNode::Specialize {
                kind: SpecKind::Static,
                operand: Box::new(MNode::from_sexpr_spanned(&args[1], child, spans)?),
            })
        }
        "lib-dynamic" => {
            if args.len() != 2 {
                return berr_at("specialize lib-dynamic needs one operand", form.span);
            }
            Ok(MNode::Specialize {
                kind: SpecKind::Dynamic,
                operand: Box::new(MNode::from_sexpr_spanned(&args[1], child, spans)?),
            })
        }
        "lib-dynamic-impl" => {
            if args.len() != 2 {
                return berr_at("specialize lib-dynamic-impl needs one operand", form.span);
            }
            Ok(MNode::Specialize {
                kind: SpecKind::DynamicImpl,
                operand: Box::new(MNode::from_sexpr_spanned(&args[1], child, spans)?),
            })
        }
        "lib-constrained" => {
            // (specialize "lib-constrained" (list "T" 0x1000000) /lib/libc)
            if args.len() != 3 {
                return berr_at(
                    "specialize lib-constrained needs (list ...) and an operand",
                    form.span,
                );
            }
            let list = args[1]
                .as_list()
                .filter(|l| l.first().and_then(Sexpr::as_sym) == Some("list"))
                .ok_or_else(|| {
                    BlueprintError::new("lib-constrained constraints must be a (list ...)")
                        .at(args[1].span)
                })?;
            let cs = parse_constraint_pairs(&list[1..])?;
            Ok(MNode::Specialize {
                kind: SpecKind::Constrained(cs),
                operand: Box::new(MNode::from_sexpr_spanned(&args[2], child, spans)?),
            })
        }
        other => berr_at(format!("unknown specialization `{other}`"), form.span),
    }
}

fn parse_constraint_pairs(items: &[Sexpr]) -> Result<Vec<(RegionClass, u64)>, BlueprintError> {
    if !items.len().is_multiple_of(2) {
        let span = items.first().map(|s| s.span);
        let mut e = BlueprintError::new("constraints must be TAG ADDR pairs");
        if let Some(span) = span {
            e = e.at(span);
        }
        return Err(e);
    }
    let mut out = Vec::new();
    for pair in items.chunks(2) {
        let tag = pair[0].as_str().ok_or_else(|| {
            BlueprintError::new("constraint tag must be a string").at(pair[0].span)
        })?;
        let class = RegionClass::from_tag(tag).ok_or_else(|| {
            BlueprintError::new(format!("unknown constraint tag `{tag}`")).at(pair[0].span)
        })?;
        let addr = pair[1].as_num().ok_or_else(|| {
            BlueprintError::new("constraint address must be a number").at(pair[1].span)
        })?;
        out.push((class, addr as u64));
    }
    Ok(out)
}

/// The kinds of per-link policy a blueprint can attach (`policy` forms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PolicyKind {
    /// Linking fails (hard error) when the program can reach a matching
    /// symbol.
    Deny,
    /// Matching program-defined symbols are wrapped behind interposition
    /// trampolines (the generalized §6 figure).
    Trampoline,
    /// Like `Trampoline`, but the stub also counts the entry in a
    /// per-process counter slot and logs it through the monitor.
    Audit,
}

impl PolicyKind {
    /// The blueprint-syntax tag for this kind.
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            PolicyKind::Deny => "deny",
            PolicyKind::Trampoline => "trampoline",
            PolicyKind::Audit => "audit",
        }
    }

    /// Parses a blueprint-syntax tag.
    #[must_use]
    pub fn from_tag(tag: &str) -> Option<PolicyKind> {
        match tag {
            "deny" => Some(PolicyKind::Deny),
            "trampoline" => Some(PolicyKind::Trampoline),
            "audit" => Some(PolicyKind::Audit),
            _ => None,
        }
    }
}

/// One per-link policy: a kind plus the symbol-selecting regex it
/// applies to.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LinkPolicy {
    /// What the policy does to matching symbols.
    pub kind: PolicyKind,
    /// Symbol selector (same regex dialect as the module operations).
    pub pattern: String,
}

/// A parsed blueprint: optional default constraints plus the root m-graph.
///
/// # Examples
///
/// Figure 1's library meta-object shape:
///
/// ```
/// use omos_blueprint::{Blueprint, MNode};
///
/// let bp = Blueprint::parse(
///     "(constraint-list \"T\" 0x100000)\n(merge /libc/gen /libc/stdio)",
/// )?;
/// assert_eq!(bp.constraints.len(), 1);
/// assert!(matches!(bp.root, MNode::Merge(ref items) if items.len() == 2));
/// # Ok::<(), omos_blueprint::ast::BlueprintError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Blueprint {
    /// Default placement constraints (`constraint-list` forms).
    pub constraints: Vec<(RegionClass, u64)>,
    /// The root operation.
    pub root: MNode,
    /// Source spans of the m-graph nodes, keyed by [`NodePath`]
    /// (metadata: excluded from equality and [`Blueprint::hash`]).
    pub spans: SpanMap,
    /// Source spans of each `constraints` entry, parallel to it (empty
    /// when the blueprint was built programmatically).
    pub constraint_spans: Vec<Span>,
    /// Per-link policies (`policy` forms), in source order.
    pub policies: Vec<LinkPolicy>,
    /// Source spans of each `policies` entry, parallel to it (empty when
    /// the blueprint was built programmatically).
    pub policy_spans: Vec<Span>,
}

impl Blueprint {
    /// Parses blueprint text: any number of `constraint-list` forms and
    /// exactly one m-graph expression.
    pub fn parse(src: &str) -> Result<Blueprint, BlueprintError> {
        let forms = parse_sexprs(src)
            .map_err(|e| BlueprintError::new(e.msg).at(Span::new(e.offset, e.offset)))?;
        let mut constraints = Vec::new();
        let mut constraint_spans = Vec::new();
        let mut policies = Vec::new();
        let mut policy_spans = Vec::new();
        let mut spans = SpanMap::default();
        let mut root = None;
        for f in &forms {
            if let Some(l) = f.as_list() {
                if l.first().and_then(Sexpr::as_sym) == Some("constraint-list") {
                    let pairs = parse_constraint_pairs(&l[1..])?;
                    for (i, _) in pairs.iter().enumerate() {
                        // Span of the TAG ADDR pair itself.
                        let tag = &l[1 + 2 * i];
                        let addr = &l[2 + 2 * i];
                        constraint_spans.push(Span::new(tag.span.start, addr.span.end));
                    }
                    constraints.extend(pairs);
                    continue;
                }
                if l.first().and_then(Sexpr::as_sym) == Some("policy") {
                    policies.push(parse_policy(f, &l[1..])?);
                    policy_spans.push(f.span);
                    continue;
                }
            }
            if root.is_some() {
                return berr_at("blueprint has more than one root expression", f.span);
            }
            root = Some(MNode::from_sexpr_spanned(f, Vec::new(), &mut spans)?);
        }
        match root {
            Some(root) => Ok(Blueprint {
                constraints,
                root,
                spans,
                constraint_spans,
                policies,
                policy_spans,
            }),
            None => berr("blueprint has no root expression"),
        }
    }

    /// Wraps a programmatically-built m-graph (no source spans).
    #[must_use]
    pub fn from_root(root: MNode) -> Blueprint {
        Blueprint {
            constraints: Vec::new(),
            root,
            spans: SpanMap::default(),
            constraint_spans: Vec::new(),
            policies: Vec::new(),
            policy_spans: Vec::new(),
        }
    }

    /// The policy set in canonical form: sorted and deduplicated. This
    /// is what the resolution manifest records and what every consumer
    /// (hashing, linking, diffing) iterates, so source order and
    /// duplicate `policy` forms never change behavior.
    #[must_use]
    pub fn canonical_policies(&self) -> Vec<LinkPolicy> {
        let mut ps = self.policies.clone();
        ps.sort();
        ps.dedup();
        ps
    }

    /// Structural hash including constraints and policies.
    #[must_use]
    pub fn hash(&self) -> ContentHash {
        let mut h = ContentHash::EMPTY.with_str("blueprint");
        for (c, a) in &self.constraints {
            h = h
                .with_str(match c {
                    RegionClass::Text => "T",
                    RegionClass::Data => "D",
                    RegionClass::PolicyData => "P",
                })
                .with_u64(*a);
        }
        // Gated on non-empty so policy-free blueprints hash exactly as
        // they always have (cache keys, manifests, and replies for the
        // existing corpus are untouched by the policy layer's existence).
        for p in self.canonical_policies() {
            h = h
                .with_str("policy")
                .with_str(p.kind.tag())
                .with_str(&p.pattern);
        }
        self.root.hash_into(h)
    }
}

/// Parses one `(policy KIND "PATTERN")` form. The pattern is compiled
/// eagerly so a bad regex is a parse error with a span, not a link-time
/// surprise.
fn parse_policy(form: &Sexpr, args: &[Sexpr]) -> Result<LinkPolicy, BlueprintError> {
    if args.len() != 2 {
        return berr_at("policy needs KIND \"PATTERN\"", form.span);
    }
    let tag = args[0]
        .as_str()
        .or_else(|| args[0].as_sym())
        .ok_or_else(|| BlueprintError::new("policy kind must be a string").at(args[0].span))?;
    let kind = PolicyKind::from_tag(tag).ok_or_else(|| {
        BlueprintError::new(format!(
            "unknown policy kind `{tag}` (expected deny, trampoline, or audit)"
        ))
        .at(args[0].span)
    })?;
    let pattern = args[1]
        .as_str()
        .ok_or_else(|| BlueprintError::new("policy pattern must be a string").at(args[1].span))?;
    Regex::new(pattern)
        .map_err(|e| BlueprintError::new(format!("policy pattern: {e}")).at(args[1].span))?;
    Ok(LinkPolicy {
        kind,
        pattern: pattern.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_blueprint_parses() {
        let bp = Blueprint::parse(
            r#"
            (constraint-list "T" 0x100000 "D" 0x40200000)
            (merge /libc/gen /libc/stdio /libc/string /libc/stdlib
                   /libc/hppa /libc/net /libc/quad /libc/rpc)
            "#,
        )
        .unwrap();
        assert_eq!(
            bp.constraints,
            vec![
                (RegionClass::Text, 0x10_0000),
                (RegionClass::Data, 0x4020_0000)
            ]
        );
        match &bp.root {
            MNode::Merge(items) => assert_eq!(items.len(), 8),
            other => panic!("expected merge, got {other:?}"),
        }
        assert_eq!(bp.constraint_spans.len(), 2);
    }

    #[test]
    fn figure2_blueprint_parses() {
        let bp = Blueprint::parse(
            r#"
            (hide "_REAL_malloc"
              (merge
                (restrict "^_malloc$"
                  (copy_as "^_malloc$" "_REAL_malloc"
                    (merge /bin/ls.o /lib/libc.o)))
                /lib/test_malloc.o))
            "#,
        )
        .unwrap();
        let MNode::Hide { pattern, operand } = &bp.root else {
            panic!("expected hide at root");
        };
        assert_eq!(pattern, "_REAL_malloc");
        let MNode::Merge(items) = operand.as_ref() else {
            panic!("expected merge under hide");
        };
        assert!(matches!(items[1], MNode::Leaf(ref p) if p == "/lib/test_malloc.o"));
    }

    #[test]
    fn figure3_blueprint_parses() {
        let bp = Blueprint::parse(
            r#"
            (merge
              (source "c" "int undef_var = 0;\n")
              (rename "^_undefined_routine$" "_abort"
                /lib/lib-with-problems))
            "#,
        )
        .unwrap();
        let MNode::Merge(items) = &bp.root else {
            panic!("root should be merge")
        };
        assert!(matches!(items[0], MNode::Source { ref lang, .. } if lang == "c"));
        assert!(
            matches!(items[1], MNode::Rename { ref target, .. } if *target == RenameTarget::Both)
        );
    }

    #[test]
    fn specializations_parse() {
        let d = Blueprint::parse(r#"(specialize "lib-dynamic" /lib/libc)"#).unwrap();
        assert!(matches!(
            d.root,
            MNode::Specialize {
                kind: SpecKind::Dynamic,
                ..
            }
        ));

        let c =
            Blueprint::parse(r#"(specialize "lib-constrained" (list "T" 0x1000000) /lib/libc)"#)
                .unwrap();
        match c.root {
            MNode::Specialize {
                kind: SpecKind::Constrained(cs),
                ..
            } => {
                assert_eq!(cs, vec![(RegionClass::Text, 0x100_0000)]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn constrain_sugar() {
        let b = Blueprint::parse(r#"(constrain "T" 0x2000000 /lib/libm)"#).unwrap();
        assert!(matches!(
            b.root,
            MNode::Specialize {
                kind: SpecKind::Constrained(_),
                ..
            }
        ));
    }

    #[test]
    fn policy_forms_parse() {
        let bp = Blueprint::parse(
            r#"
            (policy deny "^_exec")
            (policy trampoline "^_malloc$")
            (policy audit "^_free$")
            (merge /bin/ls.o /lib/libc)
            "#,
        )
        .unwrap();
        assert_eq!(
            bp.policies,
            vec![
                LinkPolicy {
                    kind: PolicyKind::Deny,
                    pattern: "^_exec".into()
                },
                LinkPolicy {
                    kind: PolicyKind::Trampoline,
                    pattern: "^_malloc$".into()
                },
                LinkPolicy {
                    kind: PolicyKind::Audit,
                    pattern: "^_free$".into()
                },
            ]
        );
        assert_eq!(bp.policy_spans.len(), 3);
        // String kinds work too, and the canonical set dedups.
        let bp2 =
            Blueprint::parse("(policy \"audit\" \"^_free$\")\n(policy \"audit\" \"^_free$\")\n/a")
                .unwrap();
        assert_eq!(bp2.canonical_policies().len(), 1);
    }

    #[test]
    fn policy_shape_errors() {
        assert!(Blueprint::parse("(policy deny)\n/a").is_err(), "no pattern");
        assert!(
            Blueprint::parse("(policy sandbox \"x\")\n/a").is_err(),
            "unknown kind"
        );
        assert!(
            Blueprint::parse("(policy deny \"(unclosed\")\n/a").is_err(),
            "bad regex is a parse error"
        );
    }

    #[test]
    fn policy_free_hash_is_unchanged_and_policies_distinguish() {
        let plain = Blueprint::parse("(merge /a /b)").unwrap();
        assert!(plain.policies.is_empty());
        let denied = Blueprint::parse("(policy deny \"^_x$\")\n(merge /a /b)").unwrap();
        assert_ne!(plain.hash(), denied.hash());
        let audited = Blueprint::parse("(policy audit \"^_x$\")\n(merge /a /b)").unwrap();
        assert_ne!(denied.hash(), audited.hash());
        // Source order of policy forms does not matter: the hash runs
        // over the canonical set.
        let ab =
            Blueprint::parse("(policy deny \"^a\")\n(policy audit \"^b\")\n(merge /a /b)").unwrap();
        let ba =
            Blueprint::parse("(policy audit \"^b\")\n(policy deny \"^a\")\n(merge /a /b)").unwrap();
        assert_eq!(ab.hash(), ba.hash());
    }

    #[test]
    fn hash_distinguishes_structure() {
        let a = Blueprint::parse("(merge /a /b)").unwrap();
        let b = Blueprint::parse("(merge /b /a)").unwrap();
        let a2 = Blueprint::parse("(merge /a /b)").unwrap();
        assert_ne!(a.hash(), b.hash());
        assert_eq!(a.hash(), a2.hash());
        let c = Blueprint::parse("(constraint-list \"T\" 0x1000)\n(merge /a /b)").unwrap();
        assert_ne!(a.hash(), c.hash());
    }

    #[test]
    fn hash_and_equality_ignore_layout() {
        let a = Blueprint::parse("(merge /a /b)").unwrap();
        let b = Blueprint::parse("(merge\n    /a\n    /b)").unwrap();
        assert_eq!(a.hash(), b.hash());
        assert_eq!(a, b);
    }

    #[test]
    fn rename_variants() {
        let refs = Blueprint::parse(r#"(rename-refs "a" "b" /x)"#).unwrap();
        assert!(matches!(
            refs.root,
            MNode::Rename {
                target: RenameTarget::Refs,
                ..
            }
        ));
        let defs = Blueprint::parse(r#"(rename-defs "a" "b" /x)"#).unwrap();
        assert!(matches!(
            defs.root,
            MNode::Rename {
                target: RenameTarget::Defs,
                ..
            }
        ));
    }

    #[test]
    fn node_paths_map_to_source_spans() {
        let src = r#"(hide "x" (merge /a (rename "p" "q" /b)))"#;
        let bp = Blueprint::parse(src).unwrap();
        let span_text = |path: &[u32]| {
            let s = bp.spans.get(path).expect("span recorded");
            &src[s.start..s.end]
        };
        assert_eq!(span_text(&[]), src);
        assert_eq!(span_text(&[0]), r#"(merge /a (rename "p" "q" /b))"#);
        assert_eq!(span_text(&[0, 0]), "/a");
        assert_eq!(span_text(&[0, 1]), r#"(rename "p" "q" /b)"#);
        assert_eq!(span_text(&[0, 1, 0]), "/b");
    }

    #[test]
    fn shape_errors_carry_spans() {
        let err = Blueprint::parse("(merge /a (bogus /x))").unwrap_err();
        let span = err.span.expect("shape error is located");
        assert_eq!(span.start, 10);
        let err = Blueprint::parse("(override /a)").unwrap_err();
        assert!(err.span.is_some());
    }

    #[test]
    fn shape_errors() {
        assert!(Blueprint::parse("(merge)").is_err());
        assert!(Blueprint::parse("(override /a)").is_err());
        assert!(Blueprint::parse("(hide /x /y)").is_err());
        assert!(Blueprint::parse("(bogus /x)").is_err());
        assert!(Blueprint::parse("(specialize \"wat\" /x)").is_err());
        assert!(Blueprint::parse("/a /b").is_err(), "two roots");
        assert!(Blueprint::parse("").is_err(), "no root");
        assert!(
            Blueprint::parse("(constraint-list \"T\")\n/a").is_err(),
            "odd pairs"
        );
        assert!(
            Blueprint::parse("(constraint-list \"Q\" 1)\n/a").is_err(),
            "bad tag"
        );
    }
}
