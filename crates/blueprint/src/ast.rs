//! The m-graph: blueprints parsed into executable operation graphs.

use std::fmt;

use omos_constraint::RegionClass;
use omos_obj::view::RenameTarget;
use omos_obj::ContentHash;

use crate::sexpr::{parse_sexprs, Sexpr};

/// A blueprint syntax/shape error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlueprintError {
    /// Description.
    pub msg: String,
}

impl fmt::Display for BlueprintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blueprint error: {}", self.msg)
    }
}

impl std::error::Error for BlueprintError {}

fn berr<T>(msg: impl Into<String>) -> Result<T, BlueprintError> {
    Err(BlueprintError { msg: msg.into() })
}

/// Specialization kinds (§3.4, §4.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecKind {
    /// `lib-static`: link the operand directly into the client.
    Static,
    /// `lib-constrained`: a self-contained shared library whose segments
    /// prefer the given addresses.
    Constrained(Vec<(RegionClass, u64)>),
    /// `lib-dynamic`: replace the operand with generated partial-image
    /// stubs; the implementation loads on first call.
    Dynamic,
    /// `lib-dynamic-impl`: the loadable implementation of a dynamic
    /// library (what the stubs fetch).
    DynamicImpl,
}

/// One node of the m-graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MNode {
    /// A namespace path: an object file or another meta-object.
    Leaf(String),
    /// `merge`: n-ary strict merge.
    Merge(Vec<MNode>),
    /// `override`: conflicts resolve in favor of the second operand.
    Override(Box<MNode>, Box<MNode>),
    /// `rename` (and the ref/def-only variants).
    Rename {
        /// Symbol selector.
        pattern: String,
        /// Replacement for the matched span.
        replacement: String,
        /// Which roles to rename.
        target: RenameTarget,
        /// Operand.
        operand: Box<MNode>,
    },
    /// `hide`.
    Hide {
        /// Symbol selector.
        pattern: String,
        /// Operand.
        operand: Box<MNode>,
    },
    /// `show`.
    Show {
        /// Symbol selector.
        pattern: String,
        /// Operand.
        operand: Box<MNode>,
    },
    /// `restrict`.
    Restrict {
        /// Symbol selector.
        pattern: String,
        /// Operand.
        operand: Box<MNode>,
    },
    /// `project`.
    Project {
        /// Symbol selector.
        pattern: String,
        /// Operand.
        operand: Box<MNode>,
    },
    /// `copy_as`.
    CopyAs {
        /// Symbol selector.
        pattern: String,
        /// Replacement producing the copy's name.
        replacement: String,
        /// Operand.
        operand: Box<MNode>,
    },
    /// `freeze`.
    Freeze {
        /// Symbol selector.
        pattern: String,
        /// Operand.
        operand: Box<MNode>,
    },
    /// `initializers`.
    Initializers(Box<MNode>),
    /// `source`: compile source text into a fragment.
    Source {
        /// Language: `"c"` or `"asm"`.
        lang: String,
        /// Source text.
        code: String,
    },
    /// `specialize`.
    Specialize {
        /// The specialization to apply.
        kind: SpecKind,
        /// Operand.
        operand: Box<MNode>,
    },
}

impl MNode {
    /// Structural hash — the cache key for evaluated sub-graphs.
    #[must_use]
    pub fn hash(&self) -> ContentHash {
        self.hash_into(ContentHash::EMPTY)
    }

    fn hash_into(&self, h: ContentHash) -> ContentHash {
        match self {
            MNode::Leaf(p) => h.with_str("leaf").with_str(p),
            MNode::Merge(items) => {
                let mut h = h.with_str("merge").with_u64(items.len() as u64);
                for i in items {
                    h = i.hash_into(h);
                }
                h
            }
            MNode::Override(a, b) => b.hash_into(a.hash_into(h.with_str("override"))),
            MNode::Rename {
                pattern,
                replacement,
                target,
                operand,
            } => operand.hash_into(
                h.with_str("rename")
                    .with_str(pattern)
                    .with_str(replacement)
                    .with_u64(match target {
                        RenameTarget::Defs => 0,
                        RenameTarget::Refs => 1,
                        RenameTarget::Both => 2,
                    }),
            ),
            MNode::Hide { pattern, operand } => {
                operand.hash_into(h.with_str("hide").with_str(pattern))
            }
            MNode::Show { pattern, operand } => {
                operand.hash_into(h.with_str("show").with_str(pattern))
            }
            MNode::Restrict { pattern, operand } => {
                operand.hash_into(h.with_str("restrict").with_str(pattern))
            }
            MNode::Project { pattern, operand } => {
                operand.hash_into(h.with_str("project").with_str(pattern))
            }
            MNode::CopyAs {
                pattern,
                replacement,
                operand,
            } => operand.hash_into(
                h.with_str("copy-as")
                    .with_str(pattern)
                    .with_str(replacement),
            ),
            MNode::Freeze { pattern, operand } => {
                operand.hash_into(h.with_str("freeze").with_str(pattern))
            }
            MNode::Initializers(o) => o.hash_into(h.with_str("initializers")),
            MNode::Source { lang, code } => h.with_str("source").with_str(lang).with_str(code),
            MNode::Specialize { kind, operand } => {
                let h = match kind {
                    SpecKind::Static => h.with_str("spec-static"),
                    SpecKind::Dynamic => h.with_str("spec-dynamic"),
                    SpecKind::DynamicImpl => h.with_str("spec-dynamic-impl"),
                    SpecKind::Constrained(cs) => {
                        let mut h = h.with_str("spec-constrained");
                        for (c, a) in cs {
                            h = h
                                .with_str(match c {
                                    RegionClass::Text => "T",
                                    RegionClass::Data => "D",
                                })
                                .with_u64(*a);
                        }
                        h
                    }
                };
                operand.hash_into(h)
            }
        }
    }

    /// Parses one m-graph expression from an s-expression.
    pub fn from_sexpr(s: &Sexpr) -> Result<MNode, BlueprintError> {
        match s {
            Sexpr::Sym(path) => Ok(MNode::Leaf(path.clone())),
            Sexpr::Str(_) | Sexpr::Num(_) => {
                berr(format!("expected an m-graph expression, found `{s}`"))
            }
            Sexpr::List(items) => {
                let Some(op) = items.first().and_then(Sexpr::as_sym) else {
                    return berr("operation list must start with an operator symbol");
                };
                let args = &items[1..];
                match op {
                    "merge" => {
                        if args.is_empty() {
                            return berr("merge needs at least one operand");
                        }
                        Ok(MNode::Merge(
                            args.iter()
                                .map(MNode::from_sexpr)
                                .collect::<Result<_, _>>()?,
                        ))
                    }
                    "override" => {
                        if args.len() != 2 {
                            return berr("override needs exactly two operands");
                        }
                        Ok(MNode::Override(
                            Box::new(MNode::from_sexpr(&args[0])?),
                            Box::new(MNode::from_sexpr(&args[1])?),
                        ))
                    }
                    "rename" | "rename-refs" | "rename-defs" => {
                        let (pattern, replacement, operand) = str_str_node(op, args)?;
                        let target = match op {
                            "rename-refs" => RenameTarget::Refs,
                            "rename-defs" => RenameTarget::Defs,
                            _ => RenameTarget::Both,
                        };
                        Ok(MNode::Rename {
                            pattern,
                            replacement,
                            target,
                            operand,
                        })
                    }
                    "hide" | "show" | "restrict" | "project" | "freeze" => {
                        let (pattern, operand) = str_node(op, args)?;
                        Ok(match op {
                            "hide" => MNode::Hide { pattern, operand },
                            "show" => MNode::Show { pattern, operand },
                            "restrict" => MNode::Restrict { pattern, operand },
                            "project" => MNode::Project { pattern, operand },
                            _ => MNode::Freeze { pattern, operand },
                        })
                    }
                    "copy_as" | "copy-as" => {
                        let (pattern, replacement, operand) = str_str_node(op, args)?;
                        Ok(MNode::CopyAs {
                            pattern,
                            replacement,
                            operand,
                        })
                    }
                    "initializers" => {
                        if args.len() != 1 {
                            return berr("initializers needs exactly one operand");
                        }
                        Ok(MNode::Initializers(Box::new(MNode::from_sexpr(&args[0])?)))
                    }
                    "source" => {
                        let lang =
                            args.first()
                                .and_then(Sexpr::as_str)
                                .ok_or_else(|| BlueprintError {
                                    msg: "source needs a language string".into(),
                                })?;
                        let code =
                            args.get(1)
                                .and_then(Sexpr::as_str)
                                .ok_or_else(|| BlueprintError {
                                    msg: "source needs a code string".into(),
                                })?;
                        Ok(MNode::Source {
                            lang: lang.to_string(),
                            code: code.to_string(),
                        })
                    }
                    "specialize" => parse_specialize(args),
                    "constrain" => {
                        // (constrain "T" 0x1000000 m): sugar for a
                        // single-region constrained specialization.
                        if args.len() != 3 {
                            return berr("constrain needs TAG ADDR OPERAND");
                        }
                        let cs = parse_constraint_pairs(&args[..2])?;
                        Ok(MNode::Specialize {
                            kind: SpecKind::Constrained(cs),
                            operand: Box::new(MNode::from_sexpr(&args[2])?),
                        })
                    }
                    other => berr(format!("unknown operator `{other}`")),
                }
            }
        }
    }
}

fn str_node(op: &str, args: &[Sexpr]) -> Result<(String, Box<MNode>), BlueprintError> {
    if args.len() != 2 {
        return berr(format!("{op} needs PATTERN OPERAND"));
    }
    let pattern = args[0].as_str().ok_or_else(|| BlueprintError {
        msg: format!("{op}: pattern must be a string"),
    })?;
    Ok((pattern.to_string(), Box::new(MNode::from_sexpr(&args[1])?)))
}

fn str_str_node(op: &str, args: &[Sexpr]) -> Result<(String, String, Box<MNode>), BlueprintError> {
    if args.len() != 3 {
        return berr(format!("{op} needs PATTERN REPLACEMENT OPERAND"));
    }
    let pattern = args[0].as_str().ok_or_else(|| BlueprintError {
        msg: format!("{op}: pattern must be a string"),
    })?;
    let replacement = args[1].as_str().ok_or_else(|| BlueprintError {
        msg: format!("{op}: replacement must be a string"),
    })?;
    Ok((
        pattern.to_string(),
        replacement.to_string(),
        Box::new(MNode::from_sexpr(&args[2])?),
    ))
}

fn parse_specialize(args: &[Sexpr]) -> Result<MNode, BlueprintError> {
    let kind_name = args
        .first()
        .and_then(Sexpr::as_str)
        .ok_or_else(|| BlueprintError {
            msg: "specialize needs a kind string".into(),
        })?;
    match kind_name {
        "lib-static" => {
            if args.len() != 2 {
                return berr("specialize lib-static needs one operand");
            }
            Ok(MNode::Specialize {
                kind: SpecKind::Static,
                operand: Box::new(MNode::from_sexpr(&args[1])?),
            })
        }
        "lib-dynamic" => {
            if args.len() != 2 {
                return berr("specialize lib-dynamic needs one operand");
            }
            Ok(MNode::Specialize {
                kind: SpecKind::Dynamic,
                operand: Box::new(MNode::from_sexpr(&args[1])?),
            })
        }
        "lib-dynamic-impl" => {
            if args.len() != 2 {
                return berr("specialize lib-dynamic-impl needs one operand");
            }
            Ok(MNode::Specialize {
                kind: SpecKind::DynamicImpl,
                operand: Box::new(MNode::from_sexpr(&args[1])?),
            })
        }
        "lib-constrained" => {
            // (specialize "lib-constrained" (list "T" 0x1000000) /lib/libc)
            if args.len() != 3 {
                return berr("specialize lib-constrained needs (list ...) and an operand");
            }
            let list = args[1]
                .as_list()
                .filter(|l| l.first().and_then(Sexpr::as_sym) == Some("list"))
                .ok_or_else(|| BlueprintError {
                    msg: "lib-constrained constraints must be a (list ...)".into(),
                })?;
            let cs = parse_constraint_pairs(&list[1..])?;
            Ok(MNode::Specialize {
                kind: SpecKind::Constrained(cs),
                operand: Box::new(MNode::from_sexpr(&args[2])?),
            })
        }
        other => berr(format!("unknown specialization `{other}`")),
    }
}

fn parse_constraint_pairs(items: &[Sexpr]) -> Result<Vec<(RegionClass, u64)>, BlueprintError> {
    if items.len() % 2 != 0 {
        return berr("constraints must be TAG ADDR pairs");
    }
    let mut out = Vec::new();
    for pair in items.chunks(2) {
        let tag = pair[0].as_str().ok_or_else(|| BlueprintError {
            msg: "constraint tag must be a string".into(),
        })?;
        let class = RegionClass::from_tag(tag).ok_or_else(|| BlueprintError {
            msg: format!("unknown constraint tag `{tag}`"),
        })?;
        let addr = pair[1].as_num().ok_or_else(|| BlueprintError {
            msg: "constraint address must be a number".into(),
        })?;
        out.push((class, addr as u64));
    }
    Ok(out)
}

/// A parsed blueprint: optional default constraints plus the root m-graph.
///
/// # Examples
///
/// Figure 1's library meta-object shape:
///
/// ```
/// use omos_blueprint::{Blueprint, MNode};
///
/// let bp = Blueprint::parse(
///     "(constraint-list \"T\" 0x100000)\n(merge /libc/gen /libc/stdio)",
/// )?;
/// assert_eq!(bp.constraints.len(), 1);
/// assert!(matches!(bp.root, MNode::Merge(ref items) if items.len() == 2));
/// # Ok::<(), omos_blueprint::ast::BlueprintError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Blueprint {
    /// Default placement constraints (`constraint-list` forms).
    pub constraints: Vec<(RegionClass, u64)>,
    /// The root operation.
    pub root: MNode,
}

impl Blueprint {
    /// Parses blueprint text: any number of `constraint-list` forms and
    /// exactly one m-graph expression.
    pub fn parse(src: &str) -> Result<Blueprint, BlueprintError> {
        let forms = parse_sexprs(src).map_err(|e| BlueprintError { msg: e.to_string() })?;
        let mut constraints = Vec::new();
        let mut root = None;
        for f in &forms {
            if let Some(l) = f.as_list() {
                if l.first().and_then(Sexpr::as_sym) == Some("constraint-list") {
                    constraints.extend(parse_constraint_pairs(&l[1..])?);
                    continue;
                }
            }
            if root.is_some() {
                return berr("blueprint has more than one root expression");
            }
            root = Some(MNode::from_sexpr(f)?);
        }
        match root {
            Some(root) => Ok(Blueprint { constraints, root }),
            None => berr("blueprint has no root expression"),
        }
    }

    /// Structural hash including constraints.
    #[must_use]
    pub fn hash(&self) -> ContentHash {
        let mut h = ContentHash::EMPTY.with_str("blueprint");
        for (c, a) in &self.constraints {
            h = h
                .with_str(match c {
                    RegionClass::Text => "T",
                    RegionClass::Data => "D",
                })
                .with_u64(*a);
        }
        self.root.hash_into(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_blueprint_parses() {
        let bp = Blueprint::parse(
            r#"
            (constraint-list "T" 0x100000 "D" 0x40200000)
            (merge /libc/gen /libc/stdio /libc/string /libc/stdlib
                   /libc/hppa /libc/net /libc/quad /libc/rpc)
            "#,
        )
        .unwrap();
        assert_eq!(
            bp.constraints,
            vec![
                (RegionClass::Text, 0x10_0000),
                (RegionClass::Data, 0x4020_0000)
            ]
        );
        match &bp.root {
            MNode::Merge(items) => assert_eq!(items.len(), 8),
            other => panic!("expected merge, got {other:?}"),
        }
    }

    #[test]
    fn figure2_blueprint_parses() {
        let bp = Blueprint::parse(
            r#"
            (hide "_REAL_malloc"
              (merge
                (restrict "^_malloc$"
                  (copy_as "^_malloc$" "_REAL_malloc"
                    (merge /bin/ls.o /lib/libc.o)))
                /lib/test_malloc.o))
            "#,
        )
        .unwrap();
        let MNode::Hide { pattern, operand } = &bp.root else {
            panic!("expected hide at root");
        };
        assert_eq!(pattern, "_REAL_malloc");
        let MNode::Merge(items) = operand.as_ref() else {
            panic!("expected merge under hide");
        };
        assert!(matches!(items[1], MNode::Leaf(ref p) if p == "/lib/test_malloc.o"));
    }

    #[test]
    fn figure3_blueprint_parses() {
        let bp = Blueprint::parse(
            r#"
            (merge
              (source "c" "int undef_var = 0;\n")
              (rename "^_undefined_routine$" "_abort"
                /lib/lib-with-problems))
            "#,
        )
        .unwrap();
        let MNode::Merge(items) = &bp.root else {
            panic!("root should be merge")
        };
        assert!(matches!(items[0], MNode::Source { ref lang, .. } if lang == "c"));
        assert!(
            matches!(items[1], MNode::Rename { ref target, .. } if *target == RenameTarget::Both)
        );
    }

    #[test]
    fn specializations_parse() {
        let d = Blueprint::parse(r#"(specialize "lib-dynamic" /lib/libc)"#).unwrap();
        assert!(matches!(
            d.root,
            MNode::Specialize {
                kind: SpecKind::Dynamic,
                ..
            }
        ));

        let c =
            Blueprint::parse(r#"(specialize "lib-constrained" (list "T" 0x1000000) /lib/libc)"#)
                .unwrap();
        match c.root {
            MNode::Specialize {
                kind: SpecKind::Constrained(cs),
                ..
            } => {
                assert_eq!(cs, vec![(RegionClass::Text, 0x100_0000)]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn constrain_sugar() {
        let b = Blueprint::parse(r#"(constrain "T" 0x2000000 /lib/libm)"#).unwrap();
        assert!(matches!(
            b.root,
            MNode::Specialize {
                kind: SpecKind::Constrained(_),
                ..
            }
        ));
    }

    #[test]
    fn hash_distinguishes_structure() {
        let a = Blueprint::parse("(merge /a /b)").unwrap();
        let b = Blueprint::parse("(merge /b /a)").unwrap();
        let a2 = Blueprint::parse("(merge /a /b)").unwrap();
        assert_ne!(a.hash(), b.hash());
        assert_eq!(a.hash(), a2.hash());
        let c = Blueprint::parse("(constraint-list \"T\" 0x1000)\n(merge /a /b)").unwrap();
        assert_ne!(a.hash(), c.hash());
    }

    #[test]
    fn rename_variants() {
        let refs = Blueprint::parse(r#"(rename-refs "a" "b" /x)"#).unwrap();
        assert!(matches!(
            refs.root,
            MNode::Rename {
                target: RenameTarget::Refs,
                ..
            }
        ));
        let defs = Blueprint::parse(r#"(rename-defs "a" "b" /x)"#).unwrap();
        assert!(matches!(
            defs.root,
            MNode::Rename {
                target: RenameTarget::Defs,
                ..
            }
        ));
    }

    #[test]
    fn shape_errors() {
        assert!(Blueprint::parse("(merge)").is_err());
        assert!(Blueprint::parse("(override /a)").is_err());
        assert!(Blueprint::parse("(hide /x /y)").is_err());
        assert!(Blueprint::parse("(bogus /x)").is_err());
        assert!(Blueprint::parse("(specialize \"wat\" /x)").is_err());
        assert!(Blueprint::parse("/a /b").is_err(), "two roots");
        assert!(Blueprint::parse("").is_err(), "no root");
        assert!(
            Blueprint::parse("(constraint-list \"T\")\n/a").is_err(),
            "odd pairs"
        );
        assert!(
            Blueprint::parse("(constraint-list \"Q\" 1)\n/a").is_err(),
            "bad tag"
        );
    }
}
