//! The OMOS blueprint language and m-graph evaluator.
//!
//! §3.2–3.4: "Meta-objects contain a specification, known as a blueprint,
//! which describes how to combine objects and other meta-objects to
//! produce an instance of the class. These rules map into a graph of
//! operations, the m-graph. ... Before executing the m-graph, OMOS
//! applies any user-specified specializations to it."
//!
//! * [`sexpr`] — the "simple Lisp-like syntax" parser;
//! * [`ast`] — the m-graph ([`ast::MNode`]) and blueprint representation,
//!   with structural hashing for the server caches;
//! * [`source`] — the `source` operator: assembles U32 assembly or
//!   compiles the mini-C subset the paper's Figure 3 uses;
//! * [`eval`] — m-graph execution against a pluggable [`eval::EvalContext`]
//!   (namespace resolution, sub-result caching, dynamic-library
//!   registration), producing a linked-ready [`omos_module::Module`];
//! * [`plan`] — the same evaluation split into a planning pass (lower
//!   the m-graph into a DAG of work units) and a work-stealing parallel
//!   execution pass, deterministic and byte-identical to [`eval`].

pub mod ast;
pub mod eval;
pub mod plan;
pub mod sexpr;
pub mod source;

pub use ast::{
    Blueprint, BlueprintError, LinkPolicy, MNode, NodePath, PolicyKind, SpanMap, SpecKind,
};
pub use eval::{
    eval_blueprint, CachedEval, EvalContext, EvalError, EvalOutput, EvalStats, LibraryUse,
    ResolvedNode,
};
pub use plan::{eval_blueprint_parallel, ParallelOutput, UnitReport};
pub use sexpr::{parse_sexprs, Sexpr, SexprKind, Span};
pub use source::{compile_source, SourceError};
