//! Dependency-scheduled parallel m-graph evaluation.
//!
//! Evaluation splits into two passes. The *planning* pass walks the
//! m-graph exactly like the sequential [`Evaluator`](crate::eval) —
//! same node order, same cache probes, same statistics — but instead of
//! computing modules it lowers the graph into a DAG of *work units*
//! (leaf modules, merge/override steps, Jigsaw view-op applications,
//! `source` compiles, dynamic-stub generation), each keyed by the node
//! content hash it will publish. The *execution* pass runs ready units
//! on a scoped worker pool with per-worker deques and work stealing.
//!
//! # Determinism
//!
//! The result is byte-identical to sequential evaluation regardless of
//! completion order:
//!
//! * merge/override operand order is frozen at plan time — a merge of n
//!   operands is a *chain* of binary steps (merge is not associative:
//!   combined object names and local-symbol uniquification depend on
//!   operand order), so only sibling subtrees run concurrently;
//! * units are emitted in sequential execution order, so a unit's
//!   dependencies always have smaller ordinals, and on failure the
//!   error with the smallest ordinal — the one sequential evaluation
//!   would have hit first — is reported;
//! * `lib-dynamic` registrations are chained in discovery (DFS) order
//!   so library ids match the sequential assignment;
//! * a worker panic is caught per-unit and surfaces as
//!   [`EvalError::Worker`] without poisoning any shared state (caches
//!   only ever receive completed, valid results).

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use omos_constraint::RegionClass;
use omos_link::make_partial_stubs;
use omos_module::Module;
use omos_obj::view::RenameTarget;
use omos_obj::ContentHash;

use crate::ast::{Blueprint, MNode, SpecKind};
use crate::eval::{
    cycle_chain, leaf_name, locate_error, EvalContext, EvalError, EvalOutput, EvalStats,
    LibraryUse, ResolvedNode,
};
use crate::source::compile_source;

/// Poison-tolerant lock: a worker panic is already surfaced as
/// [`EvalError::Worker`]; the data under these locks stays valid.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// One schedulable operation, lowered from an m-graph node. Operand
/// indices refer to earlier units in the plan.
#[derive(Debug, Clone)]
enum Op {
    /// A module available at plan time: a resolved leaf object or a
    /// cache hit.
    Ready(Module),
    /// One binary step of a merge chain.
    MergeStep {
        a: usize,
        b: usize,
    },
    /// `override` (conflicts resolve toward `b`).
    OverrideStep {
        a: usize,
        b: usize,
    },
    Rename {
        pattern: String,
        replacement: String,
        target: RenameTarget,
        operand: usize,
    },
    Hide {
        pattern: String,
        operand: usize,
    },
    Show {
        pattern: String,
        operand: usize,
    },
    Restrict {
        pattern: String,
        operand: usize,
    },
    Project {
        pattern: String,
        operand: usize,
    },
    CopyAs {
        pattern: String,
        replacement: String,
        operand: usize,
    },
    Freeze {
        pattern: String,
        operand: usize,
    },
    Initializers {
        operand: usize,
    },
    Source {
        lang: String,
        code: String,
    },
    /// Register the operand as a `lib-dynamic` implementation and
    /// generate its partial-image stubs.
    DynStubs {
        operand: usize,
    },
}

/// A planned work unit.
#[derive(Debug, Clone)]
struct Unit {
    op: Op,
    /// Unit ordinals this one consumes (always smaller than its own).
    deps: Vec<usize>,
    label: String,
    merges: u64,
    source_compiles: u64,
    /// Cache keys (plus their dependency records) this unit's result is
    /// published under when it completes.
    puts: Vec<(ContentHash, std::sync::Arc<BTreeSet<String>>)>,
}

/// What one work unit looked like, for scheduling and tracing above
/// the blueprint layer (the server prices merges/compiles with its
/// cost model and lays siblings out on simulated worker lanes).
#[derive(Debug, Clone)]
pub struct UnitReport {
    /// Short human label (`merge`, `leaf /obj/ls.o`, `source c`, ...).
    pub label: String,
    /// Ordinals of the units this one consumed.
    pub deps: Vec<usize>,
    /// Merge/override steps this unit performs (0 or 1).
    pub merges: u64,
    /// `source` compilations this unit performs (0 or 1).
    pub source_compiles: u64,
}

/// The result of parallel evaluation: the sequential-identical
/// [`EvalOutput`] plus the executed work-unit DAG.
#[derive(Debug)]
pub struct ParallelOutput {
    /// Exactly what [`eval_blueprint`](crate::eval_blueprint) would
    /// have produced: module, libraries, constraints, stats, deps.
    pub output: EvalOutput,
    /// The work-unit DAG, in plan (sequential-execution) order.
    pub units: Vec<UnitReport>,
}

struct PlannedNode {
    unit: usize,
    deps: std::sync::Arc<BTreeSet<String>>,
}

/// A planned library use: name, producing unit, address constraints.
type PlannedLibrary = (String, usize, Vec<(RegionClass, u64)>);

/// The planning pass: replays the sequential evaluator's control flow
/// (including its statistics and dependency-scope bookkeeping) while
/// lowering every computation into a [`Unit`].
struct Planner<'a> {
    ctx: &'a dyn EvalContext,
    stats: EvalStats,
    visiting: Vec<String>,
    scopes: Vec<BTreeSet<String>>,
    /// Keys already planned this request: a second visit is the
    /// in-request analogue of a cache hit.
    planned: HashMap<ContentHash, PlannedNode>,
    units: Vec<Unit>,
    /// Library uses in declaration order.
    libraries: Vec<PlannedLibrary>,
    /// Last `lib-dynamic` stub unit, chained so registration order (and
    /// therefore library ids) match sequential evaluation.
    last_dyn: Option<usize>,
}

impl<'a> Planner<'a> {
    fn new(ctx: &'a dyn EvalContext) -> Planner<'a> {
        Planner {
            ctx,
            stats: EvalStats::default(),
            visiting: Vec::new(),
            scopes: vec![BTreeSet::new()],
            planned: HashMap::new(),
            units: Vec::new(),
            libraries: Vec::new(),
            last_dyn: None,
        }
    }

    fn record(&mut self, path: &str) {
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .insert(path.to_string());
    }

    fn fold_deps(&mut self, deps: &BTreeSet<String>) {
        let top = self.scopes.last_mut().expect("scope stack never empty");
        for d in deps {
            top.insert(d.clone());
        }
    }

    fn push_unit(
        &mut self,
        op: Op,
        deps: Vec<usize>,
        label: String,
        merges: u64,
        compiles: u64,
    ) -> usize {
        self.units.push(Unit {
            op,
            deps,
            label,
            merges,
            source_compiles: compiles,
            puts: Vec::new(),
        });
        self.units.len() - 1
    }

    fn plan_node(&mut self, n: &MNode) -> Result<usize, EvalError> {
        self.stats.nodes += 1;
        let key = n.hash();
        if let Some(p) = self.planned.get(&key) {
            // Sequential evaluation would find the first visit's
            // cache_put; count and fold exactly as that hit would.
            self.stats.cache_hits += 1;
            let (unit, deps) = (p.unit, std::sync::Arc::clone(&p.deps));
            self.fold_deps(&deps);
            self.plan_collect_library_uses(n)?;
            return Ok(unit);
        }
        if let Some(c) = self.ctx.cache_get(key) {
            self.stats.cache_hits += 1;
            let deps = std::sync::Arc::clone(&c.deps);
            let unit = self.push_unit(Op::Ready(c.module), Vec::new(), "cached".into(), 0, 0);
            self.planned.insert(
                key,
                PlannedNode {
                    unit,
                    deps: std::sync::Arc::clone(&deps),
                },
            );
            self.fold_deps(&deps);
            self.plan_collect_library_uses(n)?;
            return Ok(unit);
        }
        self.scopes.push(BTreeSet::new());
        let unit = self.plan_node_uncached(n)?;
        let deps = std::sync::Arc::new(self.scopes.pop().expect("scope pushed above"));
        self.units[unit]
            .puts
            .push((key, std::sync::Arc::clone(&deps)));
        self.planned.insert(
            key,
            PlannedNode {
                unit,
                deps: std::sync::Arc::clone(&deps),
            },
        );
        self.fold_deps(&deps);
        Ok(unit)
    }

    fn plan_node_uncached(&mut self, n: &MNode) -> Result<usize, EvalError> {
        match n {
            MNode::Leaf(path) => self.plan_leaf(path),
            MNode::Merge(items) => {
                let mut acc: Option<usize> = None;
                for it in items {
                    let u = match self.plan_library_candidate(it)? {
                        Some(()) => continue, // recorded as a library use
                        None => self.plan_node(it)?,
                    };
                    acc = Some(match acc {
                        None => u,
                        Some(a) => {
                            self.stats.merges += 1;
                            self.push_unit(
                                Op::MergeStep { a, b: u },
                                vec![a, u],
                                "merge".into(),
                                1,
                                0,
                            )
                        }
                    });
                }
                acc.ok_or_else(|| {
                    EvalError::Misplaced(
                        "merge of only shared libraries produces an empty client".into(),
                    )
                })
            }
            MNode::Override(a, b) => {
                let ua = self.plan_node(a)?;
                let ub = self.plan_node(b)?;
                self.stats.merges += 1;
                Ok(self.push_unit(
                    Op::OverrideStep { a: ua, b: ub },
                    vec![ua, ub],
                    "override".into(),
                    1,
                    0,
                ))
            }
            MNode::Rename {
                pattern,
                replacement,
                target,
                operand,
            } => {
                let u = self.plan_node(operand)?;
                Ok(self.push_unit(
                    Op::Rename {
                        pattern: pattern.clone(),
                        replacement: replacement.clone(),
                        target: *target,
                        operand: u,
                    },
                    vec![u],
                    "rename".into(),
                    0,
                    0,
                ))
            }
            MNode::Hide { pattern, operand } => {
                let u = self.plan_node(operand)?;
                Ok(self.push_unit(
                    Op::Hide {
                        pattern: pattern.clone(),
                        operand: u,
                    },
                    vec![u],
                    "hide".into(),
                    0,
                    0,
                ))
            }
            MNode::Show { pattern, operand } => {
                let u = self.plan_node(operand)?;
                Ok(self.push_unit(
                    Op::Show {
                        pattern: pattern.clone(),
                        operand: u,
                    },
                    vec![u],
                    "show".into(),
                    0,
                    0,
                ))
            }
            MNode::Restrict { pattern, operand } => {
                let u = self.plan_node(operand)?;
                Ok(self.push_unit(
                    Op::Restrict {
                        pattern: pattern.clone(),
                        operand: u,
                    },
                    vec![u],
                    "restrict".into(),
                    0,
                    0,
                ))
            }
            MNode::Project { pattern, operand } => {
                let u = self.plan_node(operand)?;
                Ok(self.push_unit(
                    Op::Project {
                        pattern: pattern.clone(),
                        operand: u,
                    },
                    vec![u],
                    "project".into(),
                    0,
                    0,
                ))
            }
            MNode::CopyAs {
                pattern,
                replacement,
                operand,
            } => {
                let u = self.plan_node(operand)?;
                Ok(self.push_unit(
                    Op::CopyAs {
                        pattern: pattern.clone(),
                        replacement: replacement.clone(),
                        operand: u,
                    },
                    vec![u],
                    "copy_as".into(),
                    0,
                    0,
                ))
            }
            MNode::Freeze { pattern, operand } => {
                let u = self.plan_node(operand)?;
                Ok(self.push_unit(
                    Op::Freeze {
                        pattern: pattern.clone(),
                        operand: u,
                    },
                    vec![u],
                    "freeze".into(),
                    0,
                    0,
                ))
            }
            MNode::Initializers(o) => {
                let u = self.plan_node(o)?;
                Ok(self.push_unit(
                    Op::Initializers { operand: u },
                    vec![u],
                    "initializers".into(),
                    0,
                    0,
                ))
            }
            MNode::Source { lang, code } => {
                self.stats.source_compiles += 1;
                Ok(self.push_unit(
                    Op::Source {
                        lang: lang.clone(),
                        code: code.clone(),
                    },
                    Vec::new(),
                    format!("source {lang}"),
                    0,
                    1,
                ))
            }
            MNode::Specialize { kind, operand } => match kind {
                SpecKind::Static | SpecKind::DynamicImpl | SpecKind::Constrained(_) => {
                    self.plan_node(operand)
                }
                SpecKind::Dynamic => {
                    let impl_unit = self.plan_node(operand)?;
                    let mut deps = vec![impl_unit];
                    if let Some(prev) = self.last_dyn {
                        deps.push(prev);
                    }
                    let u = self.push_unit(
                        Op::DynStubs { operand: impl_unit },
                        deps,
                        "dyn-stubs".into(),
                        0,
                        0,
                    );
                    self.last_dyn = Some(u);
                    Ok(u)
                }
            },
        }
    }

    fn plan_leaf(&mut self, path: &str) -> Result<usize, EvalError> {
        self.record(path);
        match self.ctx.resolve(path)? {
            ResolvedNode::Object(obj) => {
                self.stats.leaves += 1;
                Ok(self.push_unit(
                    Op::Ready(Module::from_arc(obj)),
                    Vec::new(),
                    format!("leaf {path}"),
                    0,
                    0,
                ))
            }
            ResolvedNode::Meta(bp) => self.plan_meta(path, &bp),
        }
    }

    fn plan_meta(&mut self, path: &str, bp: &Blueprint) -> Result<usize, EvalError> {
        if let Some(pos) = self.visiting.iter().position(|p| p == path) {
            return Err(EvalError::Cycle(cycle_chain(&self.visiting[pos..], path)));
        }
        self.visiting.push(path.to_string());
        let result = self.plan_node(&bp.root);
        self.visiting.pop();
        result
    }

    fn plan_library_candidate(&mut self, n: &MNode) -> Result<Option<()>, EvalError> {
        match n {
            MNode::Specialize {
                kind: SpecKind::Constrained(cs),
                operand,
            } => {
                let unit = self.plan_node(operand)?;
                self.libraries.push((leaf_name(operand), unit, cs.clone()));
                Ok(Some(()))
            }
            MNode::Leaf(path) => {
                self.record(path);
                match self.ctx.resolve(path)? {
                    ResolvedNode::Meta(bp) if !bp.constraints.is_empty() => {
                        let unit = self.plan_meta(path, &bp)?;
                        self.libraries
                            .push((path.clone(), unit, bp.constraints.clone()));
                        Ok(Some(()))
                    }
                    _ => Ok(None),
                }
            }
            _ => Ok(None),
        }
    }

    fn plan_collect_library_uses(&mut self, n: &MNode) -> Result<(), EvalError> {
        match n {
            MNode::Merge(items) => {
                for it in items {
                    if self.plan_library_candidate(it)?.is_none() {
                        self.plan_collect_library_uses(it)?;
                    }
                }
                Ok(())
            }
            MNode::Override(a, b) => {
                self.plan_collect_library_uses(a)?;
                self.plan_collect_library_uses(b)
            }
            MNode::Rename { operand, .. }
            | MNode::Hide { operand, .. }
            | MNode::Show { operand, .. }
            | MNode::Restrict { operand, .. }
            | MNode::Project { operand, .. }
            | MNode::CopyAs { operand, .. }
            | MNode::Freeze { operand, .. }
            | MNode::Specialize { operand, .. } => self.plan_collect_library_uses(operand),
            MNode::Initializers(o) => self.plan_collect_library_uses(o),
            MNode::Leaf(_) | MNode::Source { .. } => Ok(()),
        }
    }
}

/// Shared state of one execution: result slots, dependency counters,
/// per-worker deques, and the first (smallest-ordinal) error.
struct Exec<'a> {
    units: &'a [Unit],
    ctx: &'a dyn EvalContext,
    results: Vec<OnceLock<Module>>,
    pending: Vec<AtomicUsize>,
    dependents: Vec<Vec<usize>>,
    queues: Vec<Mutex<VecDeque<usize>>>,
    remaining: AtomicUsize,
    /// Smallest-ordinal failure so far. Units with larger ordinals are
    /// discarded unexecuted once set (their dependents transitively
    /// follow, since dependents always have larger ordinals).
    error: Mutex<Option<(usize, EvalError)>>,
    gate: Mutex<()>,
    cv: Condvar,
    /// Injected-failure hook: the unit ordinal that must panic.
    fail_unit: Option<usize>,
    fail_armed: AtomicBool,
}

impl<'a> Exec<'a> {
    fn run_workers(&self, workers: usize) {
        std::thread::scope(|s| {
            for w in 0..workers {
                s.spawn(move || self.worker(w));
            }
        });
    }

    fn worker(&self, me: usize) {
        loop {
            if self.remaining.load(Ordering::Acquire) == 0 {
                self.cv.notify_all();
                return;
            }
            if let Some(u) = self.pop(me) {
                self.run_unit(u, me);
                continue;
            }
            // Nothing runnable: park until a completion publishes new
            // ready units (timeout bounds any lost-wakeup window).
            let g = lock(&self.gate);
            if self.remaining.load(Ordering::Acquire) == 0 {
                self.cv.notify_all();
                return;
            }
            let _ = self.cv.wait_timeout(g, Duration::from_millis(1));
        }
    }

    /// LIFO from our own deque (locality), FIFO-steal from the others.
    fn pop(&self, me: usize) -> Option<usize> {
        if let Some(u) = lock(&self.queues[me]).pop_back() {
            return Some(u);
        }
        let n = self.queues.len();
        for d in 1..n {
            if let Some(u) = lock(&self.queues[(me + d) % n]).pop_front() {
                return Some(u);
            }
        }
        None
    }

    fn run_unit(&self, u: usize, me: usize) {
        let discard = {
            let err = lock(&self.error);
            matches!(&*err, Some((o, _)) if u > *o)
        };
        if !discard {
            let outcome = catch_unwind(AssertUnwindSafe(|| self.compute(u)));
            match outcome {
                Ok(Ok(m)) => {
                    for (key, deps) in &self.units[u].puts {
                        self.ctx.cache_put(*key, &m, deps);
                    }
                    let _ = self.results[u].set(m);
                }
                Ok(Err(e)) => self.set_error(u, e),
                Err(panic) => self.set_error(u, EvalError::Worker(panic_message(&*panic))),
            }
        }
        // Completed or discarded either way: release dependents (they
        // discard themselves if the error precedes them) and wake
        // anyone parked.
        for &d in &self.dependents[u] {
            if self.pending[d].fetch_sub(1, Ordering::AcqRel) == 1 {
                lock(&self.queues[me]).push_back(d);
            }
        }
        self.remaining.fetch_sub(1, Ordering::AcqRel);
        drop(lock(&self.gate));
        self.cv.notify_all();
    }

    fn set_error(&self, u: usize, e: EvalError) {
        let mut err = lock(&self.error);
        match &*err {
            Some((o, _)) if *o <= u => {}
            _ => *err = Some((u, e)),
        }
    }

    fn result(&self, u: usize) -> &Module {
        self.results[u].get().expect("dependency unit completed")
    }

    fn compute(&self, u: usize) -> Result<Module, EvalError> {
        if self.fail_unit == Some(u) && self.fail_armed.swap(false, Ordering::AcqRel) {
            panic!("injected work-unit panic");
        }
        match &self.units[u].op {
            Op::Ready(m) => Ok(m.clone()),
            Op::MergeStep { a, b } => Ok(self.result(*a).merge_with(self.result(*b))?),
            Op::OverrideStep { a, b } => Ok(self.result(*a).override_with(self.result(*b))?),
            Op::Rename {
                pattern,
                replacement,
                target,
                operand,
            } => Ok(self
                .result(*operand)
                .rename(pattern, replacement, *target)?),
            Op::Hide { pattern, operand } => Ok(self.result(*operand).hide(pattern)?),
            Op::Show { pattern, operand } => Ok(self.result(*operand).show(pattern)?),
            Op::Restrict { pattern, operand } => Ok(self.result(*operand).restrict(pattern)?),
            Op::Project { pattern, operand } => Ok(self.result(*operand).project(pattern)?),
            Op::CopyAs {
                pattern,
                replacement,
                operand,
            } => Ok(self.result(*operand).copy_as(pattern, replacement)?),
            Op::Freeze { pattern, operand } => Ok(self.result(*operand).freeze(pattern)?),
            Op::Initializers { operand } => Ok(self.result(*operand).initializers()?),
            Op::Source { lang, code } => {
                let obj = compile_source(lang, code, "<source>")?;
                Ok(Module::from_object(obj))
            }
            Op::DynStubs { operand } => {
                let impl_module = self.result(*operand);
                let key = impl_module.content_hash().with_str("dynamic-impl");
                let lib_id = self.ctx.register_dynamic_impl(key, impl_module)?;
                let mut exports = impl_module.exports()?;
                exports.sort();
                Ok(Module::from_object(make_partial_stubs(lib_id, &exports)))
            }
        }
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".to_string()
    }
}

/// Executes a plan on `workers` scoped threads; returns every unit's
/// module, or the smallest-ordinal error.
fn execute(
    units: &[Unit],
    ctx: &dyn EvalContext,
    workers: usize,
    fail_unit: Option<usize>,
) -> Result<Vec<Module>, EvalError> {
    let n = units.len();
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut pending: Vec<AtomicUsize> = Vec::with_capacity(n);
    for (i, u) in units.iter().enumerate() {
        // A unit may consume the same operand twice (e.g. override of a
        // node with itself); count distinct producers once.
        let mut deps = u.deps.clone();
        deps.sort_unstable();
        deps.dedup();
        for &d in &deps {
            dependents[d].push(i);
        }
        pending.push(AtomicUsize::new(deps.len()));
    }
    let workers = workers.clamp(1, n.max(1));
    let queues: Vec<Mutex<VecDeque<usize>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    // Seed initially-ready units round-robin, in ordinal order.
    let mut seed = 0usize;
    for (i, p) in pending.iter().enumerate() {
        if p.load(Ordering::Relaxed) == 0 {
            lock(&queues[seed % workers]).push_back(i);
            seed += 1;
        }
    }
    let exec = Exec {
        units,
        ctx,
        results: (0..n).map(|_| OnceLock::new()).collect(),
        pending,
        dependents,
        queues,
        remaining: AtomicUsize::new(n),
        error: Mutex::new(None),
        gate: Mutex::new(()),
        cv: Condvar::new(),
        fail_unit,
        fail_armed: AtomicBool::new(fail_unit.is_some()),
    };
    exec.run_workers(workers);
    if let Some((_, e)) = lock(&exec.error).take() {
        return Err(e);
    }
    Ok(exec
        .results
        .into_iter()
        .map(|slot| slot.into_inner().expect("all units completed"))
        .collect())
}

/// Evaluates a blueprint by planning a work-unit DAG and executing it
/// on `jobs` worker threads. The output — module bytes, library list,
/// constraints, statistics, and dependency record — is identical to
/// [`eval_blueprint`](crate::eval_blueprint); only wall-clock (and the
/// schedulable unit DAG reported alongside) differ.
pub fn eval_blueprint_parallel(
    bp: &Blueprint,
    ctx: &dyn EvalContext,
    jobs: usize,
) -> Result<ParallelOutput, EvalError> {
    let mut planner = Planner::new(ctx);
    let plan = planner.plan_node(&bp.root);
    let fail_unit = testhooks::take_if(bp.root.hash()).then_some(planner.units.len() / 2);
    // Execute what was planned even when planning itself failed
    // partway: the planner mirrors the sequential walk, so every unit
    // emitted before the plan error is work the sequential evaluator
    // would have *completed* before reaching the error's position. If
    // one of those units fails, that failure is sequentially first and
    // must be the one reported.
    let results = execute(&planner.units, ctx, jobs, fail_unit).map_err(|e| locate_error(e, bp))?;
    let root_unit = plan.map_err(|e| locate_error(e, bp))?;

    let libraries = planner
        .libraries
        .iter()
        .map(|(name, unit, constraints)| {
            let module = results[*unit].clone();
            LibraryUse {
                name: name.clone(),
                key: module.content_hash(),
                module,
                constraints: constraints.clone(),
            }
        })
        .collect();
    let mut deps = BTreeSet::new();
    for s in planner.scopes {
        deps.extend(s);
    }
    let units = planner
        .units
        .iter()
        .map(|u| UnitReport {
            label: u.label.clone(),
            deps: u.deps.clone(),
            merges: u.merges,
            source_compiles: u.source_compiles,
        })
        .collect();
    Ok(ParallelOutput {
        output: EvalOutput {
            module: results[root_unit].clone(),
            libraries,
            constraints: bp.constraints.clone(),
            stats: planner.stats,
            deps,
        },
        units,
    })
}

/// Test-only failure injection, compiled in but inert unless armed.
#[doc(hidden)]
pub mod testhooks {
    use omos_obj::ContentHash;
    use std::sync::Mutex;

    static FAIL_EVAL_OF: Mutex<Option<ContentHash>> = Mutex::new(None);

    /// Arms a one-shot injected panic: the next parallel evaluation
    /// whose root node hashes to `root_key` panics inside one of its
    /// work units.
    pub fn arm_panic(root_key: ContentHash) {
        *FAIL_EVAL_OF.lock().unwrap_or_else(|e| e.into_inner()) = Some(root_key);
    }

    pub(crate) fn take_if(root_key: ContentHash) -> bool {
        let mut armed = FAIL_EVAL_OF.lock().unwrap_or_else(|e| e.into_inner());
        if *armed == Some(root_key) {
            *armed = None;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::tests::{ls_world, TestCtx};
    use crate::eval_blueprint;

    fn assert_matches_sequential(src: &str, build: impl Fn() -> TestCtx) {
        let seq_ctx = build();
        let bp = Blueprint::parse(src).unwrap();
        let seq = eval_blueprint(&bp, &seq_ctx).unwrap();
        for jobs in [1, 2, 8] {
            let par_ctx = build();
            let par = eval_blueprint_parallel(&bp, &par_ctx, jobs).unwrap();
            assert_eq!(
                seq.module.content_hash(),
                par.output.module.content_hash(),
                "module bytes at jobs={jobs}"
            );
            assert_eq!(seq.stats, par.output.stats, "stats at jobs={jobs}");
            assert_eq!(seq.deps, par.output.deps, "deps at jobs={jobs}");
            assert_eq!(
                seq.libraries.len(),
                par.output.libraries.len(),
                "library count at jobs={jobs}"
            );
            for (a, b) in seq.libraries.iter().zip(par.output.libraries.iter()) {
                assert_eq!(a.name, b.name);
                assert_eq!(a.key, b.key);
                assert_eq!(a.constraints, b.constraints);
            }
        }
    }

    #[test]
    fn parallel_matches_sequential_on_merges_and_views() {
        assert_matches_sequential(
            r#"(hide "^_puts$" (merge /obj/ls.o /libc/stdio.o))"#,
            ls_world,
        );
    }

    #[test]
    fn parallel_matches_sequential_with_libraries_and_source() {
        assert_matches_sequential(
            r#"(merge (source "c" "int undef_var = 0;\n") /obj/ls.o /lib/libc)"#,
            || {
                let mut ctx = ls_world();
                ctx.add_meta(
                    "/lib/libc",
                    "(constraint-list \"T\" 0x1000000)\n(merge /libc/stdio.o)",
                );
                ctx
            },
        );
    }

    #[test]
    fn parallel_reports_sequentially_first_error() {
        // /nope fails at plan time; the reported error matches the
        // sequential walk's first failure, located in the source.
        let ctx = ls_world();
        let bp = Blueprint::parse("(merge /obj/ls.o /nope /alsono)").unwrap();
        let seq_err = eval_blueprint(&bp, &ctx).unwrap_err();
        let par_err = eval_blueprint_parallel(&bp, &ctx, 4).unwrap_err();
        assert_eq!(seq_err, par_err);
    }

    #[test]
    fn parallel_detects_meta_cycles_with_full_chain() {
        let mut ctx = TestCtx::default();
        ctx.add_meta("/meta/a", "(merge /meta/b /meta/b)");
        ctx.add_meta("/meta/b", "(merge /meta/a /meta/a)");
        let bp = Blueprint::parse("(merge /meta/a /meta/a)").unwrap();
        let Err(EvalError::Cycle(chain)) = eval_blueprint_parallel(&bp, &ctx, 2) else {
            panic!("expected cycle error");
        };
        assert!(
            chain.starts_with("/meta/a -> /meta/b -> /meta/a"),
            "got {chain}"
        );
    }

    #[test]
    fn injected_panic_surfaces_as_worker_error() {
        let ctx = ls_world();
        let bp = Blueprint::parse("(merge /obj/ls.o /libc/stdio.o)").unwrap();
        testhooks::arm_panic(bp.root.hash());
        let err = eval_blueprint_parallel(&bp, &ctx, 4).unwrap_err();
        assert!(
            matches!(&err, EvalError::Worker(m) if m.contains("injected")),
            "got {err:?}"
        );
        // The hook is one-shot: the next evaluation succeeds, and the
        // cache was never poisoned by the aborted run.
        let out = eval_blueprint_parallel(&bp, &ctx, 4).unwrap();
        let seq = eval_blueprint(&bp, &ls_world()).unwrap();
        assert_eq!(out.output.module.content_hash(), seq.module.content_hash());
    }

    #[test]
    fn dynamic_registration_order_matches_sequential() {
        let src = r#"(merge /obj/ls.o
            (specialize "lib-dynamic" /libc/stdio.o)
            (specialize "lib-dynamic" /obj/extra.o))"#;
        let build = || {
            let mut ctx = ls_world();
            ctx.add_asm("/obj/extra.o", ".text\n.global _extra\n_extra: ret\n");
            ctx
        };
        let bp = Blueprint::parse(src).unwrap();
        let seq_ctx = build();
        let _ = eval_blueprint(&bp, &seq_ctx).unwrap();
        let par_ctx = build();
        let _ = eval_blueprint_parallel(&bp, &par_ctx, 8).unwrap();
        let seq_order: Vec<_> = seq_ctx
            .dynamic
            .lock()
            .unwrap()
            .iter()
            .map(|(k, _)| *k)
            .collect();
        let par_order: Vec<_> = par_ctx
            .dynamic
            .lock()
            .unwrap()
            .iter()
            .map(|(k, _)| *k)
            .collect();
        assert_eq!(seq_order, par_order, "library ids assigned in DFS order");
    }
}
