//! The transport-differential oracle.
//!
//! A transport is allowed to change exactly one thing: what the
//! *client* is billed for moving messages. For any history of requests,
//! all five transports — the paper's three per-request copying
//! transports plus the batched (`pipelined`) and shared-memory
//! (`shm-ring`) ones — must produce byte-identical replies, identical
//! canonical resolution manifests, identical `server_ns`, and identical
//! program behavior. Only the transport-billed nanoseconds and the
//! [`IpcStats`] may differ between transports, and those must be a
//! deterministic function of the history per transport.

use std::sync::Arc;

use proptest::prelude::*;

use omos::core::client::run_under_omos;
use omos::core::spill::{SpillStats, SpillTier};
use omos::core::{lint_request, CachedImage, ImageCache, Omos};
use omos::isa::{assemble, StopReason};
use omos::link::encode_image;
use omos::os::ipc::{ClientSession, IpcStats, Transport};
use omos::os::{CostModel, InMemFs, SimClock};

const NLIBS: usize = 3;

/// Image-cache shape a replay runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CacheCfg {
    /// The default unbounded tier 1 (no evictions ever).
    Unbounded,
    /// A one-byte tier 1 over an unbounded spill tier: every insert
    /// evicts everything else into tier 2, so any revisited image comes
    /// back through a verified fault-in instead of a relink.
    TieredTiny,
}

/// A server with the given transport and cache shape.
fn make_server(transport: Transport, cfg: CacheCfg) -> Omos {
    let cost = CostModel::hpux();
    match cfg {
        CacheCfg::Unbounded => Omos::new(cost, transport),
        CacheCfg::TieredTiny => Omos::with_image_cache(
            cost,
            transport,
            ImageCache::with_shards(1, 1)
                .with_spill(Arc::new(SpillTier::new(u64::MAX, CostModel::hpux()))),
        ),
    }
}

/// Binds a small world: three constraint-placed libraries, four
/// programs over different subsets of them, a blueprint that lints
/// dirty, and one partial-image (dynamic) program.
fn world_cfg(transport: Transport, vals: &[u8], cfg: CacheCfg) -> Omos {
    let s = make_server(transport, cfg);
    populate(&s, vals);
    s
}

/// Binds the world's objects and blueprints into an existing server.
fn populate(s: &Omos, vals: &[u8]) {
    for (i, &val) in vals.iter().enumerate() {
        s.namespace.bind_object(
            &format!("/obj/lib{i}.o"),
            assemble(
                &format!("lib{i}.o"),
                &format!(".text\n.global _f{i}\n_f{i}: li r1, {val}\n ret\n"),
            )
            .unwrap(),
        );
        s.namespace
            .bind_blueprint(
                &format!("/lib/l{i}"),
                &format!(
                    "(constraint-list \"T\" {:#x} \"D\" {:#x})\n(merge /obj/lib{i}.o)",
                    0x0100_0000u64 + (i as u64) * 0x0010_0000,
                    0x4100_0000u64 + (i as u64) * 0x0010_0000,
                ),
            )
            .unwrap();
    }
    for (p, libs) in PROGRAMS {
        let calls: String = libs.iter().map(|i| format!(" call _f{i}\n")).collect();
        s.namespace.bind_object(
            &format!("/obj/{p}.o"),
            assemble(
                &format!("{p}.o"),
                &format!(".text\n.global _start\n_start:\n{calls} sys 0\n"),
            )
            .unwrap(),
        );
        let uses: String = libs.iter().map(|i| format!(" /lib/l{i}")).collect();
        s.namespace
            .bind_blueprint(&format!("/bin/{p}"), &format!("(merge /obj/{p}.o{uses})"))
            .unwrap();
    }
    // A blueprint with a dangling reference, so lint histories carry
    // nonzero findings (reply bytes depend on the rendered text).
    s.namespace
        .bind_blueprint("/bin/dirty", "(merge /obj/a.o)")
        .unwrap();
    // A partial-image program: first call into the library does the
    // lazy OMOS_LOOKUP round trip through the process runtime.
    s.namespace
        .bind_blueprint(
            "/bin/dyn",
            r#"(merge /obj/a.o (specialize "lib-dynamic" /obj/lib0.o))"#,
        )
        .unwrap();
}

/// Programs and the libraries each uses.
const PROGRAMS: [(&str, &[usize]); 4] =
    [("a", &[0]), ("b", &[1, 2]), ("c", &[0, 1, 2]), ("d", &[2])];

/// One step of a client history.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Instantiate `/bin/<i>` through a client session.
    Instantiate(usize),
    /// Lint a program (opaque reply: rendered findings).
    Lint(usize),
    /// Run the partial-image program end to end (exec + lazy lookup).
    Run,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..PROGRAMS.len()).prop_map(Op::Instantiate),
        // One past the end lints `/bin/dirty`, whose findings render
        // nonzero reply bytes.
        (0usize..PROGRAMS.len() + 1).prop_map(Op::Lint),
        Just(Op::Run),
    ]
}

/// The lint target for an `Op::Lint(i)` index.
fn lint_target(i: usize) -> String {
    if i < PROGRAMS.len() {
        format!("/bin/{}", PROGRAMS[i].0)
    } else {
        "/bin/dirty".to_string()
    }
}

/// Everything the server said during one history, transport-billing
/// excluded: this is what the oracle requires to be identical across
/// transports.
#[derive(Debug, PartialEq, Eq)]
struct ServerSide {
    /// Per-instantiate: program index, `server_ns`, manifest hash, and
    /// the concatenated image bytes.
    replies: Vec<(usize, u64, u64, Vec<u8>)>,
    /// Per-lint: program index and the rendered findings.
    lints: Vec<(usize, Vec<String>)>,
    /// Per-run: the stop reason (all must exit identically).
    runs: Vec<StopReason>,
}

/// What only the transport may change — still required to be
/// deterministic per transport.
#[derive(Debug, PartialEq, Eq)]
struct ClientBill {
    elapsed_ns: u64,
    system_ns: u64,
    stats: IpcStats,
}

/// Replays `history` over `transport` on a fresh world.
fn replay(
    transport: Transport,
    vals: &[u8],
    history: &[Op],
    window: usize,
) -> (ServerSide, ClientBill) {
    let (side, bill, _) = replay_cfg(transport, vals, history, window, CacheCfg::Unbounded);
    (side, bill)
}

/// Replays `history` over `transport` with the given cache shape,
/// additionally reporting the spill tier's counters (zeroes when the
/// shape has no spill tier).
fn replay_cfg(
    transport: Transport,
    vals: &[u8],
    history: &[Op],
    window: usize,
    cfg: CacheCfg,
) -> (ServerSide, ClientBill, SpillStats) {
    let server = world_cfg(transport, vals, cfg);
    let cost = CostModel::hpux();
    let mut clock = SimClock::new();
    let mut session = ClientSession::with_window(transport, window);
    let mut extra = IpcStats::default();
    let mut fs = InMemFs::new();
    let mut side = ServerSide {
        replies: Vec::new(),
        lints: Vec::new(),
        runs: Vec::new(),
    };
    for (tag, op) in history.iter().enumerate() {
        match *op {
            Op::Instantiate(i) => {
                let reply = server
                    .instantiate(&format!("/bin/{}", PROGRAMS[i].0))
                    .expect("programs instantiate");
                let mut bytes = encode_image(&reply.program.image);
                for lib in &reply.libraries {
                    bytes.extend_from_slice(&encode_image(&lib.image));
                }
                side.replies
                    .push((i, reply.server_ns, reply.manifest.0, bytes));
                session.request(
                    &mut clock,
                    &cost,
                    tag as u64,
                    128,
                    reply.reply_shape(),
                    reply.server_ns,
                );
            }
            Op::Lint(i) => {
                let diags = lint_request(&server, &lint_target(i), &mut clock, &cost, &mut extra)
                    .expect("lint answers");
                side.lints
                    .push((i, diags.iter().map(|d| d.render()).collect()));
            }
            Op::Run => {
                let out = run_under_omos(
                    &server, "/bin/dyn", false, &mut clock, &cost, &mut fs, 100_000,
                )
                .expect("dyn program runs");
                side.runs.push(out.stop);
                extra += out.ipc;
            }
        }
    }
    session.drain(&mut clock, &cost);
    let mut stats = session.stats;
    stats += extra;
    let bill = ClientBill {
        elapsed_ns: clock.elapsed_ns,
        system_ns: clock.system_ns,
        stats,
    };
    let spill = server.images.spill().map(|s| s.stats()).unwrap_or_default();
    (side, bill, spill)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The oracle: arbitrary histories produce byte-identical replies,
    /// manifests, `server_ns`, findings, and program behavior over all
    /// five transports; the per-transport bill is deterministic.
    #[test]
    fn all_transports_agree_on_everything_but_the_bill(
        vals in proptest::collection::vec(1u8..200, NLIBS..=NLIBS),
        history in proptest::collection::vec(op_strategy(), 1..16),
        window in prop_oneof![Just(1usize), Just(4usize), Just(32usize)],
    ) {
        let (want, _) = replay(Transport::MachIpc, &vals, &history, window);
        for transport in Transport::ALL {
            let (side, bill) = replay(transport, &vals, &history, window);
            prop_assert_eq!(
                &side, &want,
                "transport {} changed server-visible bytes", transport.name()
            );
            // Billing is a pure function of the history per transport.
            let (side2, bill2) = replay(transport, &vals, &history, window);
            prop_assert_eq!(&side2, &side);
            prop_assert_eq!(
                &bill2, &bill,
                "transport {} bills nondeterministically", transport.name()
            );
        }
    }
}

/// The five transports bill *differently* on a byte-heavy history —
/// the oracle above would pass vacuously if every tariff were equal.
#[test]
fn transports_actually_differ_in_billing() {
    let vals = [7u8, 11, 13];
    let history: Vec<Op> = (0..8)
        .map(|i| Op::Instantiate(i % PROGRAMS.len()))
        .collect();
    let mut seen = std::collections::BTreeSet::new();
    for transport in Transport::ALL {
        let (_, bill) = replay(transport, &vals, &history, 8);
        seen.insert(bill.elapsed_ns);
    }
    assert_eq!(
        seen.len(),
        Transport::ALL.len(),
        "every transport should price this history distinctly: {seen:?}"
    );
}

/// The shared-memory transport moves descriptors, not handle bytes,
/// and grants each content key once per session.
#[test]
fn shm_ring_grants_once_and_moves_fewer_bytes() {
    let vals = [7u8, 11, 13];
    let history: Vec<Op> = (0..6).map(|_| Op::Instantiate(2)).collect();
    let (_, mach) = replay(Transport::MachIpc, &vals, &history, 1);
    let (_, shm) = replay(Transport::ShmRing, &vals, &history, 1);
    assert!(shm.stats.bytes < mach.stats.bytes);
    // Program image + 3 libraries, granted exactly once each.
    assert_eq!(shm.stats.mappings, 4);
    assert_eq!(shm.stats.descriptors, 6 * 4);
    assert_eq!(shm.stats.retired, shm.stats.descriptors);
}

/// Regression (failing-first): a key that was evicted and *rebuilt*
/// must re-bill its shared-memory mapping. The grant table used to
/// deduplicate on the content key alone, so a session that mapped an
/// image, lost it to eviction, and received the rebuilt instance under
/// the same key silently reused the stale grant — the client was never
/// billed for installing the new mapping. Descriptors now carry the
/// cache-instance epoch and a moved epoch re-bills.
#[test]
fn evicted_and_rebuilt_image_rebills_the_mapping() {
    let vals = [7u8, 11, 13];
    let cost = CostModel::hpux();
    // One-byte tier 1 with NO spill tier: every insert evicts everything
    // else, and a revisited image must be relinked from scratch (a new
    // cache instance under the same content key).
    let server = Omos::with_image_cache(cost, Transport::ShmRing, ImageCache::with_shards(1, 1));
    populate(&server, &vals);
    let mut clock = SimClock::new();
    let mut session = ClientSession::with_window(Transport::ShmRing, 1);
    let r1 = server.instantiate("/bin/a").expect("a instantiates");
    session.request(&mut clock, &cost, 0, 128, r1.reply_shape(), r1.server_ns);
    assert_eq!(session.stats.mappings, 2, "program a + lib0 granted");

    // Invalidate the cached reply with an idempotent re-bind of the
    // same object bytes: the resolution (and every content key) is
    // unchanged, but the images were evicted, so the server relinks
    // them as new instances.
    server.namespace.bind_object(
        "/obj/a.o",
        assemble("a.o", ".text\n.global _start\n_start:\n call _f0\n sys 0\n").unwrap(),
    );
    let r2 = server.instantiate("/bin/a").expect("a re-instantiates");
    assert!(!r2.cache_hit, "the re-bind invalidated the cached reply");
    assert_eq!(r1.manifest, r2.manifest, "identical resolution");
    assert_eq!(r1.program.key, r2.program.key, "identical content keys");
    session.request(&mut clock, &cost, 1, 128, r2.reply_shape(), r2.server_ns);
    assert_eq!(
        session.stats.mappings, 4,
        "rebuilt instances under the same keys must re-bill both mappings"
    );

    // A true reply-cache hit hands back the *same* instances — that
    // grant is still live and must NOT re-bill.
    let r3 = server.instantiate("/bin/a").expect("a hits");
    assert!(r3.cache_hit);
    session.request(&mut clock, &cost, 2, 128, r3.reply_shape(), r3.server_ns);
    assert_eq!(
        session.stats.mappings, 4,
        "an unchanged instance stays deduplicated"
    );
}

/// Tier-2 oracle: a run whose tier 1 is one byte backed by a spill
/// tier answers every history byte-identically (replies, manifests,
/// `server_ns`, lint findings, program behavior) to a never-evicted
/// run, on all five transports — fault-ins are hits, not rebuilds.
#[test]
fn tier2_fault_in_is_invisible_on_every_transport() {
    let vals = [7u8, 11, 13];
    // Revisit shared libraries after they were pushed out of tier 1:
    // `c` needs lib0..2 after `a`, `b`, and `d` cycled them out; the
    // trailing repeats re-probe everything once more.
    let history = vec![
        Op::Instantiate(0),
        Op::Instantiate(1),
        Op::Instantiate(3),
        Op::Run,
        Op::Instantiate(2),
        Op::Lint(0),
        Op::Instantiate(2),
        Op::Instantiate(0),
    ];
    for transport in Transport::ALL {
        let (want, _, _) = replay_cfg(transport, &vals, &history, 4, CacheCfg::Unbounded);
        let (got, _, spill) = replay_cfg(transport, &vals, &history, 4, CacheCfg::TieredTiny);
        assert_eq!(
            got,
            want,
            "tier-2 fault-ins changed server-visible bytes on {}",
            transport.name()
        );
        assert!(
            spill.fault_ins > 0,
            "the tiered run actually faulted images back in on {}",
            transport.name()
        );
        assert_eq!(
            spill.verify_drops,
            0,
            "no spilled image failed verification on {}",
            transport.name()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// spill ∘ fault-in is an identity on image bytes: whatever tier 1
    /// evicts into the spill store comes back byte-identical (sealed
    /// encoding, and therefore frames, symbols, and segments).
    #[test]
    fn spill_then_fault_in_is_identity_on_image_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 1..1024),
        zero in 0u64..512,
        rebuild_ns in 0u64..1_000_000,
    ) {
        let image = omos::link::LinkedImage {
            name: "spilled".into(),
            segments: vec![omos::link::Segment {
                name: ".text".into(),
                kind: omos::obj::SectionKind::Text,
                vaddr: 0x1000,
                bytes,
                zero,
            }],
            symbols: std::collections::HashMap::new(),
            entry: None,
        };
        let original = encode_image(&image);
        let spill = Arc::new(SpillTier::new(u64::MAX, CostModel::hpux()));
        let cache = ImageCache::with_shards(1, 1).with_spill(Arc::clone(&spill));
        cache.insert(CachedImage {
            key: omos::obj::ContentHash(1),
            frames: omos::os::ImageFrames::from_image(&image),
            image,
            link_stats: omos::link::LinkStats::default(),
            rebuild_ns,
            epoch: 0,
        });
        // A second insert pushes the first image out into the tier...
        let evictor = omos::link::LinkedImage {
            name: "evictor".into(),
            segments: vec![omos::link::Segment {
                name: ".text".into(),
                kind: omos::obj::SectionKind::Text,
                vaddr: 0x2000,
                bytes: vec![0xEE; 8],
                zero: 0,
            }],
            symbols: std::collections::HashMap::new(),
            entry: None,
        };
        cache.insert(CachedImage {
            key: omos::obj::ContentHash(2),
            frames: omos::os::ImageFrames::from_image(&evictor),
            image: evictor,
            link_stats: omos::link::LinkStats::default(),
            rebuild_ns: 0,
            epoch: 0,
        });
        prop_assert_eq!(spill.stats().spills, 1);
        // ...and the miss faults it back, byte-identical.
        let back = cache.get(omos::obj::ContentHash(1)).expect("fault-in");
        prop_assert_eq!(encode_image(&back.image), original);
        prop_assert_eq!(back.rebuild_ns, rebuild_ns);
        prop_assert_eq!(spill.stats().fault_ins, 1);
        prop_assert_eq!(spill.stats().verify_drops, 0);
    }
}
