//! The transport-differential oracle.
//!
//! A transport is allowed to change exactly one thing: what the
//! *client* is billed for moving messages. For any history of requests,
//! all five transports — the paper's three per-request copying
//! transports plus the batched (`pipelined`) and shared-memory
//! (`shm-ring`) ones — must produce byte-identical replies, identical
//! canonical resolution manifests, identical `server_ns`, and identical
//! program behavior. Only the transport-billed nanoseconds and the
//! [`IpcStats`] may differ between transports, and those must be a
//! deterministic function of the history per transport.

use proptest::prelude::*;

use omos::core::client::run_under_omos;
use omos::core::{lint_request, Omos};
use omos::isa::{assemble, StopReason};
use omos::link::encode_image;
use omos::os::ipc::{ClientSession, IpcStats, Transport};
use omos::os::{CostModel, InMemFs, SimClock};

const NLIBS: usize = 3;

/// Binds a small world: three constraint-placed libraries, four
/// programs over different subsets of them, a blueprint that lints
/// dirty, and one partial-image (dynamic) program.
fn world(transport: Transport, vals: &[u8]) -> Omos {
    let s = Omos::new(CostModel::hpux(), transport);
    for (i, &val) in vals.iter().enumerate() {
        s.namespace.bind_object(
            &format!("/obj/lib{i}.o"),
            assemble(
                &format!("lib{i}.o"),
                &format!(".text\n.global _f{i}\n_f{i}: li r1, {val}\n ret\n"),
            )
            .unwrap(),
        );
        s.namespace
            .bind_blueprint(
                &format!("/lib/l{i}"),
                &format!(
                    "(constraint-list \"T\" {:#x} \"D\" {:#x})\n(merge /obj/lib{i}.o)",
                    0x0100_0000u64 + (i as u64) * 0x0010_0000,
                    0x4100_0000u64 + (i as u64) * 0x0010_0000,
                ),
            )
            .unwrap();
    }
    for (p, libs) in PROGRAMS {
        let calls: String = libs.iter().map(|i| format!(" call _f{i}\n")).collect();
        s.namespace.bind_object(
            &format!("/obj/{p}.o"),
            assemble(
                &format!("{p}.o"),
                &format!(".text\n.global _start\n_start:\n{calls} sys 0\n"),
            )
            .unwrap(),
        );
        let uses: String = libs.iter().map(|i| format!(" /lib/l{i}")).collect();
        s.namespace
            .bind_blueprint(&format!("/bin/{p}"), &format!("(merge /obj/{p}.o{uses})"))
            .unwrap();
    }
    // A blueprint with a dangling reference, so lint histories carry
    // nonzero findings (reply bytes depend on the rendered text).
    s.namespace
        .bind_blueprint("/bin/dirty", "(merge /obj/a.o)")
        .unwrap();
    // A partial-image program: first call into the library does the
    // lazy OMOS_LOOKUP round trip through the process runtime.
    s.namespace
        .bind_blueprint(
            "/bin/dyn",
            r#"(merge /obj/a.o (specialize "lib-dynamic" /obj/lib0.o))"#,
        )
        .unwrap();
    s
}

/// Programs and the libraries each uses.
const PROGRAMS: [(&str, &[usize]); 4] =
    [("a", &[0]), ("b", &[1, 2]), ("c", &[0, 1, 2]), ("d", &[2])];

/// One step of a client history.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Instantiate `/bin/<i>` through a client session.
    Instantiate(usize),
    /// Lint a program (opaque reply: rendered findings).
    Lint(usize),
    /// Run the partial-image program end to end (exec + lazy lookup).
    Run,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..PROGRAMS.len()).prop_map(Op::Instantiate),
        // One past the end lints `/bin/dirty`, whose findings render
        // nonzero reply bytes.
        (0usize..PROGRAMS.len() + 1).prop_map(Op::Lint),
        Just(Op::Run),
    ]
}

/// The lint target for an `Op::Lint(i)` index.
fn lint_target(i: usize) -> String {
    if i < PROGRAMS.len() {
        format!("/bin/{}", PROGRAMS[i].0)
    } else {
        "/bin/dirty".to_string()
    }
}

/// Everything the server said during one history, transport-billing
/// excluded: this is what the oracle requires to be identical across
/// transports.
#[derive(Debug, PartialEq, Eq)]
struct ServerSide {
    /// Per-instantiate: program index, `server_ns`, manifest hash, and
    /// the concatenated image bytes.
    replies: Vec<(usize, u64, u64, Vec<u8>)>,
    /// Per-lint: program index and the rendered findings.
    lints: Vec<(usize, Vec<String>)>,
    /// Per-run: the stop reason (all must exit identically).
    runs: Vec<StopReason>,
}

/// What only the transport may change — still required to be
/// deterministic per transport.
#[derive(Debug, PartialEq, Eq)]
struct ClientBill {
    elapsed_ns: u64,
    system_ns: u64,
    stats: IpcStats,
}

/// Replays `history` over `transport` on a fresh world.
fn replay(
    transport: Transport,
    vals: &[u8],
    history: &[Op],
    window: usize,
) -> (ServerSide, ClientBill) {
    let server = world(transport, vals);
    let cost = CostModel::hpux();
    let mut clock = SimClock::new();
    let mut session = ClientSession::with_window(transport, window);
    let mut extra = IpcStats::default();
    let mut fs = InMemFs::new();
    let mut side = ServerSide {
        replies: Vec::new(),
        lints: Vec::new(),
        runs: Vec::new(),
    };
    for (tag, op) in history.iter().enumerate() {
        match *op {
            Op::Instantiate(i) => {
                let reply = server
                    .instantiate(&format!("/bin/{}", PROGRAMS[i].0))
                    .expect("programs instantiate");
                let mut bytes = encode_image(&reply.program.image);
                for lib in &reply.libraries {
                    bytes.extend_from_slice(&encode_image(&lib.image));
                }
                side.replies
                    .push((i, reply.server_ns, reply.manifest.0, bytes));
                session.request(
                    &mut clock,
                    &cost,
                    tag as u64,
                    128,
                    reply.reply_shape(),
                    reply.server_ns,
                );
            }
            Op::Lint(i) => {
                let diags = lint_request(&server, &lint_target(i), &mut clock, &cost, &mut extra)
                    .expect("lint answers");
                side.lints
                    .push((i, diags.iter().map(|d| d.render()).collect()));
            }
            Op::Run => {
                let out = run_under_omos(
                    &server, "/bin/dyn", false, &mut clock, &cost, &mut fs, 100_000,
                )
                .expect("dyn program runs");
                side.runs.push(out.stop);
                extra += out.ipc;
            }
        }
    }
    session.drain(&mut clock, &cost);
    let mut stats = session.stats;
    stats += extra;
    let bill = ClientBill {
        elapsed_ns: clock.elapsed_ns,
        system_ns: clock.system_ns,
        stats,
    };
    (side, bill)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The oracle: arbitrary histories produce byte-identical replies,
    /// manifests, `server_ns`, findings, and program behavior over all
    /// five transports; the per-transport bill is deterministic.
    #[test]
    fn all_transports_agree_on_everything_but_the_bill(
        vals in proptest::collection::vec(1u8..200, NLIBS..=NLIBS),
        history in proptest::collection::vec(op_strategy(), 1..16),
        window in prop_oneof![Just(1usize), Just(4usize), Just(32usize)],
    ) {
        let (want, _) = replay(Transport::MachIpc, &vals, &history, window);
        for transport in Transport::ALL {
            let (side, bill) = replay(transport, &vals, &history, window);
            prop_assert_eq!(
                &side, &want,
                "transport {} changed server-visible bytes", transport.name()
            );
            // Billing is a pure function of the history per transport.
            let (side2, bill2) = replay(transport, &vals, &history, window);
            prop_assert_eq!(&side2, &side);
            prop_assert_eq!(
                &bill2, &bill,
                "transport {} bills nondeterministically", transport.name()
            );
        }
    }
}

/// The five transports bill *differently* on a byte-heavy history —
/// the oracle above would pass vacuously if every tariff were equal.
#[test]
fn transports_actually_differ_in_billing() {
    let vals = [7u8, 11, 13];
    let history: Vec<Op> = (0..8)
        .map(|i| Op::Instantiate(i % PROGRAMS.len()))
        .collect();
    let mut seen = std::collections::BTreeSet::new();
    for transport in Transport::ALL {
        let (_, bill) = replay(transport, &vals, &history, 8);
        seen.insert(bill.elapsed_ns);
    }
    assert_eq!(
        seen.len(),
        Transport::ALL.len(),
        "every transport should price this history distinctly: {seen:?}"
    );
}

/// The shared-memory transport moves descriptors, not handle bytes,
/// and grants each content key once per session.
#[test]
fn shm_ring_grants_once_and_moves_fewer_bytes() {
    let vals = [7u8, 11, 13];
    let history: Vec<Op> = (0..6).map(|_| Op::Instantiate(2)).collect();
    let (_, mach) = replay(Transport::MachIpc, &vals, &history, 1);
    let (_, shm) = replay(Transport::ShmRing, &vals, &history, 1);
    assert!(shm.stats.bytes < mach.stats.bytes);
    // Program image + 3 libraries, granted exactly once each.
    assert_eq!(shm.stats.mappings, 4);
    assert_eq!(shm.stats.descriptors, 6 * 4);
    assert_eq!(shm.stats.retired, shm.stats.descriptors);
}
