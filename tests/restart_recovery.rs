//! Crash-point fault injection for the durability layer.
//!
//! The server's durable state — namespace bindings (via the write-ahead
//! journal), cached images, placement state, and reply rows (via
//! checkpoints) — must survive a crash at *any byte offset* of any
//! persistence write. After recovery the server must answer every
//! request identically (bit-identical images, and an identical bill
//! once both sides are warm) to a cold server holding the same
//! bindings; a completed checkpoint must additionally make the restored
//! server's first answer cheaper than a cold relink.
//!
//! The crash-point set defaults to {0, 1, N/4, N/2, 3N/4, N-1} of the
//! N-byte persistence stream and can be pinned from the environment
//! (`OMOS_CRASH_POINTS=0,1,half,last`) so CI can sweep a matrix.

use proptest::prelude::*;

use omos::core::{InstantiateReply, Omos};
use omos::isa::assemble;
use omos::link::encode_image;
use omos::obj::encode::{read_any, write, Format};
use omos::obj::ObjectFile;
use omos::os::ipc::{ClientSession, IpcStats, ShmRing, Transport, MAX_PUBLISH_SPINS};
use omos::os::{CostModel, InMemFs, SimClock};

const DIR: &str = "/omos/ckpt";
const NLIBS: usize = 3;

/// Round-trips an object through an on-disk encoding, so workloads
/// exercise a chosen [`Format`] end to end.
fn via(fmt: Format, obj: &ObjectFile) -> ObjectFile {
    read_any(&write(fmt, obj)).unwrap()
}

fn lib_obj(i: usize, val: u8) -> ObjectFile {
    assemble(
        &format!("lib{i}.o"),
        &format!(".text\n.global _f{i}\n_f{i}: li r1, {val}\n ret\n"),
    )
    .unwrap()
}

fn app_obj() -> ObjectFile {
    let calls: String = (0..NLIBS).map(|i| format!(" call _f{i}\n")).collect();
    assemble(
        "app.o",
        &format!(".text\n.global _start\n_start:\n{calls} sys 0\n"),
    )
    .unwrap()
}

/// Binds the standard workload *durably* (journaled), so bindings are
/// recoverable even when no checkpoint ever completed. `vals` gives
/// each library's distinguishing payload.
fn bind_durable(s: &Omos, fmt: Format, vals: &[u8], fs: &mut InMemFs, clock: &mut SimClock) {
    for (i, &val) in vals.iter().enumerate() {
        s.bind_object_durable(
            &format!("/obj/lib{i}.o"),
            via(fmt, &lib_obj(i, val)),
            fs,
            clock,
            DIR,
        )
        .unwrap();
        s.bind_meta_durable(
            &format!("/lib/l{i}"),
            omos::blueprint::Blueprint::parse(&format!(
                "(constraint-list \"T\" {:#x} \"D\" {:#x})\n(merge /obj/lib{i}.o)",
                0x0100_0000u64 + (i as u64) * 0x0010_0000,
                0x4100_0000u64 + (i as u64) * 0x0010_0000,
            ))
            .unwrap(),
            fs,
            clock,
            DIR,
        )
        .unwrap();
    }
    s.bind_object_durable("/obj/app.o", via(fmt, &app_obj()), fs, clock, DIR)
        .unwrap();
    let libs: String = (0..vals.len()).map(|i| format!(" /lib/l{i}")).collect();
    s.bind_meta_durable(
        "/bin/app",
        omos::blueprint::Blueprint::parse(&format!("(merge /obj/app.o{libs})")).unwrap(),
        fs,
        clock,
        DIR,
    )
    .unwrap();
    s.bind_meta_durable(
        "/bin/solo",
        omos::blueprint::Blueprint::parse("(merge /obj/app.o /lib/l0 /lib/l1 /lib/l2)").unwrap(),
        fs,
        clock,
        DIR,
    )
    .unwrap();
}

/// A cold reference server with the same bindings, no persistence.
fn cold_reference(fmt: Format, transport: Transport, vals: &[u8]) -> Omos {
    let s = Omos::new(CostModel::hpux(), transport);
    let mut fs = InMemFs::new();
    let mut clock = SimClock::new();
    bind_durable(&s, fmt, vals, &mut fs, &mut clock);
    s
}

fn assert_images_identical(a: &InstantiateReply, b: &InstantiateReply) {
    assert_eq!(
        encode_image(&a.program.image),
        encode_image(&b.program.image),
        "program images must be bit-identical"
    );
    assert_eq!(a.libraries.len(), b.libraries.len());
    for (x, y) in a.libraries.iter().zip(&b.libraries) {
        assert_eq!(
            encode_image(&x.image),
            encode_image(&y.image),
            "library images must be bit-identical"
        );
    }
}

/// The full oracle: the recovered server must answer the request
/// sequence with images bit-identical to a cold server's, and once both
/// sides are warm the bills must match exactly.
fn assert_answers_match(recovered: &Omos, cold: &Omos) {
    for path in ["/bin/app", "/bin/solo", "/bin/app"] {
        let r = recovered
            .instantiate(path)
            .unwrap_or_else(|e| panic!("recovered server failed {path}: {e:?}"));
        let c = cold.instantiate(path).unwrap();
        assert_images_identical(&r, &c);
    }
    // Steady state: both warm now; bills are identical.
    for path in ["/bin/app", "/bin/solo"] {
        let r = recovered.instantiate(path).unwrap();
        let c = cold.instantiate(path).unwrap();
        assert!(r.cache_hit && c.cache_hit);
        assert_eq!(r.server_ns, c.server_ns, "warm bill must match for {path}");
    }
}

/// Crash offsets to sweep: {0, 1, N/4, N/2, 3N/4, N-1} by default, or
/// the `OMOS_CRASH_POINTS` list (`0`, `1`, `half`, `last`, or numbers).
fn crash_points(n: u64) -> Vec<u64> {
    assert!(n >= 2, "persistence stream too small to sweep");
    let points = match std::env::var("OMOS_CRASH_POINTS") {
        Ok(spec) => spec
            .split(',')
            .map(|tok| match tok.trim() {
                "half" => n / 2,
                "last" => n - 1,
                num => num
                    .parse::<u64>()
                    .unwrap_or_else(|_| panic!("bad OMOS_CRASH_POINTS token `{num}`")),
            })
            .collect(),
        Err(_) => vec![0, 1, n / 4, n / 2, 3 * n / 4, n - 1],
    };
    let mut points: Vec<u64> = points.into_iter().map(|p| p.min(n - 1)).collect();
    points.sort_unstable();
    points.dedup();
    points
}

/// Crash during the *first* checkpoint, at every swept offset: the
/// journaled bindings alone must recover the server.
#[test]
fn crash_during_first_checkpoint_recovers_from_journal() {
    let cost = CostModel::hpux();
    let vals = [7u8, 11, 13];
    let cold = cold_reference(Format::Aout, Transport::SysVMsg, &vals);

    // Measure the checkpoint's byte stream on a clean run.
    let s = Omos::new(cost, Transport::SysVMsg);
    let mut fs = InMemFs::new();
    let mut clock = SimClock::new();
    bind_durable(&s, Format::Aout, &vals, &mut fs, &mut clock);
    s.instantiate("/bin/app").unwrap();
    s.instantiate("/bin/solo").unwrap();
    let n = s
        .checkpoint(&mut fs, &mut clock, DIR)
        .unwrap()
        .bytes_written;

    for k in crash_points(n) {
        let s = Omos::new(cost, Transport::SysVMsg);
        let mut fs = InMemFs::new();
        let mut clock = SimClock::new();
        bind_durable(&s, Format::Aout, &vals, &mut fs, &mut clock);
        s.instantiate("/bin/app").unwrap();
        s.instantiate("/bin/solo").unwrap();

        fs.set_write_fault(k);
        assert!(
            s.checkpoint(&mut fs, &mut clock, DIR).is_err(),
            "checkpoint must report the crash at byte {k}"
        );
        fs.clear_write_fault();

        let (recovered, report) = Omos::restore(cost, Transport::SysVMsg, &mut fs, &mut clock, DIR);
        assert!(
            recovered.namespace.len() >= 8,
            "journal replay must rebuild the namespace (crash at {k}, report {report:?})"
        );
        assert_answers_match(&recovered, &cold);
    }
}

/// Crash during a *second* checkpoint: the first, committed checkpoint
/// plus the journal written since must recover the server — including
/// a durable rebind made between the two checkpoints.
///
/// The reference here is a *live* server with the same history (bind,
/// build, rebind), not a cold one: the placement solver rightly
/// remembers the first lib1 version's address, so the rebuilt lib1
/// lands at its second-version address on both sides.
#[test]
fn crash_during_second_checkpoint_falls_back_to_first() {
    let cost = CostModel::hpux();
    let vals = [7u8, 11, 13];
    let reference = cold_reference(Format::Aout, Transport::SysVMsg, &vals);
    reference.instantiate("/bin/app").unwrap();
    reference
        .namespace
        .bind_object("/obj/lib1.o", via(Format::Aout, &lib_obj(1, 42)));

    // Clean run to size the second checkpoint's byte stream.
    let n = {
        let s = Omos::new(cost, Transport::SysVMsg);
        let mut fs = InMemFs::new();
        let mut clock = SimClock::new();
        bind_durable(&s, Format::Aout, &vals, &mut fs, &mut clock);
        s.instantiate("/bin/app").unwrap();
        s.checkpoint(&mut fs, &mut clock, DIR).unwrap();
        s.bind_object_durable(
            "/obj/lib1.o",
            via(Format::Aout, &lib_obj(1, 42)),
            &mut fs,
            &mut clock,
            DIR,
        )
        .unwrap();
        s.instantiate("/bin/app").unwrap();
        s.checkpoint(&mut fs, &mut clock, DIR)
            .unwrap()
            .bytes_written
    };

    for k in crash_points(n) {
        let s = Omos::new(cost, Transport::SysVMsg);
        let mut fs = InMemFs::new();
        let mut clock = SimClock::new();
        bind_durable(&s, Format::Aout, &vals, &mut fs, &mut clock);
        s.instantiate("/bin/app").unwrap();
        s.checkpoint(&mut fs, &mut clock, DIR).unwrap();
        s.bind_object_durable(
            "/obj/lib1.o",
            via(Format::Aout, &lib_obj(1, 42)),
            &mut fs,
            &mut clock,
            DIR,
        )
        .unwrap();
        s.instantiate("/bin/app").unwrap();

        fs.set_write_fault(k);
        assert!(s.checkpoint(&mut fs, &mut clock, DIR).is_err());
        fs.clear_write_fault();

        let (recovered, report) = Omos::restore(cost, Transport::SysVMsg, &mut fs, &mut clock, DIR);
        assert!(
            !report.cold,
            "the first checkpoint must still be recoverable (crash at {k})"
        );
        assert_answers_match(&recovered, &reference);
    }
}

/// Crash at every offset of a journal append: the bind fails cleanly,
/// nothing earlier is lost, and the torn record tail never confuses a
/// later recovery.
#[test]
fn crash_during_journal_append_loses_only_the_unacked_bind() {
    let cost = CostModel::hpux();
    let vals = [7u8, 11, 13];
    let cold = cold_reference(Format::Aout, Transport::SysVMsg, &vals);

    // Size one bind's journal record.
    let record_bytes = {
        let s = Omos::new(cost, Transport::SysVMsg);
        let mut fs = InMemFs::new();
        let mut clock = SimClock::new();
        let before = fs.bytes_written;
        s.bind_object_durable("/obj/extra.o", lib_obj(9, 1), &mut fs, &mut clock, DIR)
            .unwrap();
        fs.bytes_written - before
    };

    for k in crash_points(record_bytes) {
        let s = Omos::new(cost, Transport::SysVMsg);
        let mut fs = InMemFs::new();
        let mut clock = SimClock::new();
        bind_durable(&s, Format::Aout, &vals, &mut fs, &mut clock);

        fs.set_write_fault(k);
        assert!(
            s.bind_object_durable("/obj/extra.o", lib_obj(9, 1), &mut fs, &mut clock, DIR)
                .is_err(),
            "faulted append must fail the bind (crash at {k})"
        );
        fs.clear_write_fault();
        assert!(
            s.namespace.lookup("/obj/extra.o").is_none(),
            "write-ahead: unacked bind must not be visible"
        );

        let (recovered, _) = Omos::restore(cost, Transport::SysVMsg, &mut fs, &mut clock, DIR);
        // Records are doubled: a tear in the first copy loses the bind
        // entirely; a tear in the second leaves one complete copy, and
        // replay applies the (idempotent) bind at least once. Either
        // way the bind is atomic — present in full or not at all — and
        // earlier bindings answer identically.
        if let Some(omos::core::Entry::Object(obj)) = recovered.namespace.lookup("/obj/extra.o") {
            assert_eq!(obj.content_hash(), lib_obj(9, 1).content_hash());
        }
        assert_answers_match(&recovered, &cold);
    }
}

/// A completed checkpoint makes the restored server's first answer a
/// warm hit — strictly cheaper than the cold relink it replaces.
#[test]
fn completed_checkpoint_beats_cold_relink() {
    let cost = CostModel::hpux();
    let vals = [7u8, 11, 13];
    let s = Omos::new(cost, Transport::SysVMsg);
    let mut fs = InMemFs::new();
    let mut clock = SimClock::new();
    bind_durable(&s, Format::Aout, &vals, &mut fs, &mut clock);
    s.instantiate("/bin/app").unwrap();
    s.checkpoint(&mut fs, &mut clock, DIR).unwrap();

    let (recovered, report) = Omos::restore(cost, Transport::SysVMsg, &mut fs, &mut clock, DIR);
    assert!(!report.cold && report.replies >= 1 && report.dropped == 0);
    let warm = recovered.instantiate("/bin/app").unwrap();
    assert!(
        warm.cache_hit,
        "restored reply row serves the first request"
    );

    let cold = cold_reference(Format::Aout, Transport::SysVMsg, &vals);
    let cold_first = cold.instantiate("/bin/app").unwrap();
    assert!(
        warm.server_ns < cold_first.server_ns,
        "restored answer ({}) must beat the cold relink ({})",
        warm.server_ns,
        cold_first.server_ns
    );
    assert_images_identical(&warm, &cold_first);
}

/// Checkpoint/restore round-trips under every object [`Format`] and
/// every IPC [`Transport`].
#[test]
fn roundtrip_under_every_format_and_transport() {
    let cost = CostModel::hpux();
    let vals = [3u8, 5, 9];
    for fmt in [Format::Aout, Format::Som] {
        for transport in Transport::ALL {
            let s = Omos::new(cost, transport);
            let mut fs = InMemFs::new();
            let mut clock = SimClock::new();
            bind_durable(&s, fmt, &vals, &mut fs, &mut clock);
            s.instantiate("/bin/app").unwrap();
            s.checkpoint(&mut fs, &mut clock, DIR).unwrap();

            let (recovered, report) = Omos::restore(cost, transport, &mut fs, &mut clock, DIR);
            assert!(
                !report.cold && report.dropped == 0,
                "{} over {}: {report:?}",
                fmt.name(),
                transport.name()
            );
            assert_answers_match(&recovered, &cold_reference(fmt, transport, &vals));
        }
    }
}

/// Single-byte corruption of *any* persisted file degrades to a relink
/// (or a journal-tail drop) — never a panic, never a wrong answer.
#[test]
fn single_byte_corruption_of_any_file_degrades_to_relink() {
    let cost = CostModel::hpux();
    let vals = [7u8, 11, 13];
    let cold = cold_reference(Format::Aout, Transport::SysVMsg, &vals);

    // Enumerate every persisted file.
    let files: Vec<String> = {
        let s = Omos::new(cost, Transport::SysVMsg);
        let mut fs = InMemFs::new();
        let mut clock = SimClock::new();
        bind_durable(&s, Format::Aout, &vals, &mut fs, &mut clock);
        s.instantiate("/bin/app").unwrap();
        s.checkpoint(&mut fs, &mut clock, DIR).unwrap();
        // Keep a journal record on disk too, so its corruption is swept.
        s.bind_object_durable("/obj/extra.o", lib_obj(9, 1), &mut fs, &mut clock, DIR)
            .unwrap();
        let mut out = Vec::new();
        let mut stack = vec![DIR.to_string()];
        while let Some(d) = stack.pop() {
            for (name, st) in fs.list_dir(&d, &mut clock, &cost).unwrap() {
                let p = format!("{d}/{name}");
                if st.mode == 1 {
                    stack.push(p);
                } else {
                    out.push(p);
                }
            }
        }
        out
    };
    // Image files for the program and each library, both manifest
    // copies, and the journal.
    assert!(files.len() >= 7, "expected a populated checkpoint tree");

    for path in &files {
        // Corrupt the start, middle, and end of each file.
        for probe in 0..3usize {
            let s = Omos::new(cost, Transport::SysVMsg);
            let mut fs = InMemFs::new();
            let mut clock = SimClock::new();
            bind_durable(&s, Format::Aout, &vals, &mut fs, &mut clock);
            s.instantiate("/bin/app").unwrap();
            s.checkpoint(&mut fs, &mut clock, DIR).unwrap();
            s.bind_object_durable("/obj/extra.o", lib_obj(9, 1), &mut fs, &mut clock, DIR)
                .unwrap();

            let mut bytes = fs.peek(path).unwrap().to_vec();
            let at = match probe {
                0 => 0,
                1 => bytes.len() / 2,
                _ => bytes.len() - 1,
            };
            bytes[at] ^= 0x01;
            fs.unlink(path, &mut clock, &cost);
            fs.write(path, &bytes, &mut clock, &cost).unwrap();

            let (recovered, _) = Omos::restore(cost, Transport::SysVMsg, &mut fs, &mut clock, DIR);
            // The flipped byte may have landed in the journal record
            // binding /obj/extra.o — that bind is allowed to vanish,
            // everything else must answer identically.
            assert_answers_match(&recovered, &cold);
        }
    }
}

/// Every artifact a restore rejects lands in a per-reason
/// `restore_drop_*` counter of the trace snapshot, and the totals
/// always reconcile: `restore_dropped` is the sum of the reasons.
#[test]
fn restore_drop_reasons_land_in_the_trace_snapshot() {
    let cost = CostModel::hpux();
    let vals = [7u8, 11, 13];
    let s = Omos::new(cost, Transport::SysVMsg);
    let mut fs = InMemFs::new();
    let mut clock = SimClock::new();
    bind_durable(&s, Format::Aout, &vals, &mut fs, &mut clock);
    let reply = s.instantiate("/bin/app").unwrap();
    s.checkpoint(&mut fs, &mut clock, DIR).unwrap();
    // One journal record after the checkpoint, so a torn tail is swept.
    s.bind_object_durable("/obj/extra.o", lib_obj(9, 1), &mut fs, &mut clock, DIR)
        .unwrap();

    // Flip a byte in the program image (caught by the file checksum,
    // which also orphans the reply row) and tear the journal's tail.
    let img = format!("{DIR}/img/{:016x}", reply.program.key.0);
    let mut bytes = fs.peek(&img).unwrap().to_vec();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    fs.unlink(&img, &mut clock, &cost);
    fs.write(&img, &bytes, &mut clock, &cost).unwrap();
    let journal = format!("{DIR}/journal");
    let torn = fs.peek(&journal).unwrap().to_vec();
    fs.unlink(&journal, &mut clock, &cost);
    fs.write(&journal, &torn[..torn.len() - 1], &mut clock, &cost)
        .unwrap();

    let (r, rr) = Omos::restore(cost, Transport::SysVMsg, &mut fs, &mut clock, DIR);
    assert_eq!(rr.drops.image_checksum, 1, "{rr:?}");
    assert_eq!(rr.drops.reply_image, 1, "{rr:?}");
    assert_eq!(rr.drops.journal_torn, 1, "{rr:?}");
    assert_eq!(rr.dropped, rr.drops.total() as usize, "{rr:?}");

    let c = r.trace_snapshot().counters;
    assert_eq!(c.restore_drop_image_checksum, 1);
    assert_eq!(c.restore_drop_reply_image, 1);
    assert_eq!(c.restore_drop_journal_torn, 1);
    let by_reason = c.restore_drop_ns_decode
        + c.restore_drop_image_read
        + c.restore_drop_image_checksum
        + c.restore_drop_image_decode
        + c.restore_drop_image_content
        + c.restore_drop_journal_torn
        + c.restore_drop_journal_kind
        + c.restore_drop_journal_apply
        + c.restore_drop_reply_image
        + c.restore_drop_reply_manifest;
    assert_eq!(c.restore_dropped, by_reason, "total reconciles by reason");
    assert_eq!(c.restore_dropped, rr.dropped as u64);
    // The tear hit one doubled copy; the record (and the bind) survive.
    assert!(r.namespace.lookup("/obj/extra.o").is_some());
}

/// Conservation audit for restore-era evictions: a journal record
/// replayed *during* restore must not make verified reply rows look
/// stale on their first probe. Reply rows are verified against the
/// post-replay namespace (their manifests are re-derived there), so a
/// post-checkpoint idempotent rebind of identical bytes leaves the
/// restored reply servable — the first request is a warm hit, and the
/// row is neither re-dropped as `reply_stale` nor double-counted under
/// `evict_invalidated` after restore already accounted for it.
#[test]
fn idempotent_journal_rebind_does_not_double_count_restored_replies() {
    let cost = CostModel::hpux();
    let vals = [7u8, 11, 13];
    let s = Omos::new(cost, Transport::SysVMsg);
    let mut fs = InMemFs::new();
    let mut clock = SimClock::new();
    bind_durable(&s, Format::Aout, &vals, &mut fs, &mut clock);
    s.instantiate("/bin/app").unwrap();
    s.checkpoint(&mut fs, &mut clock, DIR).unwrap();
    // An idempotent rebind lands in the journal *after* the checkpoint:
    // replay re-touches /obj/app.o while restore rebuilds the cache.
    s.bind_object_durable(
        "/obj/app.o",
        via(Format::Aout, &app_obj()),
        &mut fs,
        &mut clock,
        DIR,
    )
    .unwrap();

    let (recovered, report) = Omos::restore(cost, Transport::SysVMsg, &mut fs, &mut clock, DIR);
    assert!(!report.cold && report.replies >= 1, "{report:?}");
    assert_eq!(report.dropped, 0, "{report:?}");

    let warm = recovered.instantiate("/bin/app").unwrap();
    assert!(
        warm.cache_hit,
        "manifest-verified reply must survive the idempotent journal replay"
    );

    let c = recovered.trace_snapshot().counters;
    assert_eq!(c.reply_stale, 0, "no spurious post-restore staleness drop");
    assert_eq!(
        c.evict_invalidated, 0,
        "restore drops must not re-count as invalidations"
    );
    assert_eq!(
        c.restore_dropped, report.dropped as u64,
        "conservation: trace counters and restore report agree"
    );
}

/// The restore-time proof, swept across the crash matrix: at every
/// crash offset of the *second* checkpoint, recovery falls back to the
/// first checkpoint and replays the journaled rebind — after which the
/// surviving reply row (built against the old library) no longer
/// matches a fresh manifest derivation. Verification must drop exactly
/// that row (`reply_manifest`), never serve it, and the relink must
/// reproduce the live reference bit-for-bit.
#[test]
fn manifest_verification_drops_the_stale_reply_at_every_crash_point() {
    let cost = CostModel::hpux();
    let vals = [7u8, 11, 13];
    let reference = cold_reference(Format::Aout, Transport::SysVMsg, &vals);
    reference.instantiate("/bin/app").unwrap();
    reference
        .namespace
        .bind_object("/obj/lib1.o", via(Format::Aout, &lib_obj(1, 42)));
    let want = reference.instantiate("/bin/app").unwrap();

    // Clean run to size the second checkpoint's byte stream.
    let n = {
        let s = Omos::new(cost, Transport::SysVMsg);
        let mut fs = InMemFs::new();
        let mut clock = SimClock::new();
        bind_durable(&s, Format::Aout, &vals, &mut fs, &mut clock);
        s.instantiate("/bin/app").unwrap();
        s.checkpoint(&mut fs, &mut clock, DIR).unwrap();
        s.bind_object_durable(
            "/obj/lib1.o",
            via(Format::Aout, &lib_obj(1, 42)),
            &mut fs,
            &mut clock,
            DIR,
        )
        .unwrap();
        s.instantiate("/bin/app").unwrap();
        s.checkpoint(&mut fs, &mut clock, DIR)
            .unwrap()
            .bytes_written
    };

    let mut stale_drops = 0usize;
    for k in crash_points(n) {
        let s = Omos::new(cost, Transport::SysVMsg);
        let mut fs = InMemFs::new();
        let mut clock = SimClock::new();
        bind_durable(&s, Format::Aout, &vals, &mut fs, &mut clock);
        s.instantiate("/bin/app").unwrap();
        s.checkpoint(&mut fs, &mut clock, DIR).unwrap();
        s.bind_object_durable(
            "/obj/lib1.o",
            via(Format::Aout, &lib_obj(1, 42)),
            &mut fs,
            &mut clock,
            DIR,
        )
        .unwrap();
        s.instantiate("/bin/app").unwrap();

        fs.set_write_fault(k);
        assert!(s.checkpoint(&mut fs, &mut clock, DIR).is_err());
        fs.clear_write_fault();

        let (recovered, rr) = Omos::restore(cost, Transport::SysVMsg, &mut fs, &mut clock, DIR);
        assert!(!rr.cold, "a committed checkpoint survives (crash at {k})");
        // Two legitimate outcomes, decided by where the crash landed
        // relative to the second checkpoint's commit record:
        //   * before commit — recovery falls back to the *first*
        //     checkpoint, whose reply row predates the rebind; the
        //     replayed journal makes re-derivation diverge and
        //     verification must drop the stale row;
        //   * after commit (the fault hit post-commit cleanup) — the
        //     second checkpoint's row is current and must verify.
        // Either way every surviving row went through verification.
        assert_eq!(
            rr.manifest_verified + rr.drops.reply_manifest as usize,
            rr.replies + rr.dropped,
            "every row is either verified or dropped (crash at {k}): {rr:?}"
        );
        assert_eq!(rr.manifest_verified, rr.replies, "crash at {k}: {rr:?}");
        let stale_dropped = rr.drops.reply_manifest == 1;
        if stale_dropped {
            assert_eq!(rr.replies, 0, "crash at {k}: {rr:?}");
            assert_eq!(
                recovered
                    .trace_snapshot()
                    .counters
                    .restore_drop_reply_manifest,
                1
            );
            stale_drops += 1;
        }
        let first = recovered.instantiate("/bin/app").unwrap();
        if stale_dropped {
            assert!(!first.cache_hit, "a dropped row relinks on demand");
        }
        // (A verified row may still relink: when the crash spared the
        // commit but not the journal truncation, replaying the rebind
        // re-bumps the dependency generation past the restored row's.
        // Conservative, never wrong.)
        assert_images_identical(&first, &want);
    }
    assert!(
        stale_drops > 0,
        "the sweep must exercise the stale-reply drop path at least once"
    );
}

/// Fault injection for the batched transport: the server crashes
/// mid-checkpoint while a pipelined client still holds an un-flushed
/// in-flight batch. No client transport state needs recovering — the
/// restored server answers the re-issued history with bit-identical
/// images, the batch delivers in order, and once both sides are warm a
/// fresh session bills the recovered server exactly like a never-crashed
/// one.
#[test]
fn in_flight_batch_replays_identically_across_crash_restore() {
    let cost = CostModel::hpux();
    let vals = [7u8, 11, 13];
    const HISTORY: [&str; 4] = ["/bin/app", "/bin/solo", "/bin/app", "/bin/solo"];

    // The no-crash reference: a cold server answering the same history.
    let cold = cold_reference(Format::Aout, Transport::Pipelined, &vals);
    let want: Vec<InstantiateReply> = HISTORY
        .iter()
        .map(|path| cold.instantiate(path).unwrap())
        .collect();

    // Size the checkpoint stream on a clean run.
    let n = {
        let s = Omos::new(cost, Transport::Pipelined);
        let mut fs = InMemFs::new();
        let mut clock = SimClock::new();
        bind_durable(&s, Format::Aout, &vals, &mut fs, &mut clock);
        s.instantiate("/bin/app").unwrap();
        s.checkpoint(&mut fs, &mut clock, DIR)
            .unwrap()
            .bytes_written
    };

    for k in crash_points(n) {
        let s = Omos::new(cost, Transport::Pipelined);
        let mut fs = InMemFs::new();
        let mut clock = SimClock::new();
        bind_durable(&s, Format::Aout, &vals, &mut fs, &mut clock);

        // Queue the whole history inside one open window (wider than
        // the history, so nothing auto-flushes); the replies sit
        // un-flushed client-side when the crash hits.
        let mut session = ClientSession::with_window(Transport::Pipelined, 2 * HISTORY.len());
        for (tag, path) in HISTORY.iter().enumerate() {
            let reply = s.instantiate(path).unwrap();
            session.request(
                &mut clock,
                &cost,
                tag as u64,
                128,
                reply.reply_shape(),
                reply.server_ns,
            );
        }
        assert_eq!(
            session.pending(),
            HISTORY.len(),
            "the whole batch must still be in flight at crash time"
        );

        fs.set_write_fault(k);
        assert!(
            s.checkpoint(&mut fs, &mut clock, DIR).is_err(),
            "checkpoint must report the crash at byte {k}"
        );
        fs.clear_write_fault();
        drop(s);
        drop(session); // the crash: server and in-flight batch both gone

        let (recovered, _) = Omos::restore(cost, Transport::Pipelined, &mut fs, &mut clock, DIR);

        // The client re-issues its in-flight batch from scratch; the
        // recovered server's answers are bit-identical and the batch
        // still delivers in request order.
        let mut replay_clock = SimClock::new();
        let mut replay = ClientSession::with_window(Transport::Pipelined, 2 * HISTORY.len());
        for (tag, path) in HISTORY.iter().enumerate() {
            let reply = recovered.instantiate(path).unwrap();
            assert_images_identical(&reply, &want[tag]);
            replay.request(
                &mut replay_clock,
                &cost,
                tag as u64,
                128,
                reply.reply_shape(),
                reply.server_ns,
            );
        }
        replay.drain(&mut replay_clock, &cost);
        assert_eq!(
            replay.take_delivered(),
            (0..HISTORY.len() as u64).collect::<Vec<_>>(),
            "crash at {k}: the re-issued batch must deliver in order"
        );

        // Warm steady state: a fresh session bills the recovered server
        // exactly like one that never crashed, to the nanosecond.
        let warm_bill = |server: &Omos| -> SimClock {
            let mut clock = SimClock::new();
            let mut session = ClientSession::with_window(Transport::Pipelined, 2 * HISTORY.len());
            for (tag, path) in HISTORY.iter().enumerate() {
                let reply = server.instantiate(path).unwrap();
                assert!(reply.cache_hit, "both sides are warm by now");
                session.request(
                    &mut clock,
                    &cost,
                    tag as u64,
                    128,
                    reply.reply_shape(),
                    reply.server_ns,
                );
            }
            session.drain(&mut clock, &cost);
            clock
        };
        assert_eq!(
            warm_bill(&recovered),
            warm_bill(&cold),
            "crash at {k}: warm batched bills must match exactly"
        );
    }
}

/// Shared-memory fault injection: ring contents never persist — a
/// session is drained between requests, a restored server records which
/// transport the checkpoint was taken under, grants rebuild from
/// content-addressed keys — and a writer publishing into a full ring
/// whose reader never retires hits the *bounded*, billed backpressure
/// path instead of deadlocking.
#[test]
fn full_ring_after_restore_backpressures_within_bounds() {
    let cost = CostModel::hpux();
    let vals = [7u8, 11, 13];
    let s = Omos::new(cost, Transport::ShmRing);
    let mut fs = InMemFs::new();
    let mut clock = SimClock::new();
    bind_durable(&s, Format::Aout, &vals, &mut fs, &mut clock);

    // Serve one shm request; the ring drains synchronously, so the
    // checkpoint has no transport state to persist.
    let mut session = ClientSession::with_window(Transport::ShmRing, 1);
    let reply = s.instantiate("/bin/app").unwrap();
    session.request(
        &mut clock,
        &cost,
        0,
        128,
        reply.reply_shape(),
        reply.server_ns,
    );
    assert!(
        session.ring().drained(),
        "shm sessions drain between requests"
    );
    s.checkpoint(&mut fs, &mut clock, DIR).unwrap();

    let (recovered, report) = Omos::restore(cost, Transport::ShmRing, &mut fs, &mut clock, DIR);
    assert!(!report.cold);
    assert_eq!(
        report.checkpoint_transport,
        Some(Transport::ShmRing),
        "the manifest records the transport the checkpoint was taken under"
    );

    // A fresh post-restore session re-grants its mappings from the
    // content-addressed keys and answers bit-identically.
    let mut after = ClientSession::with_window(Transport::ShmRing, 1);
    let again = recovered.instantiate("/bin/app").unwrap();
    assert_images_identical(&again, &reply);
    after.request(
        &mut clock,
        &cost,
        0,
        128,
        again.reply_shape(),
        again.server_ns,
    );
    assert!(after.ring().drained());
    assert_eq!(
        after.stats.mappings, session.stats.mappings,
        "grants are reconstructible: the restored session re-maps the same keys"
    );

    // The adversarial reader: fill a ring and never retire. The writer
    // spins a bounded, billed number of polls and then reports
    // backpressure — it does not hang.
    let mut ring = ShmRing::new(4);
    let mut stats = IpcStats::default();
    ring.try_publish(4, &mut clock, &cost, &mut stats)
        .expect("an empty ring accepts a full publish");
    let before = clock.elapsed_ns;
    let err = ring
        .try_publish(1, &mut clock, &cost, &mut stats)
        .expect_err("a full ring with a dead reader must refuse, not block");
    assert_eq!(err.spins, MAX_PUBLISH_SPINS);
    assert_eq!(stats.backpressure_spins, MAX_PUBLISH_SPINS);
    assert_eq!(
        clock.elapsed_ns - before,
        MAX_PUBLISH_SPINS * cost.shm_spin_ns,
        "every backpressure poll is billed, and nothing else is"
    );

    // The moment the reader retires, the writer proceeds without a spin.
    ring.retire(2, &mut clock, &cost, &mut stats);
    let before = clock.elapsed_ns;
    ring.try_publish(1, &mut clock, &cost, &mut stats)
        .expect("retired slots unblock the writer");
    assert_eq!(clock.elapsed_ns, before, "a free slot publishes spin-free");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `restore ∘ checkpoint` is the identity on durable cache
    /// contents: namespace bindings, image-cache keys and bytes, and
    /// reply rows all survive, for arbitrary workload payloads.
    #[test]
    fn restore_checkpoint_identity(
        vals in proptest::collection::vec(1u8..200, NLIBS..=NLIBS),
        warm in any::<bool>(),
    ) {
        let cost = CostModel::hpux();
        let s = Omos::new(cost, Transport::SysVMsg);
        let mut fs = InMemFs::new();
        let mut clock = SimClock::new();
        bind_durable(&s, Format::Aout, &vals, &mut fs, &mut clock);
        let baseline = if warm {
            Some(s.instantiate("/bin/app").unwrap())
        } else {
            None
        };
        let rep = s.checkpoint(&mut fs, &mut clock, DIR).unwrap();

        let (r, rr) = Omos::restore(cost, Transport::SysVMsg, &mut fs, &mut clock, DIR);
        prop_assert!(!rr.cold);
        prop_assert_eq!(rr.dropped, 0);
        prop_assert_eq!(rr.ns_entries, s.namespace.len());
        prop_assert_eq!(rr.images, rep.images);

        // Namespace: same paths, same kinds.
        let paths = |o: &Omos| -> Vec<String> {
            o.namespace.entries().into_iter().map(|(p, _)| p).collect()
        };
        prop_assert_eq!(paths(&r), paths(&s));

        // Image cache: same keys, bit-identical bytes.
        let mut orig: Vec<_> = s.images.entries();
        let mut back: Vec<_> = r.images.entries();
        orig.sort_by_key(|i| i.key.0);
        back.sort_by_key(|i| i.key.0);
        prop_assert_eq!(orig.len(), back.len());
        for (a, b) in orig.iter().zip(&back) {
            prop_assert_eq!(a.key, b.key);
            prop_assert_eq!(encode_image(&a.image), encode_image(&b.image));
            prop_assert_eq!(a.link_stats, b.link_stats);
        }

        // Reply rows: a checkpointed warm reply answers immediately.
        if let Some(baseline) = baseline {
            prop_assert_eq!(rr.replies, 1);
            let again = r.instantiate("/bin/app").unwrap();
            prop_assert!(again.cache_hit);
            assert_images_identical(&again, &baseline);
        }
    }
}
