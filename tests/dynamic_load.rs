//! §5's dld-like interface: "OMOS exports a more general interface for
//! dynamically loading class implementations into executing programs."
//! A client maps a new class into its own address space mid-lifetime;
//! the class's free references bind to the *client's* procedures and
//! data, and the client receives the bound values of the symbols it
//! asked for.

use std::collections::HashMap;

use omos::blueprint::Blueprint;
use omos::core::{Omos, OmosError};
use omos::isa::{assemble, StopReason};
use omos::os::ipc::Transport;
use omos::os::process::{run_process, NoBinder, Process};
use omos::os::{CostModel, InMemFs, SimClock};

fn server_with_host() -> (Omos, omos::core::InstantiateReply) {
    let s = Omos::new(CostModel::hpux(), Transport::MachIpc);
    // The host program: jumps through a function pointer cell that the
    // test patches after dynamically loading the class.
    s.namespace.bind_object(
        "/obj/host.o",
        assemble(
            "host.o",
            r#"
            .text
            .global _start, _host_service
_start:     li r2, _hook
            ld r5, [r2]
            beq r5, r0, _plain
            li r1, 5
            callr r5            ; into the dynamically loaded class
            sys 0
_plain:     li r1, 0
            sys 0
; a client procedure the loaded class may call back into
_host_service:
            addi r1, r1, 100
            ret
            .data
            .global _hook
_hook:      .word 0
            "#,
        )
        .unwrap(),
    );
    s.namespace
        .bind_blueprint("/bin/host", "(merge /obj/host.o)")
        .unwrap();
    let reply = s.instantiate("/bin/host").unwrap();
    (s, reply)
}

#[test]
fn class_loads_into_running_program_and_calls_back() {
    let (s, reply) = server_with_host();
    let cost = CostModel::hpux();
    let mut clock = SimClock::new();
    let mut proc = Process::spawn(&reply.program.frames, &mut clock, &cost).unwrap();

    // The class to load: calls back into the client's `_host_service` —
    // "allowing the new classes to refer to procedures and data
    // structures within the client".
    let bp = Blueprint::parse(
        r#"(source "asm"
            ".text\n.global _method\n.extern _host_service\n_method: mul r1, r1, r1\n mov r9, r15\n call _host_service\n mov r15, r9\n ret\n")"#,
    )
    .unwrap();
    let load = s
        .dynamic_load(&bp, &["_method"], &reply.program.image.symbols)
        .unwrap();
    assert!(load.server_ns > 0);
    let method = load.values["_method"];

    // Map the class into the running process and patch the hook cell.
    proc.map_more(&load.frames, &mut clock, &cost).unwrap();
    use omos::isa::Memory as _;
    let hook = reply.program.image.find("_hook").unwrap();
    proc.space.write(hook, &method.to_le_bytes()).unwrap();

    let mut fs = InMemFs::new();
    let out = run_process(
        &mut proc,
        &mut clock,
        &cost,
        &mut fs,
        &mut NoBinder,
        100_000,
    );
    // 5² + 100 = 125: the class ran AND called back into the client.
    assert_eq!(out.stop, StopReason::Exited(125));
}

#[test]
fn wanted_symbols_are_validated() {
    let (s, reply) = server_with_host();
    let bp = Blueprint::parse(r#"(source "asm" ".text\n.global _m\n_m: ret\n")"#).unwrap();
    let err = s
        .dynamic_load(&bp, &["_nonexistent"], &reply.program.image.symbols)
        .unwrap_err();
    assert!(matches!(err, OmosError::Client(_)));
}

#[test]
fn loaded_class_with_unresolvable_reference_fails() {
    let (s, _) = server_with_host();
    let bp =
        Blueprint::parse(r#"(source "asm" ".text\n.global _m\n_m: call _not_anywhere\n ret\n")"#)
            .unwrap();
    let err = s.dynamic_load(&bp, &["_m"], &HashMap::new()).unwrap_err();
    assert!(matches!(err, OmosError::Link(_)));
}

#[test]
fn two_loads_do_not_collide_in_the_address_space() {
    let (s, reply) = server_with_host();
    let mk = |n: u32| {
        Blueprint::parse(&format!(
            r#"(source "asm" ".text\n.global _m{n}\n_m{n}: li r1, {n}\n ret\n")"#
        ))
        .unwrap()
    };
    let a = s
        .dynamic_load(&mk(1), &["_m1"], &reply.program.image.symbols)
        .unwrap();
    let b = s
        .dynamic_load(&mk(2), &["_m2"], &reply.program.image.symbols)
        .unwrap();
    // Both classes map into one process without overlap.
    let cost = CostModel::hpux();
    let mut clock = SimClock::new();
    let mut proc = Process::spawn(&reply.program.frames, &mut clock, &cost).unwrap();
    proc.map_more(&a.frames, &mut clock, &cost).unwrap();
    proc.map_more(&b.frames, &mut clock, &cost).unwrap();
    assert_ne!(a.values["_m1"], b.values["_m2"]);
}

#[test]
fn query_symbols_and_size_serve_portions_of_interest() {
    // §7: nm/size/strings "are concerned with only a small part of the
    // whole file"; the server answers without shipping a byte stream.
    let (s, _) = server_with_host();
    let syms = s.query_symbols("/obj/host.o").unwrap();
    assert!(syms.iter().any(|(n, def)| n == "_host_service" && *def));
    let syms = s.query_symbols("/bin/host").unwrap();
    assert!(syms.iter().any(|(n, _)| n == "_hook"));
    let (text, data, bss) = s.query_size("/bin/host").unwrap();
    assert!(text > 0);
    assert!(data > 0);
    assert_eq!(bss, 0);
    assert!(matches!(
        s.query_size("/nope"),
        Err(OmosError::NoSuchName(_))
    ));
}
