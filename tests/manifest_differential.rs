//! Differential testing of static manifest derivation against the
//! linker.
//!
//! The resolution manifest makes a strong claim: `Omos::explain` can
//! predict, **before** any link runs, exactly where every library will
//! land, what every image will hash to, and which definition every
//! symbol will bind to — and the manifest the server attaches to the
//! real reply must agree byte-for-byte. Any disagreement is an `OM016`
//! divergence and a hard test failure here.
//!
//! The second half checks the diff oracle: after a rebind, the manifest
//! diff must name exactly the bindings the rebuild actually moved — the
//! dep-precise invalidation set — and the *statically predicted* diff
//! must equal the diff of the manifests the two builds actually
//! produced.

use proptest::prelude::*;

use omos::analysis::manifest::{diff, divergence, ResolutionManifest};
use omos::core::{stored_manifests, Omos};
use omos::isa::assemble;
use omos::os::ipc::Transport;
use omos::os::{CostModel, InMemFs, SimClock};

/// Builds a server world: `nlibs` pinned shared libraries (each
/// exporting `_f{i}`), an optional interposed helper pair, and a client
/// calling every export, bound at `/bin/p`.
fn build_world(nlibs: usize, interpose: bool, hide_wrap: bool) -> Omos {
    let server = Omos::new(CostModel::hpux(), Transport::SysVMsg);
    let mut uses = String::new();
    let mut calls = String::new();
    for i in 0..nlibs {
        server.namespace.bind_object(
            &format!("/obj/f{i}.o"),
            assemble(
                &format!("f{i}.o"),
                &format!(".text\n.global _f{i}\n_f{i}: li r1, {i}\n ret\n"),
            )
            .expect("lib object assembles"),
        );
        server
            .namespace
            .bind_blueprint(
                &format!("/lib/l{i}"),
                &format!(
                    "(constraint-list \"T\" {:#x} \"D\" {:#x})\n(merge /obj/f{i}.o)",
                    0x0100_0000 + (i as u64) * 0x0020_0000,
                    0x4100_0000 + (i as u64) * 0x0020_0000,
                ),
            )
            .expect("lib blueprint binds");
        uses.push_str(&format!(" /lib/l{i}"));
        calls.push_str(&format!(" call _f{i}\n"));
    }
    let mut root = String::new();
    if interpose {
        for (path, val) in [("/obj/h1.o", 10), ("/obj/h2.o", 20)] {
            server.namespace.bind_object(
                path,
                assemble(
                    path,
                    &format!(".text\n.global _h\n_h: li r1, {val}\n ret\n"),
                )
                .expect("helper assembles"),
            );
        }
        calls.push_str(" call _h\n");
        root.push_str(" (override /obj/h1.o /obj/h2.o)");
    }
    server.namespace.bind_object(
        "/obj/main.o",
        assemble(
            "main.o",
            &format!(".text\n.global _start\n_start:\n{calls} sys 0\n"),
        )
        .expect("main assembles"),
    );
    let main = if hide_wrap {
        "(hide \"^_none$\" /obj/main.o)".to_string()
    } else {
        "/obj/main.o".to_string()
    };
    server
        .namespace
        .bind_blueprint("/bin/p", &format!("(merge {main}{root}{uses})"))
        .expect("program blueprint binds");
    server
}

/// The manifest the server's *reply path* persisted for `/bin/p`:
/// checkpoint the server and read the stored bytes back.
fn actual_manifest(server: &Omos) -> ResolutionManifest {
    let cost = CostModel::hpux();
    let mut fs = InMemFs::new();
    let mut clock = SimClock::new();
    server
        .checkpoint(&mut fs, &mut clock, "/ck")
        .expect("checkpoint succeeds");
    let mut stored = stored_manifests(&mut fs, &mut clock, &cost, "/ck");
    assert_eq!(stored.len(), 1, "one cached reply, one stored manifest");
    stored.pop().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Static derivation — run *before* the first link — must agree
    /// byte-for-byte with the manifest the real build attaches to its
    /// reply, and re-derivation afterwards (the reuse path) must not
    /// move either.
    #[test]
    fn static_manifest_matches_the_linker(
        nlibs in 1usize..4,
        interpose in any::<bool>(),
        hide_wrap in any::<bool>(),
    ) {
        let server = build_world(nlibs, interpose, hide_wrap);
        let predicted = server.explain("/bin/p").expect("static derivation");
        let reply = server.instantiate("/bin/p").expect("program links");
        prop_assert_eq!(
            predicted.hash(), reply.manifest,
            "pre-link prediction disagrees with the reply's manifest hash"
        );
        let actual = actual_manifest(&server);
        let diags = divergence(&predicted, &actual);
        prop_assert!(
            diags.is_empty(),
            "OM016 divergence: {:?}",
            diags.iter().map(|d| &d.message).collect::<Vec<_>>()
        );
        prop_assert_eq!(predicted.encode(), actual.encode());
        let rederived = server.explain("/bin/p").expect("re-derivation");
        prop_assert_eq!(rederived.encode(), actual.encode());
    }

    /// Manifest derivation is a pure function of the world: two fresh
    /// servers given the same namespace produce byte-identical
    /// manifests (the cross-run face of the determinism gate).
    #[test]
    fn derivation_is_deterministic_across_servers(
        nlibs in 1usize..4,
        interpose in any::<bool>(),
    ) {
        let a = build_world(nlibs, interpose, false);
        let b = build_world(nlibs, interpose, false);
        // One side links first, the other derives cold: state must not
        // leak into the canonical bytes.
        a.instantiate("/bin/p").expect("links");
        let ma = a.explain("/bin/p").expect("derives");
        let mb = b.explain("/bin/p").expect("derives");
        prop_assert_eq!(ma.encode(), mb.encode());
    }
}

/// The oracle test for `ofe explain A B`: rebind one library object so
/// one export moves, and check the diff names exactly that binding —
/// not the other exports of the same library, not the other libraries,
/// not the program — and that the statically predicted diff equals the
/// diff of the manifests the two real builds produced.
#[test]
fn rebind_diff_names_exactly_the_moved_bindings() {
    let world = |v2: bool| {
        let server = Omos::new(CostModel::hpux(), Transport::SysVMsg);
        let grow = if v2 { " li r2, 9\n" } else { "" };
        server.namespace.bind_object(
            "/obj/l.o",
            assemble(
                "l.o",
                &format!(
                    ".text\n.global _f0, _g0\n_f0: li r1, 0\n{grow} ret\n_g0: li r1, 1\n ret\n"
                ),
            )
            .expect("lib assembles"),
        );
        server
            .namespace
            .bind_blueprint(
                "/lib/l",
                "(constraint-list \"T\" 0x1000000 \"D\" 0x41000000)\n(merge /obj/l.o)",
            )
            .expect("lib binds");
        server.namespace.bind_object(
            "/obj/main.o",
            assemble(
                "main.o",
                ".text\n.global _start\n_start: call _f0\n sys 0\n",
            )
            .expect("main assembles"),
        );
        server
            .namespace
            .bind_blueprint("/bin/p", "(merge /obj/main.o /lib/l)")
            .expect("program binds");
        server
    };

    let before = world(false);
    let after = world(true);
    let predicted_before = before.explain("/bin/p").expect("derives");
    let predicted_after = after.explain("/bin/p").expect("derives");
    let d = diff(&predicted_before, &predicted_after);

    // `_f0` keeps its offset; only `_g0` moves behind it. The minimal
    // invalidation set is exactly that one binding.
    assert_eq!(d.changed_symbols(), ["_g0"], "{}", d.render());
    assert!(d.added.is_empty() && d.removed.is_empty(), "{}", d.render());
    assert_eq!(d.libraries_changed, ["/lib/l"], "{}", d.render());
    // The program's image key commits to the identity of the libraries
    // it linked against, so a rebuilt dependency changes it even though
    // the client's own bytes and bindings are untouched.
    assert!(d.program_changed, "{}", d.render());
    let rendered = d.render();
    assert!(rendered.contains("~ _g0"), "{rendered}");
    assert!(!rendered.contains("_f0"), "{rendered}");

    // The predicted diff is the real diff: build both worlds and
    // compare against the manifests the linker actually produced.
    before.instantiate("/bin/p").expect("v1 links");
    after.instantiate("/bin/p").expect("v2 links");
    let actual = diff(&actual_manifest(&before), &actual_manifest(&after));
    assert_eq!(d, actual);
}
