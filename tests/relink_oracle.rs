//! The incremental-relink oracle.
//!
//! Diff-driven relinking is allowed to change exactly one thing: how
//! much the server *works* to rebuild a rebind-invalidated reply. For
//! any history of instantiations interleaved with rebinds, the
//! incremental engine must produce byte-identical program and library
//! images, identical canonical resolution manifests, and identical
//! program behavior to the historical full-rebuild path — across all
//! five transports and both evaluation-parallelism settings. A live
//! update of a running partial-image process must leave it answering
//! exactly like a process cold-built from the post-rebind reply.
//!
//! Two satellites are pinned here as well: the minimality contract
//! (a rebind invalidates exactly the replies whose manifest diff is
//! non-empty — over-invalidation fails), and the tier-2 composition
//! (a manifest-verified spilled image whose library subgraph is clean
//! faults back in; it never pays a full relink).

use std::sync::Arc;

use proptest::prelude::*;

use omos::analysis::manifest::diff;
use omos::core::spill::SpillTier;
use omos::core::trace::Stage;
use omos::core::{live_update, run_under_omos, ImageCache, Omos, OmosBinder};
use omos::isa::{assemble, StopReason, Vm};
use omos::link::encode_image;
use omos::os::ipc::{IpcStats, Transport};
use omos::os::process::STACK_TOP;
use omos::os::{run_process, CostModel, InMemFs, SimClock};

const NLIBS: usize = 3;

/// Highest content version a rebind can move a library to.
const MAX_VER: u32 = 3;

/// Programs and the libraries each uses.
const PROGRAMS: [(&str, &[usize]); 4] =
    [("a", &[0]), ("b", &[1, 2]), ("c", &[0, 1, 2]), ("d", &[2])];

/// Source of library `i` at content version `v`. Versions change both a
/// value (`_f{i}` returns a version-dependent constant) and the *layout*
/// (`v` pad instructions before `ret` shift `_g{i}`'s address), so a
/// rebind dirties bindings as well as image bytes — the manifest diff
/// carries changed symbols, not just moved image keys.
fn lib_src(i: usize, v: u32) -> String {
    use std::fmt::Write as _;
    let mut s = format!(
        ".text\n.global _f{i}, _g{i}\n_f{i}: li r1, {}\n",
        10 * (i + 1) as u32 + v
    );
    for _ in 0..v {
        s.push_str(" li r2, 7\n");
    }
    let _ = writeln!(s, " ret\n_g{i}: li r1, {}\n ret", 90 + i);
    s
}

/// Binds the world into `server`: three constraint-placed libraries at
/// version 0, four programs over different subsets, and one
/// partial-image (dynamic) program over lib0.
fn populate(s: &Omos) {
    for i in 0..NLIBS {
        rebind_lib(s, i, 0);
        s.namespace
            .bind_blueprint(
                &format!("/lib/l{i}"),
                &format!(
                    "(constraint-list \"T\" {:#x} \"D\" {:#x})\n(merge /obj/lib{i}.o)",
                    0x0100_0000u64 + (i as u64) * 0x0010_0000,
                    0x4100_0000u64 + (i as u64) * 0x0010_0000,
                ),
            )
            .unwrap();
    }
    for (p, libs) in PROGRAMS {
        let calls: String = libs
            .iter()
            .map(|i| format!(" call _f{i}\n call _g{i}\n"))
            .collect();
        s.namespace.bind_object(
            &format!("/obj/{p}.o"),
            assemble(
                &format!("{p}.o"),
                &format!(".text\n.global _start\n_start:\n{calls} sys 0\n"),
            )
            .unwrap(),
        );
        let uses: String = libs.iter().map(|i| format!(" /lib/l{i}")).collect();
        s.namespace
            .bind_blueprint(&format!("/bin/{p}"), &format!("(merge /obj/{p}.o{uses})"))
            .unwrap();
    }
    s.namespace.bind_object(
        "/obj/dapp.o",
        assemble(
            "dapp.o",
            ".text\n.global _start\n_start:\n call _f0\n sys 0\n",
        )
        .unwrap(),
    );
    s.namespace
        .bind_blueprint(
            "/bin/dyn",
            r#"(merge /obj/dapp.o (specialize "lib-dynamic" /obj/lib0.o))"#,
        )
        .unwrap();
}

/// Rebinds library `i` to content version `v` (idempotent when the
/// version is unchanged — the reply caches still invalidate on the
/// touched path, which is exactly the full-reuse relink case).
fn rebind_lib(s: &Omos, i: usize, v: u32) {
    s.namespace.bind_object(
        &format!("/obj/lib{i}.o"),
        assemble(&format!("lib{i}.o"), &lib_src(i, v)).unwrap(),
    );
}

/// One step of a history.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Instantiate `/bin/<i>`.
    Instantiate(usize),
    /// Rebind library `lib` to content version `ver`.
    Rebind { lib: usize, ver: u32 },
    /// Run the partial-image program end to end (exec + lazy lookup).
    Run,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..PROGRAMS.len()).prop_map(Op::Instantiate),
        (0usize..PROGRAMS.len()).prop_map(Op::Instantiate),
        ((0usize..NLIBS), (0u32..=MAX_VER)).prop_map(|(lib, ver)| Op::Rebind { lib, ver }),
        Just(Op::Run),
    ]
}

/// Everything the server said during one history, billing excluded:
/// what the oracle requires to be identical across transports, jobs,
/// and the incremental/full rebuild paths.
#[derive(Debug, PartialEq, Eq)]
struct ServerSide {
    /// Per-instantiate: program index, manifest hash, and the
    /// concatenated image bytes (program first, then libraries).
    replies: Vec<(usize, u64, Vec<u8>)>,
    /// Per-run: the stop reason (all must exit identically).
    runs: Vec<StopReason>,
}

/// Replays `history` on a fresh world and reports the server-visible
/// bytes plus the relink counters the incremental legs assert over.
fn replay(
    transport: Transport,
    jobs: usize,
    incremental: bool,
    history: &[Op],
) -> (ServerSide, u64, u64) {
    let server = Omos::new(CostModel::hpux(), transport);
    server.set_eval_jobs(jobs);
    server.set_incremental_relink(incremental);
    populate(&server);
    let cost = CostModel::hpux();
    let mut clock = SimClock::new();
    let mut fs = InMemFs::new();
    let mut side = ServerSide {
        replies: Vec::new(),
        runs: Vec::new(),
    };
    for op in history {
        match *op {
            Op::Instantiate(i) => {
                let reply = server
                    .instantiate(&format!("/bin/{}", PROGRAMS[i].0))
                    .expect("programs instantiate");
                let mut bytes = encode_image(&reply.program.image);
                for lib in &reply.libraries {
                    bytes.extend_from_slice(&encode_image(&lib.image));
                }
                side.replies.push((i, reply.manifest.0, bytes));
            }
            Op::Rebind { lib, ver } => rebind_lib(&server, lib, ver),
            Op::Run => {
                let out = run_under_omos(
                    &server, "/bin/dyn", false, &mut clock, &cost, &mut fs, 100_000,
                )
                .expect("dyn program runs");
                side.runs.push(out.stop);
            }
        }
    }
    let c = server.trace_snapshot().counters;
    (side, c.relink_partials, c.relink_fallbacks)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The oracle: for arbitrary histories with interleaved rebinds,
    /// the incremental relink engine produces byte-identical images,
    /// manifests, and program behavior to the historical full-rebuild
    /// path, across all five transports and jobs ∈ {1, 8} — and it
    /// never abandons a relink on these clean worlds.
    #[test]
    fn incremental_equals_cold_on_every_transport_and_jobs(
        history in proptest::collection::vec(op_strategy(), 1..14),
    ) {
        // Reference: the historical full path, sequential, mach-ipc.
        let (want, _, _) = replay(Transport::MachIpc, 1, false, &history);
        for transport in Transport::ALL {
            for jobs in [1usize, 8] {
                let (full, _, _) = replay(transport, jobs, false, &history);
                prop_assert_eq!(
                    &full, &want,
                    "full path diverged on {} jobs={}", transport.name(), jobs
                );
                let (incr, _, fallbacks) = replay(transport, jobs, true, &history);
                prop_assert_eq!(
                    &incr, &want,
                    "incremental relink changed server-visible bytes on {} jobs={}",
                    transport.name(), jobs
                );
                prop_assert_eq!(
                    fallbacks, 0,
                    "incremental relink abandoned a plan on {} jobs={}",
                    transport.name(), jobs
                );
            }
        }
    }
}

/// The oracle above would pass vacuously if rebind-invalidated rebuilds
/// never took the incremental path: a fixed rebind-heavy history must
/// relink incrementally, with zero fallbacks, and still match the full
/// path byte for byte.
#[test]
fn rebind_heavy_history_actually_relinks_incrementally() {
    let history = vec![
        Op::Instantiate(2),
        Op::Instantiate(1),
        Op::Rebind { lib: 1, ver: 2 },
        Op::Instantiate(2),
        Op::Instantiate(1),
        Op::Rebind { lib: 0, ver: 1 },
        Op::Rebind { lib: 1, ver: 0 },
        Op::Instantiate(2),
        Op::Instantiate(0),
        Op::Instantiate(3),
    ];
    let (want, relinks, _) = replay(Transport::SysVMsg, 1, false, &history);
    assert_eq!(relinks, 0, "the full path never relinks incrementally");
    let (got, relinks, fallbacks) = replay(Transport::SysVMsg, 1, true, &history);
    assert_eq!(got, want);
    // Three rebuilds were rebind-invalidated (the cold first builds and
    // first-touch misses are not relinks): each takes the incremental path.
    assert_eq!(relinks, 3);
    assert_eq!(fallbacks, 0);
}

/// The takeover/held-version oracle: a client process runs (and keeps
/// running off) the partial image of lib0's original version while the
/// library ping-pongs to new content and back. The version the client
/// holds is exactly the placement a careless takeover would release
/// (same name, content no longer current); the fixed solver keeps it
/// booked, so the reuse lands back on the original ranges, every run
/// observes the version live at its instant, and the incremental
/// engine matches the cold path byte for byte on all five transports
/// and both jobs settings.
#[test]
fn rebind_while_client_holds_avoided_version_incremental_equals_cold() {
    let history = vec![
        Op::Instantiate(0),
        Op::Run, // binds lib0 v0 into a live client
        Op::Rebind { lib: 0, ver: 2 },
        Op::Instantiate(0),
        Op::Run,                       // observes v2
        Op::Rebind { lib: 0, ver: 0 }, // back to the held version
        Op::Instantiate(0),
        Op::Instantiate(2),
        Op::Run, // observes v0 again — its ranges were never unmapped
    ];
    let (want, _, _) = replay(Transport::MachIpc, 1, false, &history);
    // The runs pin liveness: _f0 returns 10 + version.
    assert_eq!(
        want.runs,
        vec![
            StopReason::Exited(10),
            StopReason::Exited(12),
            StopReason::Exited(10)
        ]
    );
    for transport in Transport::ALL {
        for jobs in [1usize, 8] {
            let (full, _, _) = replay(transport, jobs, false, &history);
            assert_eq!(
                full,
                want,
                "full path diverged on {} jobs={jobs}",
                transport.name()
            );
            let (incr, _, fallbacks) = replay(transport, jobs, true, &history);
            assert_eq!(
                incr,
                want,
                "incremental relink changed server-visible bytes on {} jobs={jobs}",
                transport.name()
            );
            assert_eq!(
                fallbacks,
                0,
                "incremental relink abandoned a plan on {} jobs={jobs}",
                transport.name()
            );
        }
    }
}

/// No unmapped-live-range regression: after the ping-pong above, every
/// base the final manifests record is still a live solver booking owned
/// by its library — the takeover sequence never left a mapped client
/// range unbooked (which is exactly what releasing a live
/// avoided-version booking used to do).
#[test]
fn held_version_ranges_stay_booked_across_takeover() {
    let server = Omos::new(CostModel::hpux(), Transport::MachIpc);
    populate(&server);
    server.instantiate("/bin/a").unwrap();
    rebind_lib(&server, 0, 2);
    server.instantiate("/bin/a").unwrap();
    rebind_lib(&server, 0, 0);
    server.instantiate("/bin/a").unwrap();
    let m = server.explain("/bin/a").unwrap();
    // The v0 reuse landed back on its original constraint bases.
    assert_eq!(m.libraries[0].text_base, 0x0100_0000);
    assert_eq!(m.libraries[0].data_base, 0x4100_0000);
    let booked: Vec<(String, u64, u64)> = server
        .solver()
        .allocations()
        .map(|(n, a)| (n.to_string(), a.base, a.size))
        .collect();
    for lib in &m.libraries {
        for base in [u64::from(lib.text_base), u64::from(lib.data_base)] {
            assert!(
                booked.iter().any(|(n, b, _)| n == &lib.name && *b == base),
                "manifest base {base:#x} of `{}` is not a live booking: {booked:?}",
                lib.name
            );
        }
    }
}

/// Live-update oracle: a running partial-image process that is
/// live-patched after a rebind (quiesce, retarget stubs, swap bound
/// slots, resume) answers exactly like a process cold-built from the
/// post-rebind reply.
#[test]
fn live_updated_process_answers_like_a_cold_relinked_one() {
    let server = Omos::new(CostModel::hpux(), Transport::MachIpc);
    populate(&server);
    let cost = CostModel::hpux();
    let mut clock = SimClock::new();
    let mut fs = InMemFs::new();
    let mut ipc = IpcStats::default();

    // Build and run once: the first call binds the branch-table slot
    // against the version-0 library (exit = _f0 = 10).
    let old_reply = server.instantiate("/bin/dyn").unwrap();
    let out = run_under_omos(
        &server, "/bin/dyn", false, &mut clock, &cost, &mut fs, 100_000,
    )
    .expect("dyn runs cold");
    assert_eq!(out.stop, StopReason::Exited(10));

    // Keep a process of our own at the *old* text, with its slot bound.
    let mut proc = {
        let mut p = omos::os::Process::spawn(&old_reply.program.frames, &mut clock, &cost)
            .expect("process spawns");
        for lib in &old_reply.libraries {
            p.map_more(&lib.frames, &mut clock, &cost).unwrap();
        }
        p
    };
    let mut binder = OmosBinder::new(&server);
    let first = run_process(&mut proc, &mut clock, &cost, &mut fs, &mut binder, 100_000);
    assert_eq!(first.stop, StopReason::Exited(10));

    // Rebind lib0 and derive the post-rebind reply (incremental path).
    rebind_lib(&server, 0, 2);
    let new_reply = server.instantiate("/bin/dyn").unwrap();
    assert_ne!(old_reply.manifest, new_reply.manifest);

    // Live-patch the quiesced process instead of rebuilding it.
    let report = live_update(
        &server, &mut proc, &old_reply, &new_reply, &mut clock, &cost, &mut ipc,
    )
    .expect("live update succeeds");
    // lib0 exports _f0 and _g0: both stubs retarget, but only the
    // called-and-bound _f0 slot swaps; _g0 stays lazy.
    assert_eq!(report.stubs_retargeted, 2);
    assert_eq!(report.slots_swapped, 1, "the bound slot swaps in place");
    assert_eq!(report.slots_lazy, 1);

    // Resume from the entry point: identical behavior to a cold
    // process built from the new reply.
    proc.vm = Vm::new(old_reply.program.frames.entry.unwrap());
    proc.vm.regs[14] = STACK_TOP - 64;
    let mut binder = OmosBinder::new(&server);
    let live = run_process(&mut proc, &mut clock, &cost, &mut fs, &mut binder, 100_000);
    let cold = run_under_omos(
        &server, "/bin/dyn", false, &mut clock, &cost, &mut fs, 100_000,
    )
    .expect("dyn runs from the new reply");
    assert_eq!(live.stop, cold.stop);
    assert_eq!(live.stop, StopReason::Exited(12), "version 2 value, not 10");
    let snap = server.trace_snapshot();
    assert_eq!(snap.counters.live_updates, 1);
    assert_eq!(snap.counters.live_slots_swapped, 1);
}

/// Minimality: a rebind invalidates exactly the replies whose manifest
/// diff is non-empty. Programs that do not link the rebound library
/// keep their cached reply — over-invalidation fails this test — and
/// the predicted dirty-symbol set matches the rebound library's
/// exports, no more.
#[test]
fn rebind_invalidates_exactly_the_manifest_predicted_set() {
    let server = Omos::new(CostModel::hpux(), Transport::MachIpc);
    populate(&server);
    for (p, _) in PROGRAMS {
        let r = server.instantiate(&format!("/bin/{p}")).unwrap();
        assert!(!r.cache_hit);
    }
    let before: Vec<_> = PROGRAMS
        .iter()
        .map(|(p, _)| server.explain(&format!("/bin/{p}")).unwrap())
        .collect();

    // Rebind lib1: a layout-shifting content change.
    rebind_lib(&server, 1, 1);

    let snap0 = server.trace_snapshot().counters;
    let mut predicted_dirty = 0u64;
    for (i, (p, libs)) in PROGRAMS.iter().enumerate() {
        let after = server.explain(&format!("/bin/{p}")).unwrap();
        let d = diff(&before[i], &after);
        let expect_dirty = libs.contains(&1);
        assert_eq!(
            !d.is_empty(),
            expect_dirty,
            "/bin/{p}: manifest diff must flag exactly the lib1-linked programs"
        );
        predicted_dirty += u64::from(expect_dirty);
        if expect_dirty {
            // The dirty-symbol set is lib1's shifted export, nothing
            // else: _g1 moved (pad instructions shifted it), while _f1
            // keeps its address (only its bytes changed).
            assert_eq!(d.changed_symbols(), ["_g1"], "/bin/{p}");
        }
        let r = server.instantiate(&format!("/bin/{p}")).unwrap();
        assert_eq!(
            r.cache_hit, !expect_dirty,
            "/bin/{p}: invalidation must match the manifest prediction"
        );
        assert_eq!(
            r.manifest,
            after.hash(),
            "/bin/{p}: reply matches the derivation"
        );
    }
    let snap1 = server.trace_snapshot().counters;
    assert_eq!(
        snap1.reply_stale - snap0.reply_stale,
        predicted_dirty,
        "exactly the predicted entries were invalidated — no more, no less"
    );
    assert_eq!(
        snap1.relink_partials - snap0.relink_partials,
        predicted_dirty,
        "every invalidated reply rebuilt through the incremental engine"
    );
}

/// Tier-2 composition: when a rebind leaves a program's library
/// subgraph clean (an idempotent rebind touches the dependency path but
/// changes no content), the rebuild reuses every image — spilled ones
/// fault back in through manifest verification — and the linker never
/// runs. Counter-pinned: zero link-stage samples, zero fallbacks.
#[test]
fn clean_subgraph_faults_in_spilled_images_without_relinking() {
    let spill = Arc::new(SpillTier::new(u64::MAX, CostModel::hpux()));
    let server = Omos::with_image_cache(
        CostModel::hpux(),
        Transport::MachIpc,
        ImageCache::with_shards(1, 1).with_spill(Arc::clone(&spill)),
    );
    populate(&server);
    let first = server.instantiate("/bin/c").unwrap();
    assert!(
        spill.stats().spills > 0,
        "the one-byte tier 1 pushed images into the spill tier"
    );

    // Idempotent rebind: same bytes, same content keys — the reply
    // invalidates (touched path) but the whole subgraph stays clean.
    rebind_lib(&server, 0, 0);

    let link_count = |s: &omos::core::trace::TraceSnapshot| {
        s.stages
            .iter()
            .find(|h| h.stage == Stage::Link)
            .map_or(0, |h| h.count)
    };
    let snap0 = server.trace_snapshot();
    let faults0 = spill.stats().fault_ins;
    let rebuilt = server.instantiate("/bin/c").unwrap();
    let snap1 = server.trace_snapshot();

    assert!(!rebuilt.cache_hit, "the rebind invalidated the reply");
    assert_eq!(rebuilt.manifest, first.manifest, "identical resolution");
    assert_eq!(
        snap1.counters.relink_partials - snap0.counters.relink_partials,
        1,
        "the rebuild went through the incremental engine"
    );
    assert_eq!(
        snap1.counters.relink_fallbacks,
        snap0.counters.relink_fallbacks
    );
    assert_eq!(
        link_count(&snap1) - link_count(&snap0),
        0,
        "a clean subgraph must never relink — every image is reused"
    );
    assert!(
        spill.stats().fault_ins > faults0,
        "reused images came back through verified tier-2 fault-ins"
    );
    assert_eq!(spill.stats().verify_drops, 0);

    // And the faulted-in reply is byte-identical to the original.
    assert_eq!(
        encode_image(&rebuilt.program.image),
        encode_image(&first.program.image)
    );
    for (a, b) in rebuilt.libraries.iter().zip(&first.libraries) {
        assert_eq!(a.key, b.key);
        assert_eq!(encode_image(&a.image), encode_image(&b.image));
    }
}

/// World sanity: the oracle's programs actually execute through their
/// libraries (a vacuously-empty world would make every oracle above
/// meaningless).
#[test]
fn oracle_world_programs_exit_with_their_library_values() {
    let server = Omos::new(CostModel::hpux(), Transport::MachIpc);
    populate(&server);
    let cost = CostModel::hpux();
    let mut clock = SimClock::new();
    let mut fs = InMemFs::new();
    // /bin/a calls _f0 (10 + v=0) then _g0 (90): last value wins.
    let out = run_under_omos(&server, "/bin/a", true, &mut clock, &cost, &mut fs, 100_000)
        .expect("a runs");
    assert_eq!(out.stop, StopReason::Exited(90));
}
