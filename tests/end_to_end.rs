//! End-to-end integration: instantiate → place → link → map → execute,
//! across exec paths, caching, and the constraint system.

use omos::core::{exec_bootstrap, run_under_omos, Omos, OmosError};
use omos::isa::{assemble, StopReason};
use omos::os::ipc::{IpcStats, Transport};
use omos::os::{CostModel, InMemFs, SimClock};

/// Builds a world with one program and two libraries (the second library
/// depends on the first — inter-library references).
fn world() -> Omos {
    let s = Omos::new(CostModel::hpux(), Transport::SysVMsg);
    s.namespace.bind_object(
        "/libc/base.o",
        assemble(
            "base.o",
            r#"
            .text
            .global _add10
_add10:     addi r1, r1, 10
            ret
            .data
            .global _base_version
_base_version: .word 7
            "#,
        )
        .unwrap(),
    );
    s.namespace.bind_object(
        "/libm/wrap.o",
        assemble(
            "wrap.o",
            r#"
            .text
            .global _add20
            .extern _add10
_add20:     mov r9, r15
            call _add10
            call _add10
            mov r15, r9
            ret
            "#,
        )
        .unwrap(),
    );
    s.namespace
        .bind_blueprint(
            "/lib/libbase",
            "(constraint-list \"T\" 0x1000000 \"D\" 0x41000000)\n(merge /libc/base.o)",
        )
        .unwrap();
    s.namespace
        .bind_blueprint(
            "/lib/libwrap",
            "(constraint-list \"T\" 0x1400000 \"D\" 0x41400000)\n(merge /libm/wrap.o)",
        )
        .unwrap();
    s.namespace.bind_object(
        "/obj/app.o",
        assemble(
            "app.o",
            r#"
            .text
            .global _start
_start:     li r1, 12
            call _add20
            li r2, _base_version
            ld r3, [r2]
            add r1, r1, r3
            sys 0
            "#,
        )
        .unwrap(),
    );
    // The program uses BOTH libraries; references cross library
    // boundaries (app -> libwrap -> libbase, app -> libbase data).
    s.namespace
        .bind_blueprint("/bin/app", "(merge /obj/app.o /lib/libbase /lib/libwrap)")
        .unwrap();
    s
}

#[test]
fn program_spanning_two_libraries_runs_under_both_exec_paths() {
    let s = world();
    // Pre-flight analysis is on for the whole pipeline: a false-positive
    // lint error on any of these blueprints would break instantiation.
    s.set_preflight(true);
    let cost = CostModel::hpux();
    let mut fs = InMemFs::new();
    for integrated in [false, true] {
        let mut clock = SimClock::new();
        let out = run_under_omos(
            &s, "/bin/app", integrated, &mut clock, &cost, &mut fs, 100_000,
        )
        .unwrap();
        // 12 + 20 + 7 = 39.
        assert_eq!(out.stop, StopReason::Exited(39), "integrated={integrated}");
    }
    // Two libraries, each built exactly once across all four mappings.
    assert_eq!(s.stats().libraries_built, 2);
}

#[test]
fn libraries_land_at_their_constrained_addresses() {
    let s = world();
    let reply = s.instantiate("/bin/app").unwrap();
    assert_eq!(reply.libraries.len(), 2);
    let addrs: Vec<u32> = reply
        .libraries
        .iter()
        .map(|l| l.image.segments.iter().map(|seg| seg.vaddr).min().unwrap())
        .collect();
    assert!(addrs.contains(&0x0100_0000));
    assert!(addrs.contains(&0x0140_0000));
}

#[test]
fn second_program_reuses_library_instances() {
    let s = world();
    s.namespace.bind_object(
        "/obj/other.o",
        assemble(
            "other.o",
            ".text\n.global _start\n_start: li r1, 1\n call _add10\n sys 0\n",
        )
        .unwrap(),
    );
    s.namespace
        .bind_blueprint("/bin/other", "(merge /obj/other.o /lib/libbase)")
        .unwrap();
    let a = s.instantiate("/bin/app").unwrap();
    let b = s.instantiate("/bin/other").unwrap();
    // Shared physical frames: both replies reference the same cached
    // libbase image.
    let base_a = a
        .libraries
        .iter()
        .find(|l| l.image.find("_add10").is_some())
        .expect("app uses libbase");
    let base_b = &b.libraries[0];
    assert!(std::sync::Arc::ptr_eq(base_a, base_b));
    assert_eq!(
        s.stats().libraries_built,
        2,
        "no new builds for the second program"
    );
}

#[test]
fn cold_then_warm_bootstrap_times_shrink() {
    let s = world();
    let cost = CostModel::hpux();
    let mut ipc = IpcStats::default();
    let mut clock = SimClock::new();
    let _ = exec_bootstrap(&s, "/bin/app", &mut clock, &cost, &mut ipc).unwrap();
    let cold = clock.times();
    let mut clock = SimClock::new();
    let _ = exec_bootstrap(&s, "/bin/app", &mut clock, &cost, &mut ipc).unwrap();
    let warm = clock.times();
    assert!(
        warm.elapsed_ns < cold.elapsed_ns,
        "cache must cut exec cost"
    );
}

#[test]
fn rebinding_a_fragment_changes_the_behavior() {
    let s = world();
    let cost = CostModel::hpux();
    let mut fs = InMemFs::new();
    let mut clock = SimClock::new();
    let out = run_under_omos(&s, "/bin/app", true, &mut clock, &cost, &mut fs, 100_000).unwrap();
    assert_eq!(out.stop, StopReason::Exited(39));
    // A library fix "is instantly incorporated into all clients".
    s.namespace.bind_object(
        "/libc/base.o",
        assemble(
            "base.o",
            r#"
            .text
            .global _add10
_add10:     addi r1, r1, 100      ; the "fix"
            ret
            .data
            .global _base_version
_base_version: .word 8
            "#,
        )
        .unwrap(),
    );
    let mut clock = SimClock::new();
    let out = run_under_omos(&s, "/bin/app", true, &mut clock, &cost, &mut fs, 100_000).unwrap();
    // 12 + 200 + 8 = 220.
    assert_eq!(out.stop, StopReason::Exited(220));
}

#[test]
fn conflicting_library_preferences_force_an_alternate_version() {
    let s = world();
    // A second library whose constraint collides with libbase's address.
    s.namespace.bind_object(
        "/libx/x.o",
        assemble("x.o", ".text\n.global _x\n_x: li r1, 5\n ret\n").unwrap(),
    );
    s.namespace
        .bind_blueprint(
            "/lib/libx",
            "(constraint-list \"T\" 0x1000000 \"D\" 0x41000000)\n(merge /libx/x.o)",
        )
        .unwrap();
    s.namespace.bind_object(
        "/obj/uses-both.o",
        assemble(
            "ub.o",
            ".text\n.global _start\n_start: call _x\n call _add10\n sys 0\n",
        )
        .unwrap(),
    );
    s.namespace
        .bind_blueprint(
            "/bin/both",
            "(merge /obj/uses-both.o /lib/libbase /lib/libx)",
        )
        .unwrap();
    let reply = s.instantiate("/bin/both").unwrap();
    // Both libraries exist and do not overlap; the conflict was logged.
    let mut spans: Vec<(u64, u64)> = reply
        .libraries
        .iter()
        .flat_map(|l| {
            l.image
                .segments
                .iter()
                .map(|seg| (u64::from(seg.vaddr), seg.end()))
        })
        .collect();
    spans.sort_unstable();
    assert!(
        spans.windows(2).all(|w| w[0].1 <= w[1].0),
        "placed libraries overlap"
    );
    assert!(
        !s.solver().conflicts().is_empty(),
        "the unsatisfiable weak preference must be recorded"
    );
    let cost = CostModel::hpux();
    let mut fs = InMemFs::new();
    let mut clock = SimClock::new();
    let out = run_under_omos(&s, "/bin/both", true, &mut clock, &cost, &mut fs, 100_000).unwrap();
    assert_eq!(out.stop, StopReason::Exited(15));
}

#[test]
fn instantiate_arbitrary_blueprint_like_dynamic_loading() {
    // §5: "The meta-object specification may either be the name of a
    // meta-object found within the OMOS namespace, or an arbitrary
    // blueprint to be executed by OMOS."
    let s = world();
    let bp = omos::blueprint::Blueprint::parse(
        r#"(merge (source "asm" ".text\n.global _start\n_start: li r1, 9\n sys 0\n") /lib/libbase)"#,
    )
    .unwrap();
    let reply = s.instantiate_blueprint(&bp).unwrap();
    assert!(reply.program.image.entry.is_some());
    // Symbol values can be fetched from the reply's export maps.
    assert!(reply.libraries[0].image.find("_add10").is_some());
}

#[test]
fn missing_names_surface_as_typed_errors() {
    let s = world();
    assert!(matches!(
        s.instantiate("/bin/ghost"),
        Err(OmosError::NoSuchName(_))
    ));
    s.namespace
        .bind_blueprint("/bin/bad", "(merge /no/where)")
        .unwrap();
    assert!(matches!(s.instantiate("/bin/bad"), Err(OmosError::Eval(_))));
}
