//! The link-policy oracle.
//!
//! Blueprints attach `(policy KIND "PATTERN")` forms; this suite pins
//! the three behavioral contracts end-to-end, from parse through the
//! server's link paths to a running process:
//!
//! * **deny** fails the link with hard `OM017` errors — at instantiate
//!   time *and* through the static analyzer, with nothing built;
//! * **trampoline** wraps matching routines behind interposition stubs
//!   that are behaviorally transparent;
//! * **audit** wraps them behind counting stubs: per-process counters
//!   in the `PolicyData` window plus an in-order `MONLOG` event stream.
//!
//! And the compatibility contract the whole layer hangs on: replies for
//! policy-free blueprints — and for policies that match nothing — are
//! byte-identical to a world where the policy layer was never asked to
//! do anything, across every transport and both evaluation-parallelism
//! settings.

use omos::constraint::RegionClass;
use omos::core::{run_under_omos, Omos, OmosBinder, OmosError};
use omos::isa::{assemble, StopReason};
use omos::link::encode_image;
use omos::os::ipc::Transport;
use omos::os::{run_process, CostModel, InMemFs, Process, SimClock};

/// The exit code of `/bin/plain` (and of every wrapped variant): two
/// `_hot` calls (+1 each) and one `_cold` call (+5).
const EXIT: u32 = 7;

/// Binds one program whose routine calls are observable in the exit
/// code, plus one blueprint per policy flavor over the same object.
fn server(transport: Transport) -> Omos {
    let s = Omos::new(CostModel::hpux(), transport);
    s.namespace.bind_object(
        "/obj/app.o",
        assemble(
            "app.o",
            r#"
            .text
            .global _start, _hot, _cold
_start:     li r1, 0
            call _hot
            call _hot
            call _cold
            sys 0
_hot:       li r2, 1
            add r1, r1, r2
            ret
_cold:      li r2, 5
            add r1, r1, r2
            ret
            "#,
        )
        .unwrap(),
    );
    for (path, policies) in [
        ("/bin/plain", ""),
        ("/bin/noop", "(policy deny \"^_forbidden$\")\n"),
        ("/bin/deny", "(policy deny \"^_hot$\")\n"),
        ("/bin/tramp", "(policy trampoline \"^_(hot|cold)$\")\n"),
        ("/bin/audit", "(policy audit \"^_(hot|cold)$\")\n"),
    ] {
        s.namespace
            .bind_blueprint(path, &format!("{policies}(merge /obj/app.o)"))
            .unwrap();
    }
    s
}

/// Spawns a process from an instantiation reply and runs it to
/// completion, returning the outcome *and* the process so counters can
/// be read back out of its private policy-data pages.
fn run(s: &Omos, path: &str) -> (omos::os::RunOutcome, Process) {
    let mut clock = SimClock::new();
    let cost = CostModel::hpux();
    let mut fs = InMemFs::new();
    let reply = s.instantiate(path).unwrap();
    let mut proc = Process::spawn(&reply.program.frames, &mut clock, &cost).unwrap();
    for lib in &reply.libraries {
        proc.map_more(&lib.frames, &mut clock, &cost).unwrap();
    }
    let mut binder = OmosBinder::new(s);
    let out = run_process(&mut proc, &mut clock, &cost, &mut fs, &mut binder, 100_000);
    (out, proc)
}

#[test]
fn deny_policy_fails_instantiation_with_om017_and_builds_nothing() {
    let s = server(Transport::MachIpc);
    let err = s.instantiate("/bin/deny").unwrap_err();
    let OmosError::Policy(diags) = err else {
        panic!("expected OmosError::Policy, got: {err}");
    };
    assert!(!diags.is_empty());
    assert!(diags.iter().all(|d| d.code == "OM017"), "{diags:?}");
    assert!(
        diags.iter().any(|d| d.message.contains("_hot")),
        "the forbidden symbol is named: {diags:?}"
    );
    assert_eq!(
        s.stats().programs_built,
        0,
        "a denied link builds no images"
    );
    // The static analyzer reaches the same verdict without linking.
    let lint = s.lint("/bin/deny").unwrap();
    assert!(
        lint.iter().any(|d| d.code == "OM017"),
        "lint misses the deny violation: {lint:?}"
    );
    // The policy-free sibling over the same object still links and runs.
    let (out, _) = run(&s, "/bin/plain");
    assert_eq!(out.stop, StopReason::Exited(EXIT));
}

#[test]
fn trampoline_policy_is_behaviorally_transparent_and_traced() {
    let s = server(Transport::MachIpc);
    s.set_tracing(true);
    let mut clock = SimClock::new();
    let cost = CostModel::hpux();
    let mut fs = InMemFs::new();
    let out = run_under_omos(&s, "/bin/tramp", false, &mut clock, &cost, &mut fs, 100_000).unwrap();
    assert_eq!(out.stop, StopReason::Exited(EXIT), "stubs are transparent");
    let snap = s.trace_snapshot();
    assert_eq!(
        snap.counters.policy_trampolines, 2,
        "_hot and _cold wrapped"
    );
    assert_eq!(snap.counters.policy_audits, 0);
    // The wrap is visible in identity: same behavior, different image
    // and manifest than the policy-free program.
    let plain = s.instantiate("/bin/plain").unwrap();
    let tramp = s.instantiate("/bin/tramp").unwrap();
    assert_ne!(plain.manifest, tramp.manifest);
    assert_ne!(
        encode_image(&plain.program.image),
        encode_image(&tramp.program.image)
    );
}

#[test]
fn audit_policy_counts_entries_and_logs_the_monitor() {
    let s = server(Transport::MachIpc);
    let (out, mut proc) = run(&s, "/bin/audit");
    assert_eq!(
        out.stop,
        StopReason::Exited(EXIT),
        "audit stubs are transparent"
    );
    // Audit ids are sorted-name order: _cold = 0, _hot = 1; each slot is
    // counter_base + 4 * id at the start of the PolicyData window.
    let base = RegionClass::PolicyData.default_window().0 as u32;
    assert_eq!(proc.read_counter(base), Some(1), "_cold entered once");
    assert_eq!(proc.read_counter(base + 4), Some(2), "_hot entered twice");
    // MONLOG saw every entry, in call order: hot, hot, cold.
    assert_eq!(out.monitor_events, vec![1, 1, 0]);
}

#[test]
fn audit_counters_are_private_per_process() {
    let s = server(Transport::MachIpc);
    let base = RegionClass::PolicyData.default_window().0 as u32;
    let (_, mut first) = run(&s, "/bin/audit");
    let (_, mut second) = run(&s, "/bin/audit");
    // The second process starts from zeroed pages — counts do not
    // accumulate across processes even though the image frames are the
    // same shared cache entry.
    assert_eq!(second.read_counter(base), Some(1));
    assert_eq!(second.read_counter(base + 4), Some(2));
    // And the first process's tallies were not disturbed by the second
    // process running: the counter pages are private, not shared frames.
    assert_eq!(first.read_counter(base), Some(1));
    assert_eq!(first.read_counter(base + 4), Some(2));
}

/// The compatibility half of the design: a policy that matches nothing
/// must leave the reply *byte-identical* to the policy-free program —
/// same image bytes, same image key — while still being recorded in the
/// manifest (so `ofe explain` can diff policy sets).
#[test]
fn matchless_policy_reply_is_byte_identical_to_policy_free() {
    for jobs in [1usize, 8] {
        let s = server(Transport::MachIpc);
        s.set_eval_jobs(jobs);
        let plain = s.instantiate("/bin/plain").unwrap();
        let noop = s.instantiate("/bin/noop").unwrap();
        assert_eq!(
            encode_image(&plain.program.image),
            encode_image(&noop.program.image),
            "a matchless deny changed image bytes at jobs={jobs}"
        );
        assert_eq!(
            plain.program.key, noop.program.key,
            "a matchless deny changed the image key at jobs={jobs}"
        );
        assert_ne!(
            plain.manifest, noop.manifest,
            "the applied policy set is part of the manifest"
        );
    }
}

/// Policy-free replies are unaffected by the layer's existence: a
/// server that has linked policied programs hands out the *same bytes*
/// for a policy-free blueprint as a server that never saw a policy.
#[test]
fn policy_free_replies_do_not_change_when_policies_are_in_play() {
    let fresh = server(Transport::MachIpc);
    let want = fresh.instantiate("/bin/plain").unwrap();
    let busy = server(Transport::MachIpc);
    busy.instantiate("/bin/tramp").unwrap();
    busy.instantiate("/bin/audit").unwrap();
    let got = busy.instantiate("/bin/plain").unwrap();
    assert_eq!(
        encode_image(&want.program.image),
        encode_image(&got.program.image)
    );
    assert_eq!(want.manifest, got.manifest);
}

/// Determinism sweep over all three shipped policies: image bytes and
/// manifest hashes are identical on every transport and at both
/// `eval_jobs` settings (the parallel link path applies policies at the
/// same point as the sequential one).
#[test]
fn policied_replies_are_identical_across_transports_and_jobs() {
    for path in ["/bin/noop", "/bin/tramp", "/bin/audit"] {
        let reference = {
            let s = server(Transport::MachIpc);
            let r = s.instantiate(path).unwrap();
            (encode_image(&r.program.image), r.manifest)
        };
        for transport in Transport::ALL {
            for jobs in [1usize, 8] {
                let s = server(transport);
                s.set_eval_jobs(jobs);
                let r = s.instantiate(path).unwrap();
                assert_eq!(
                    encode_image(&r.program.image),
                    reference.0,
                    "{path} image bytes diverged on {} jobs={jobs}",
                    transport.name()
                );
                assert_eq!(
                    r.manifest,
                    reference.1,
                    "{path} manifest diverged on {} jobs={jobs}",
                    transport.name()
                );
            }
        }
    }
}
