//! The simulated OS's syscall surface, exercised by real U32 programs:
//! files, directories, the heap, and the clock — everything the
//! workloads rely on.

use omos::isa::{assemble, StopReason};
use omos::link::{link, LinkOptions};
use omos::os::process::{run_process, NoBinder, Process};
use omos::os::{CostModel, ImageFrames, InMemFs, SimClock};

fn run(src: &str, fs: &mut InMemFs) -> (StopReason, Vec<u8>, SimClock) {
    let obj = assemble("t.o", src).expect("assembles");
    let out = link(&[obj], &LinkOptions::program("t")).expect("links");
    let frames = ImageFrames::from_image(&out.image);
    let cost = CostModel::hpux();
    let mut clock = SimClock::new();
    let mut proc = Process::spawn(&frames, &mut clock, &cost).expect("spawns");
    let run = run_process(&mut proc, &mut clock, &cost, fs, &mut NoBinder, 1_000_000);
    (run.stop, run.console, clock)
}

#[test]
fn write_to_stdout_reaches_console() {
    let mut fs = InMemFs::new();
    let (stop, console, clock) = run(
        r#"
        .text
        .global _start
_start: li r1, 1
        li r2, _msg
        li r3, 5
        sys 1
        li r1, 0
        sys 0
        .rodata
_msg:   .ascii "hola!"
        "#,
        &mut fs,
    );
    assert_eq!(stop, StopReason::Exited(0));
    assert_eq!(console, b"hola!");
    assert!(clock.system_ns > 0, "syscalls charge system time");
    assert!(clock.user_ns > 0, "instructions charge user time");
}

#[test]
fn open_read_close_roundtrip() {
    let mut fs = InMemFs::new();
    fs.put("/data/in.txt", b"abcdef".to_vec());
    let (stop, console, _) = run(
        r#"
        .text
        .global _start
_start: li r2, _path
        sys 3               ; open -> fd in r1
        mov r12, r1
        li r2, _buf
        li r3, 4
        sys 2               ; read 4 bytes
        mov r3, r1          ; bytes read
        li r1, 1
        li r2, _buf
        sys 1               ; echo them
        mov r1, r12
        sys 4               ; close
        li r1, 0
        sys 0
        .rodata
_path:  .asciz "/data/in.txt"
        .bss
_buf:   .space 16
        "#,
        &mut fs,
    );
    assert_eq!(stop, StopReason::Exited(0));
    assert_eq!(console, b"abcd");
}

#[test]
fn open_missing_file_returns_minus_one() {
    let mut fs = InMemFs::new();
    let (stop, _, _) = run(
        r#"
        .text
        .global _start
_start: li r2, _path
        sys 3
        li r2, -1
        bne r1, r2, _bad
        li r1, 0
        sys 0
_bad:   li r1, 1
        sys 0
        .rodata
_path:  .asciz "/missing"
        "#,
        &mut fs,
    );
    assert_eq!(stop, StopReason::Exited(0));
}

#[test]
fn write_creates_file_in_fs() {
    let mut fs = InMemFs::new();
    fs.put("/out/log", Vec::new());
    let (stop, _, _) = run(
        r#"
        .text
        .global _start
_start: li r2, _path
        sys 3               ; open the (empty) file
        li r2, _msg
        li r3, 3
        sys 1               ; write to its fd
        li r1, 0
        sys 0
        .rodata
_path:  .asciz "/out/log"
_msg:   .ascii "abc"
        "#,
        &mut fs,
    );
    assert_eq!(stop, StopReason::Exited(0));
    assert_eq!(fs.peek("/out/log").unwrap(), b"abc");
}

#[test]
fn stat_fills_sixteen_byte_record() {
    let mut fs = InMemFs::new();
    fs.put("/f", vec![0; 321]);
    let (stop, _, _) = run(
        r#"
        .text
        .global _start
_start: li r2, _path
        li r3, _buf
        sys 5
        li r2, _buf
        ld r1, [r2]          ; size field
        sys 0
        .rodata
_path:  .asciz "/f"
        .bss
_buf:   .space 16
        "#,
        &mut fs,
    );
    assert_eq!(stop, StopReason::Exited(321));
}

#[test]
fn getdents_iterates_and_terminates() {
    let mut fs = InMemFs::new();
    fs.put("/d/a", vec![1]);
    fs.put("/d/b", vec![2]);
    fs.put("/d/c", vec![3]);
    let (stop, _, _) = run(
        r#"
        .text
        .global _start
_start: li r2, _path
        sys 3
        mov r12, r1
        li r11, 0            ; entry count
_loop:  mov r1, r12
        li r2, _ent
        sys 6
        beq r1, r0, _done
        addi r11, r11, 1
        beq r0, r0, _loop
_done:  mov r1, r11
        sys 0
        .rodata
_path:  .asciz "/d"
        .bss
_ent:   .space 32
        "#,
        &mut fs,
    );
    assert_eq!(stop, StopReason::Exited(3));
}

#[test]
fn brk_grows_heap_and_memory_is_usable() {
    let mut fs = InMemFs::new();
    let (stop, _, _) = run(
        r#"
        .text
        .global _start
_start: li r1, 8192
        sys 7                ; brk(8192) -> old break
        mov r12, r1
        li r2, 0xabcd
        st r2, [r12+4096]   ; touch deep into the new heap
        ld r1, [r12+4096]
        li r2, 0xabcd
        bne r1, r2, _bad
        li r1, 0
        sys 0
_bad:   li r1, 1
        sys 0
        "#,
        &mut fs,
    );
    assert_eq!(stop, StopReason::Exited(0));
}

#[test]
fn time_syscall_advances() {
    let mut fs = InMemFs::new();
    let (stop, _, _) = run(
        r#"
        .text
        .global _start
_start: sys 10
        mov r12, r1
        nop
        nop
        sys 10
        sub r1, r1, r12      ; later - earlier
        blt r1, r0, _bad     ; must be non-negative
        li r1, 0
        sys 0
_bad:   li r1, 1
        sys 0
        "#,
        &mut fs,
    );
    assert_eq!(stop, StopReason::Exited(0));
}

#[test]
fn bad_fd_faults_with_message() {
    let mut fs = InMemFs::new();
    let (stop, _, _) = run(
        ".text\n.global _start\n_start: li r1, 99\n li r2, 0\n li r3, 1\n sys 2\n sys 0\n",
        &mut fs,
    );
    assert!(
        matches!(
            stop,
            StopReason::Fault(omos::isa::VmFault::BadSyscall { .. })
        ),
        "got {stop:?}"
    );
}

#[test]
fn sync_write_mode_slows_program_writes() {
    let cost = {
        let mut c = CostModel::hpux();
        c.sync_write_mult = 3;
        c
    };
    let src = r#"
        .text
        .global _start
_start: li r2, _path
        sys 3
        li r2, _msg
        li r3, 4
        sys 1
        li r1, 0
        sys 0
        .rodata
_path:  .asciz "/out"
_msg:   .ascii "data"
        "#;
    let obj = assemble("t.o", src).unwrap();
    let out = link(&[obj], &LinkOptions::program("t")).unwrap();
    let frames = ImageFrames::from_image(&out.image);
    let mut elapsed = Vec::new();
    for sync in [false, true] {
        let mut fs = InMemFs::new();
        fs.put("/out", Vec::new());
        fs.sync_writes = sync;
        let mut clock = SimClock::new();
        let mut proc = Process::spawn(&frames, &mut clock, &cost).unwrap();
        let r = run_process(
            &mut proc,
            &mut clock,
            &cost,
            &mut fs,
            &mut NoBinder,
            100_000,
        );
        assert_eq!(r.stop, StopReason::Exited(0));
        elapsed.push(clock.elapsed_ns);
    }
    assert!(elapsed[1] > elapsed[0], "sync writes must cost more");
}
