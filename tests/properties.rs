//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;

use omos::link::{link, LinkOptions};
use omos::obj::encode::{read, read_any, write, Format};
use omos::obj::view::{RenameTarget, View, ViewOp};
use omos::obj::{fnv1a, ObjectFile, Regex, RelocKind, Relocation, Section, SectionKind, Symbol};

// --- Strategies -----------------------------------------------------------------

fn arb_symbol_name() -> impl Strategy<Value = String> {
    "[a-z_][a-z0-9_]{0,12}".prop_map(|s| format!("_{s}"))
}

fn arb_reloc_kind() -> impl Strategy<Value = RelocKind> {
    prop_oneof![
        Just(RelocKind::Abs32),
        Just(RelocKind::Pcrel32),
        Just(RelocKind::Abs64),
        Just(RelocKind::Hi16),
        Just(RelocKind::Lo16),
    ]
}

prop_compose! {
    /// A structurally valid object file: one text section with room for
    /// relocations, a data section, unique global symbols, and in-range
    /// relocation sites.
    fn arb_object()(
        text_words in 4usize..64,
        data in proptest::collection::vec(any::<u8>(), 0..64),
        names in proptest::collection::btree_set(arb_symbol_name(), 1..8),
        reloc_spec in proptest::collection::vec((any::<u16>(), arb_reloc_kind(), any::<i32>()), 0..8),
        bss in 0u64..256,
    ) -> ObjectFile {
        let mut o = ObjectFile::new("prop.o");
        let t = o.add_section(Section::with_bytes(
            ".text", SectionKind::Text, vec![0; text_words * 8], 8));
        let d = o.add_section(Section::with_bytes(".data", SectionKind::Data, data, 8));
        o.add_section(Section::bss(".bss", bss, 8));
        let names: Vec<String> = names.into_iter().collect();
        for (i, n) in names.iter().enumerate() {
            let sym = if i % 3 == 2 {
                Symbol::common(n, (i as u64 + 1) * 8)
            } else {
                Symbol::defined(n, t, (i as u64 * 8) % (text_words as u64 * 8))
            };
            o.define(sym).expect("unique names");
        }
        for (j, (site, kind, addend)) in reloc_spec.iter().enumerate() {
            let width = kind.width();
            let limit = text_words as u64 * 8 - width;
            let offset = u64::from(*site) % (limit + 1);
            let sym = &names[j % names.len()];
            o.relocate(Relocation::new(t, offset, *kind, sym).with_addend(i64::from(*addend)));
        }
        let _ = d;
        o
    }
}

// --- Encoding properties ---------------------------------------------------------

proptest! {
    #[test]
    fn encode_roundtrip_aout(obj in arb_object()) {
        let bytes = write(Format::Aout, &obj);
        let back = read(Format::Aout, &bytes).expect("decodes");
        prop_assert_eq!(&back, &obj);
        prop_assert_eq!(back.content_hash(), obj.content_hash());
    }

    #[test]
    fn encode_roundtrip_som(obj in arb_object()) {
        let bytes = write(Format::Som, &obj);
        let back = read(Format::Som, &bytes).expect("decodes");
        prop_assert_eq!(back, obj);
    }

    #[test]
    fn sniffing_always_identifies_own_format(obj in arb_object()) {
        for fmt in [Format::Aout, Format::Som] {
            let bytes = write(fmt, &obj);
            prop_assert_eq!(read_any(&bytes).expect("dispatches"), obj.clone());
        }
    }

    #[test]
    fn truncation_never_panics_and_always_errors(obj in arb_object(), cut in 0usize..100) {
        let bytes = write(Format::Aout, &obj);
        if cut < bytes.len() {
            // Must error (truncated), never panic.
            prop_assert!(read(Format::Aout, &bytes[..cut]).is_err());
        }
    }

    #[test]
    fn corruption_never_panics(obj in arb_object(), pos in any::<u16>(), val in any::<u8>()) {
        let mut bytes = write(Format::Som, &obj);
        let p = pos as usize % bytes.len();
        bytes[p] = val;
        // Decoding may succeed (benign byte) or fail, but must not panic.
        let _ = read(Format::Som, &bytes);
    }
}

// --- View properties --------------------------------------------------------------

proptest! {
    #[test]
    fn materialized_view_always_validates(obj in arb_object(), which in 0u8..6) {
        let v = View::from_object(obj);
        let pattern = Regex::new("^_[a-m]").expect("compiles");
        let op = match which {
            0 => ViewOp::Hide { pattern },
            1 => ViewOp::Show { pattern },
            2 => ViewOp::Restrict { pattern },
            3 => ViewOp::Project { pattern },
            4 => ViewOp::CopyAs { pattern, replacement: "_X".into() },
            _ => ViewOp::Rename { pattern, replacement: "_Y".into(), target: RenameTarget::Both },
        };
        // Many-to-one copy-as/rename collisions are a legitimate, typed
        // operator error; anything that *does* materialize must be
        // structurally valid with no dangling relocations.
        match v.derive(op).materialize() {
            Err(omos::obj::ObjError::DuplicateSymbol(_)) => {}
            Err(other) => return Err(TestCaseError::fail(format!("unexpected error {other}"))),
            Ok(m) => {
                prop_assert!(m.validate().is_ok());
                for r in &m.relocs {
                    prop_assert!(
                        m.symbols.get(&r.symbol).is_some(),
                        "dangling reloc to {}",
                        r.symbol
                    );
                }
            }
        }
    }

    #[test]
    fn view_hash_is_deterministic(obj in arb_object()) {
        let v1 = View::from_object(obj.clone());
        let v2 = View::from_object(obj);
        let p = || Regex::new("^_").expect("compiles");
        let a = v1.derive(ViewOp::Hide { pattern: p() });
        let b = v2.derive(ViewOp::Hide { pattern: p() });
        prop_assert_eq!(a.content_hash(), b.content_hash());
        prop_assert_eq!(a.materialize().expect("ok").content_hash(),
                        b.materialize().expect("ok").content_hash());
    }

    #[test]
    fn restrict_then_project_leaves_nothing_bound(obj in arb_object()) {
        let v = View::from_object(obj)
            .derive(ViewOp::Restrict { pattern: Regex::new("").expect("compiles") });
        let m = v.materialize().expect("ok");
        use omos::obj::SymbolBinding;
        for s in m.symbols.iter() {
            if s.binding != SymbolBinding::Local && !s.frozen {
                // Commons and absolutes are definitions too; restrict
                // virtualizes them as well.
                prop_assert!(!s.def.is_definition(), "{} still bound", s.name);
            }
        }
    }
}

// --- Linker properties ---------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn linked_image_has_no_overlaps_and_all_symbols_inside(obj in arb_object()) {
        let mut opts = LinkOptions::library("prop", 0x0040_0000, 0x4000_0000);
        opts.allow_undefined = true;
        let out = link(&[obj], &opts).expect("links");
        prop_assert!(out.image.no_overlap());
        for (&addr, seg_found) in out.image.symbols.values().zip(std::iter::repeat(true)) {
            // Absolute symbols may point anywhere; defined ones must be
            // inside some segment or at a segment end (zero-size tail).
            let inside = out.image.segment_at(addr).is_some()
                || out.image.segments.iter().any(|s| s.end() == u64::from(addr));
            prop_assert!(inside || addr < 0x0040_0000, "symbol at {addr:#x} floats");
            let _ = seg_found;
        }
    }

    #[test]
    fn linking_is_deterministic(obj in arb_object()) {
        let mut opts = LinkOptions::library("prop", 0x0040_0000, 0x4000_0000);
        opts.allow_undefined = true;
        let a = link(std::slice::from_ref(&obj), &opts).expect("links");
        let b = link(&[obj], &opts).expect("links");
        prop_assert_eq!(a.image.content_hash(), b.image.content_hash());
        prop_assert_eq!(a.stats, b.stats);
    }
}

// --- Hash properties ---------------------------------------------------------------------

proptest! {
    #[test]
    fn fnv_collision_free_on_small_distinct_inputs(a in "[a-z]{1,8}", b in "[a-z]{1,8}") {
        if a != b {
            prop_assert_ne!(fnv1a(a.as_bytes()), fnv1a(b.as_bytes()));
        }
    }
}

// --- Regex engine vs a reference matcher for literal patterns -----------------------------

proptest! {
    #[test]
    fn regex_literal_agrees_with_contains(needle in "[a-z]{1,6}", hay in "[a-z]{0,20}") {
        let re = Regex::new(&needle).expect("literal compiles");
        prop_assert_eq!(re.is_match(&hay), hay.contains(&needle));
    }

    #[test]
    fn regex_anchored_literal_agrees_with_eq(needle in "[a-z]{1,6}", hay in "[a-z]{0,8}") {
        let re = Regex::new(&format!("^{needle}$")).expect("compiles");
        prop_assert_eq!(re.is_match(&hay), hay == needle);
    }

    #[test]
    fn regex_replace_preserves_remainder(prefix in "[a-z]{1,4}", rest in "[a-z]{0,6}") {
        let re = Regex::new(&format!("^{prefix}")).expect("compiles");
        let input = format!("{prefix}{rest}");
        prop_assert_eq!(re.replace(&input, "X"), format!("X{rest}"));
    }
}
