//! Differential testing of the static analyzer against the evaluator.
//!
//! The analyzer promises that its verdicts match what evaluation would
//! do: a blueprint it calls error-free must evaluate, and the error
//! classes it reports must correspond to the failures evaluation
//! produces. These properties are checked over randomized m-graphs
//! drawn from a small world of object files.
//!
//! The second half checks the *cost* claim: analysis never materializes
//! a view (observed through the global materialize counter) and is
//! measurably cheaper than evaluation on byte-heavy inputs.

use std::collections::{BTreeSet, HashMap};
use std::sync::{Arc, Mutex};

use proptest::prelude::*;

use omos::analysis::{analyze_blueprint, Diagnostic, LintContext, LintResolved, Severity};
use omos::blueprint::eval::{CachedEval, EvalContext, ResolvedNode};
use omos::blueprint::{eval_blueprint, Blueprint, EvalError};
use omos::isa::assemble;
use omos::module::Module;
use omos::obj::view::materialize_count;
use omos::obj::{ContentHash, ObjError, ObjectFile, Section, SectionKind, Symbol};

/// One world serving both the evaluator and the analyzer. The eval
/// side is `&self` (shared with parallel executor workers), so its
/// mutable state sits behind mutexes.
#[derive(Default)]
struct World {
    objects: HashMap<String, Arc<ObjectFile>>,
    cache: Mutex<HashMap<ContentHash, CachedEval>>,
    dynamic: Mutex<Vec<ContentHash>>,
}

impl World {
    fn add_asm(&mut self, path: &str, src: &str) {
        self.objects.insert(
            path.to_string(),
            Arc::new(assemble(path, src).expect("assembles")),
        );
    }
}

impl EvalContext for World {
    fn resolve(&self, path: &str) -> Result<ResolvedNode, EvalError> {
        match self.objects.get(path) {
            Some(o) => Ok(ResolvedNode::Object(Arc::clone(o))),
            None => Err(EvalError::Resolve(path.to_string())),
        }
    }

    fn cache_get(&self, key: ContentHash) -> Option<CachedEval> {
        self.cache.lock().unwrap().get(&key).cloned()
    }

    fn cache_put(&self, key: ContentHash, module: &Module, deps: &Arc<BTreeSet<String>>) {
        self.cache.lock().unwrap().insert(
            key,
            CachedEval {
                module: module.clone(),
                deps: Arc::clone(deps),
            },
        );
    }

    fn register_dynamic_impl(&self, key: ContentHash, _module: &Module) -> Result<u32, EvalError> {
        let mut dynamic = self.dynamic.lock().unwrap();
        if let Some(i) = dynamic.iter().position(|k| *k == key) {
            return Ok(i as u32);
        }
        dynamic.push(key);
        Ok(dynamic.len() as u32 - 1)
    }
}

impl LintContext for World {
    fn resolve(&mut self, path: &str) -> LintResolved {
        match self.objects.get(path) {
            Some(o) => LintResolved::Object(Arc::clone(o)),
            None => LintResolved::Missing,
        }
    }
}

/// `/o/a` defines `_a` (and calls `_b`), `/o/b` defines `_b`, `/o/dup`
/// *also* defines `_a` — merging it with `/o/a` is the duplicate-def
/// case. `/missing` resolves nowhere.
fn world() -> World {
    let mut w = World::default();
    w.add_asm("/o/a", ".text\n.global _a\n_a: call _b\n ret\n");
    w.add_asm("/o/b", ".text\n.global _b\n_b: ret\n");
    w.add_asm("/o/dup", ".text\n.global _a\n_a: li r1, 1\n ret\n");
    w
}

const LEAVES: [&str; 4] = ["/o/a", "/o/b", "/o/dup", "/missing"];
const PATTERNS: [&str; 3] = ["^_a$", "^_b$", "^_zz$"];

/// A random blueprint over the fixed world: a merge of 1–4 leaves,
/// optionally wrapped in one pattern operation.
fn arb_blueprint() -> impl Strategy<Value = Blueprint> {
    (
        proptest::collection::vec(0usize..LEAVES.len(), 1..5),
        0usize..4, // 0: bare, 1: rename, 2: hide, 3: restrict
        0usize..PATTERNS.len(),
    )
        .prop_map(|(leaves, wrap, pat)| {
            let inner = format!(
                "(merge {})",
                leaves
                    .iter()
                    .map(|&i| LEAVES[i])
                    .collect::<Vec<_>>()
                    .join(" ")
            );
            let src = match wrap {
                1 => format!("(rename \"{}\" \"_r\" {inner})", PATTERNS[pat]),
                2 => format!("(hide \"{}\" {inner})", PATTERNS[pat]),
                3 => format!("(restrict \"{}\" {inner})", PATTERNS[pat]),
                _ => inner,
            };
            Blueprint::parse(&src).expect("generated blueprint parses")
        })
}

fn error_codes(diags: &[Diagnostic]) -> Vec<&'static str> {
    let mut codes: Vec<&'static str> = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .map(|d| d.code)
        .collect();
    codes.sort_unstable();
    codes.dedup();
    codes
}

proptest! {
    /// A blueprint the analyzer calls error-free must evaluate.
    /// (Warnings — dead patterns and the like — never block, and
    /// unresolved *references* are a link-time concern, not an
    /// evaluation failure, so OM002 is excluded alongside warnings.)
    #[test]
    fn analyzer_clean_implies_eval_succeeds(bp in arb_blueprint()) {
        let mut w = world();
        let diags = analyze_blueprint(&bp, &mut w);
        let blocking: Vec<&Diagnostic> = diags
            .iter()
            .filter(|d| d.severity == Severity::Error && d.code != "OM002")
            .collect();
        if blocking.is_empty() {
            let out = eval_blueprint(&bp, &w);
            prop_assert!(
                out.is_ok(),
                "analyzer found no errors but eval failed: {:?}",
                out.err()
            );
        }
    }

    /// When the analyzer's only error class is duplicate-definition,
    /// evaluation fails with exactly that object error.
    #[test]
    fn duplicate_def_verdict_matches_eval(bp in arb_blueprint()) {
        let mut w = world();
        let diags = analyze_blueprint(&bp, &mut w);
        if error_codes(&diags) == ["OM003"] {
            let out = eval_blueprint(&bp, &w);
            prop_assert!(
                matches!(
                    out,
                    Err(EvalError::Obj(ObjError::DuplicateSymbol(_)))
                ),
                "analyzer says duplicate definition, eval says {out:?}"
            );
        }
    }

    /// When the analyzer's only error class is an unresolved namespace
    /// path, evaluation fails with a resolve error.
    #[test]
    fn unresolved_path_verdict_matches_eval(bp in arb_blueprint()) {
        let mut w = world();
        let diags = analyze_blueprint(&bp, &mut w);
        if error_codes(&diags) == ["OM001"] {
            let out = eval_blueprint(&bp, &w);
            prop_assert!(
                matches!(out, Err(EvalError::Resolve(_))),
                "analyzer says unresolved path, eval says {out:?}"
            );
        }
    }
}

/// A random dynamic-load blueprint: a merge of 1–4 leaves where any
/// subset is wrapped in `(specialize "lib-dynamic" ...)`. Returns the
/// blueprint plus the indices of the dynamically specialized leaves.
fn arb_dynamic_blueprint() -> impl Strategy<Value = (Blueprint, Vec<usize>)> {
    proptest::collection::vec((0usize..LEAVES.len(), any::<bool>()), 1..5).prop_map(|items| {
        let dynamic: Vec<usize> = items
            .iter()
            .filter(|(_, dynamic)| *dynamic)
            .map(|(i, _)| *i)
            .collect();
        let src = format!(
            "(merge {})",
            items
                .iter()
                .map(|(i, dynamic)| if *dynamic {
                    format!("(specialize \"lib-dynamic\" {})", LEAVES[*i])
                } else {
                    LEAVES[*i].to_string()
                })
                .collect::<Vec<_>>()
                .join(" ")
        );
        (
            Blueprint::parse(&src).expect("generated blueprint parses"),
            dynamic,
        )
    })
}

/// The dynamic-load path: the analyzer's verdict on a blueprint with
/// `lib-dynamic` specializations must match what evaluation does,
/// *including* the registration outcome — a clean blueprint evaluates
/// and registers exactly one dynamic implementation per distinct
/// specialized operand (re-specializing the same leaf coalesces), and
/// the analyzer's error classes still correspond to the evaluator's
/// failures.
fn check_dynamic_verdicts(
    bp: &Blueprint,
    dynamic: &[usize],
) -> Result<(), proptest::test_runner::TestCaseError> {
    let mut w = world();
    let diags = analyze_blueprint(bp, &mut w);
    let blocking: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.severity == Severity::Error && d.code != "OM002")
        .collect();
    let out = eval_blueprint(bp, &w);
    if blocking.is_empty() {
        prop_assert!(
            out.is_ok(),
            "analyzer found no errors but dynamic eval failed: {:?}",
            out.err()
        );
        let expected: BTreeSet<&str> = dynamic.iter().map(|&i| LEAVES[i]).collect();
        prop_assert_eq!(
            w.dynamic.lock().unwrap().len(),
            expected.len(),
            "one registration per distinct dynamic operand"
        );
        return Ok(());
    }
    match error_codes(&diags).as_slice() {
        ["OM001"] => prop_assert!(
            matches!(out, Err(EvalError::Resolve(_))),
            "analyzer says unresolved path, eval says {out:?}"
        ),
        ["OM003"] => prop_assert!(
            matches!(out, Err(EvalError::Obj(ObjError::DuplicateSymbol(_)))),
            "analyzer says duplicate definition, eval says {out:?}"
        ),
        _ => {}
    }
    Ok(())
}

proptest! {
    /// See [`check_dynamic_verdicts`].
    #[test]
    fn dynamic_load_verdicts_match_registration_outcomes(case in arb_dynamic_blueprint()) {
        let (bp, dynamic) = case;
        check_dynamic_verdicts(&bp, &dynamic)?;
    }
}

/// The strategies above must actually exercise all three implications.
#[test]
fn differential_corpus_covers_every_class() {
    let mut w = world();
    let clean = Blueprint::parse("(merge /o/a /o/b)").unwrap();
    assert!(error_codes(&analyze_blueprint(&clean, &mut w)).is_empty());
    let dup = Blueprint::parse("(merge /o/a /o/dup /o/b)").unwrap();
    assert_eq!(error_codes(&analyze_blueprint(&dup, &mut w)), ["OM003"]);
    let missing = Blueprint::parse("(merge /o/a /missing)").unwrap();
    assert_eq!(error_codes(&analyze_blueprint(&missing, &mut w)), ["OM001"]);
}

/// A byte-heavy world: the same shape as [`world`] but with megabytes of
/// section data, where materializing is expensive and symbol analysis is
/// not.
fn heavy_world() -> (World, Blueprint) {
    let mut w = World::default();
    for (path, sym) in [("/big/a", "_a"), ("/big/b", "_b"), ("/big/c", "_c")] {
        let mut o = ObjectFile::new(path);
        let t = o.add_section(Section::with_bytes(
            ".text",
            SectionKind::Text,
            vec![0u8; 4 << 20],
            8,
        ));
        o.define(Symbol::defined(sym, t, 0)).unwrap();
        w.objects.insert(path.to_string(), Arc::new(o));
    }
    let bp = Blueprint::parse(r#"(hide "^_c$" (merge /big/a /big/b /big/c))"#).unwrap();
    (w, bp)
}

#[test]
fn lint_never_materializes_and_eval_does() {
    let (mut w, bp) = heavy_world();
    let before = materialize_count();
    let diags = analyze_blueprint(&bp, &mut w);
    assert!(diags.is_empty(), "unexpected: {diags:?}");
    assert_eq!(
        materialize_count(),
        before,
        "analysis must not materialize any view"
    );
    eval_blueprint(&bp, &w).unwrap();
    assert!(
        materialize_count() > before,
        "evaluation of the same blueprint does materialize"
    );
}

#[test]
fn lint_is_cheaper_than_eval() {
    let (mut w, bp) = heavy_world();
    let t0 = std::time::Instant::now();
    let diags = analyze_blueprint(&bp, &mut w);
    let lint_time = t0.elapsed();
    assert!(diags.is_empty());
    let t1 = std::time::Instant::now();
    eval_blueprint(&bp, &w).unwrap();
    let eval_time = t1.elapsed();
    assert!(
        lint_time < eval_time,
        "lint ({lint_time:?}) should be cheaper than eval ({eval_time:?}) on 12 MiB of sections"
    );
}
