//! Server-level monitoring (§4.1/§6) and the `#!` interpreter path (§5).

use omos::core::{exec_file, run_under_omos, Omos, OmosBinder, OmosError};
use omos::isa::{assemble, StopReason};
use omos::os::ipc::{IpcStats, Transport};
use omos::os::process::run_process;
use omos::os::{CostModel, InMemFs, SimClock};

fn world() -> Omos {
    let s = Omos::new(CostModel::hpux(), Transport::MachIpc);
    s.namespace.bind_object(
        "/obj/app.o",
        assemble(
            "app.o",
            r#"
            .text
            .global _start, _alpha, _beta
_start:     call _beta
            call _alpha
            call _beta
            li r1, 0
            sys 0
_alpha:     li r9, 1
            ret
_beta:      li r9, 2
            ret
            "#,
        )
        .unwrap(),
    );
    s.namespace
        .bind_blueprint("/bin/app", "(merge /obj/app.o)")
        .unwrap();
    s
}

#[test]
fn server_instantiates_monitored_variant_and_decodes_events() {
    let s = world();
    let (reply, id_names) = s
        .instantiate_monitored("/bin/app", "^_(alpha|beta)$")
        .unwrap();
    assert_eq!(id_names, vec!["_alpha", "_beta"]);

    let cost = CostModel::hpux();
    let mut clock = SimClock::new();
    let mut fs = InMemFs::new();
    let mut proc =
        omos::os::process::Process::spawn(&reply.program.frames, &mut clock, &cost).unwrap();
    let mut binder = OmosBinder::new(&s);
    let out = run_process(&mut proc, &mut clock, &cost, &mut fs, &mut binder, 100_000);
    assert_eq!(out.stop, StopReason::Exited(0));
    let called: Vec<&str> = out
        .monitor_events
        .iter()
        .map(|&i| id_names[i as usize].as_str())
        .collect();
    assert_eq!(called, vec!["_beta", "_alpha", "_beta"]);
    // The derived order is what a reorder pass would use.
    let order = omos::core::monitor::derive_order(&out.monitor_events, &id_names);
    assert_eq!(order, vec!["_beta", "_alpha"]);
}

#[test]
fn monitored_variant_does_not_pollute_the_plain_cache() {
    let s = world();
    let plain1 = s.instantiate("/bin/app").unwrap();
    let (_mon, _) = s.instantiate_monitored("/bin/app", "^_alpha$").unwrap();
    let plain2 = s.instantiate("/bin/app").unwrap();
    assert!(plain2.cache_hit);
    assert_eq!(
        plain1.program.image.content_hash(),
        plain2.program.image.content_hash()
    );
    // The monitored image is a different artifact.
    let (mon2, _) = s.instantiate_monitored("/bin/app", "^_alpha$").unwrap();
    assert_ne!(
        mon2.program.image.content_hash(),
        plain1.program.image.content_hash()
    );
}

#[test]
fn shebang_scripts_export_namespace_entries_into_unix() {
    let s = world();
    let cost = CostModel::hpux();
    let mut fs = InMemFs::new();
    // "/usr/bin/app" is a Unix file whose interpreter line names the
    // OMOS meta-object.
    fs.put("/usr/bin/app", b"#! /bin/omos /bin/app\n".to_vec());
    let mut clock = SimClock::new();
    let mut ipc = IpcStats::default();
    let mut proc = exec_file(&s, &mut fs, "/usr/bin/app", &mut clock, &cost, &mut ipc).unwrap();
    let mut binder = OmosBinder::new(&s);
    let out = run_process(&mut proc, &mut clock, &cost, &mut fs, &mut binder, 100_000);
    assert_eq!(out.stop, StopReason::Exited(0));
}

#[test]
fn shebang_rejects_non_omos_scripts() {
    let s = world();
    let cost = CostModel::hpux();
    let mut fs = InMemFs::new();
    fs.put("/usr/bin/sh-script", b"#! /bin/sh\necho hi\n".to_vec());
    fs.put("/usr/bin/binary", vec![0x7f, b'E', b'L', b'F']);
    fs.put("/usr/bin/empty-interp", b"#! /bin/omos\n".to_vec());
    let mut clock = SimClock::new();
    let mut ipc = IpcStats::default();
    for f in [
        "/usr/bin/sh-script",
        "/usr/bin/binary",
        "/usr/bin/empty-interp",
        "/gone",
    ] {
        let err = exec_file(&s, &mut fs, f, &mut clock, &cost, &mut ipc).unwrap_err();
        assert!(
            matches!(err, OmosError::Client(_)),
            "{f} should be rejected"
        );
    }
}

#[test]
fn monitored_program_still_computes_the_same_answer() {
    // Interposition must be transparent: instrumenting cannot change
    // results (here, the exit code path through r1).
    let s = world();
    let cost = CostModel::hpux();
    let mut fs = InMemFs::new();
    let mut clock = SimClock::new();
    let plain = run_under_omos(&s, "/bin/app", true, &mut clock, &cost, &mut fs, 100_000).unwrap();
    let (reply, _) = s
        .instantiate_monitored("/bin/app", "^_(alpha|beta)$")
        .unwrap();
    let mut proc =
        omos::os::process::Process::spawn(&reply.program.frames, &mut clock, &cost).unwrap();
    let mut binder = OmosBinder::new(&s);
    let mon = run_process(&mut proc, &mut clock, &cost, &mut fs, &mut binder, 100_000);
    assert_eq!(plain.stop, mon.stop);
}
