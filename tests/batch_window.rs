//! Batch-window properties of the pipelined transport.
//!
//! For any max-inflight window W, a client session must deliver
//! replies in request order, conserve its batch counters
//! (`requests == Σ batch sizes`), and — at W=1 — bill *identically* to
//! the per-request path: batching is an optimization, never a change
//! of meaning.

use proptest::prelude::*;

use omos::os::ipc::{charge_roundtrip, ClientSession, IpcStats, ReplyShape, Transport};
use omos::os::{CostModel, SimClock};

const WINDOWS: [usize; 4] = [1, 2, 8, 64];

/// One synthetic request: payload sizes and the server work its reply
/// reports.
#[derive(Debug, Clone, Copy)]
struct Req {
    request_bytes: u64,
    reply_bytes: u64,
    server_ns: u64,
}

fn req_strategy() -> impl Strategy<Value = Req> {
    (1u64..2048, 1u64..65536, 0u64..2_000_000).prop_map(
        |(request_bytes, reply_bytes, server_ns)| Req {
            request_bytes,
            reply_bytes,
            server_ns,
        },
    )
}

/// Replays `reqs` through a pipelined session with window `w`.
fn run_window(reqs: &[Req], w: usize) -> (SimClock, IpcStats, Vec<u64>) {
    let cost = CostModel::hpux();
    let mut clock = SimClock::new();
    let mut session = ClientSession::with_window(Transport::Pipelined, w);
    for (tag, r) in reqs.iter().enumerate() {
        session.request(
            &mut clock,
            &cost,
            tag as u64,
            r.request_bytes,
            ReplyShape::opaque(r.reply_bytes),
            r.server_ns,
        );
    }
    session.drain(&mut clock, &cost);
    let delivered = session.take_delivered();
    (clock, session.stats, delivered)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// FIFO delivery, counter conservation, and the W=1 identity, for
    /// every window and arbitrary request mixes.
    #[test]
    fn windows_preserve_order_conserve_counters_and_w1_is_identity(
        reqs in proptest::collection::vec(req_strategy(), 1..96),
    ) {
        // The per-request reference bill.
        let cost = CostModel::hpux();
        let mut per_request = SimClock::new();
        let mut per_stats = IpcStats::default();
        for r in &reqs {
            charge_roundtrip(
                &mut per_request,
                &cost,
                Transport::Pipelined,
                r.request_bytes,
                r.reply_bytes,
                r.server_ns,
                &mut per_stats,
            );
        }

        for w in WINDOWS {
            let (clock, stats, delivered) = run_window(&reqs, w);
            // Replies arrive in request order per client.
            prop_assert_eq!(
                &delivered,
                &(0..reqs.len() as u64).collect::<Vec<_>>(),
                "window {} reordered replies", w
            );
            // requests == Σ batch sizes, and bytes are never elided.
            prop_assert_eq!(stats.batched_requests, reqs.len() as u64);
            prop_assert_eq!(stats.bytes, per_stats.bytes);
            // One frame each way per flush.
            prop_assert_eq!(stats.messages, 2 * stats.batches);
            let full_batches = reqs.len() / w;
            let tail = u64::from(reqs.len() % w != 0);
            prop_assert_eq!(stats.batches, full_batches as u64 + tail);
            // Batching never makes the history dearer.
            prop_assert!(clock.elapsed_ns <= per_request.elapsed_ns);
            if w == 1 {
                // A window of one IS the per-request path, to the ns.
                prop_assert_eq!(clock, per_request);
                prop_assert_eq!(stats.messages, per_stats.messages);
            }
        }
    }

    /// Wider windows never bill more than narrower ones on the same
    /// history (amortization is monotone in the window).
    #[test]
    fn wider_windows_are_monotonically_cheaper(
        reqs in proptest::collection::vec(req_strategy(), 1..64),
    ) {
        let mut prev = u64::MAX;
        for w in WINDOWS {
            let (clock, _, _) = run_window(&reqs, w);
            prop_assert!(
                clock.elapsed_ns <= prev,
                "window {} billed {} > the narrower window's {}",
                w, clock.elapsed_ns, prev
            );
            prev = clock.elapsed_ns;
        }
    }
}
