//! Golden tests for the paper's three figures: the blueprint texts parse
//! to the expected graphs, evaluate, and the resulting programs behave
//! as the paper describes.

use omos::blueprint::{Blueprint, MNode};
use omos::constraint::RegionClass;
use omos::core::{run_under_omos, Omos};
use omos::isa::{assemble, StopReason};
use omos::os::ipc::Transport;
use omos::os::{CostModel, InMemFs, SimClock};

/// Figure 1, verbatim (with `/libc/...` fragments bound in the test
/// namespace).
const FIGURE_1: &str = r#"
(constraint-list "T" 0x100000 "D" 0x40200000) ; default address constraint
(merge
  /libc/gen /libc/stdio /libc/string /libc/stdlib
  /libc/hppa /libc/net /libc/quad /libc/rpc)
"#;

/// Figure 2, verbatim.
const FIGURE_2: &str = r#"
;;
;; malloc() -> malloc'()
;;
(hide "_REAL_malloc"
  (merge
    ;; Get rid of the old definition
    (restrict "^_malloc$"
      ;; stash a copy of _malloc() for later use
      (copy_as "^_malloc$" "_REAL_malloc"
        (merge /bin/ls.o /lib/libc.o)
      )
    )
    ;; Merge in a new definition
    /lib/test_malloc.o
  )
)
"#;

/// Figure 3, verbatim.
const FIGURE_3: &str = r#"
(merge
  ;; resolve an undefined data reference and
  ;; reroute undefined routines to "abort()"
  (source "c" "int undef_var = 0;\n")
  (rename "^_undefined_routine$" "_abort"
    /lib/lib-with-problems))
"#;

#[test]
fn figure1_parses_to_constraint_list_plus_merge_of_eight() {
    let bp = Blueprint::parse(FIGURE_1).unwrap();
    assert_eq!(
        bp.constraints,
        vec![
            (RegionClass::Text, 0x10_0000),
            (RegionClass::Data, 0x4020_0000)
        ]
    );
    match &bp.root {
        MNode::Merge(items) => {
            assert_eq!(items.len(), 8);
            assert_eq!(items[0], MNode::Leaf("/libc/gen".into()));
            assert_eq!(items[7], MNode::Leaf("/libc/rpc".into()));
        }
        other => panic!("figure 1 root should be merge, got {other:?}"),
    }
}

#[test]
fn figure1_acts_as_a_self_contained_library() {
    let s = Omos::new(CostModel::hpux(), Transport::SysVMsg);
    for m in [
        "gen", "stdio", "string", "stdlib", "hppa", "net", "quad", "rpc",
    ] {
        s.namespace.bind_object(
            &format!("/libc/{m}"),
            assemble(
                m,
                &format!(".text\n.global _{m}_fn\n_{m}_fn: li r1, 1\n ret\n"),
            )
            .unwrap(),
        );
    }
    s.namespace.bind_blueprint("/lib/libc", FIGURE_1).unwrap();
    s.namespace.bind_object(
        "/obj/use.o",
        assemble(
            "use.o",
            ".text\n.global _start\n_start: call _stdio_fn\n sys 0\n",
        )
        .unwrap(),
    );
    s.namespace
        .bind_blueprint("/bin/use", "(merge /obj/use.o /lib/libc)")
        .unwrap();
    let reply = s.instantiate("/bin/use").unwrap();
    assert_eq!(
        reply.libraries.len(),
        1,
        "figure 1 libc is a placement request"
    );
    let lib = &reply.libraries[0];
    let text_base = lib
        .image
        .segments
        .iter()
        .map(|seg| seg.vaddr)
        .min()
        .unwrap();
    assert_eq!(
        text_base, 0x10_0000,
        "the constraint-list address was honored"
    );
}

#[test]
fn figure2_traces_malloc_transparently() {
    let s = Omos::new(CostModel::hpux(), Transport::SysVMsg);
    s.namespace.bind_object(
        "/bin/ls.o",
        assemble(
            "ls.o",
            r#"
            .text
            .global _start
_start:     li r1, 48
            call _malloc
            mov r10, r1          ; the pointer from the REAL malloc
            li r2, _malloc_count
            ld r3, [r2]
            ; exit code: count * 1000 + (ptr != 0)
            li r4, 1000
            mul r1, r3, r4
            beq r10, r0, _z
            addi r1, r1, 1
_z:         sys 0
            "#,
        )
        .unwrap(),
    );
    s.namespace.bind_object(
        "/lib/libc.o",
        assemble("libc.o", ".text\n.global _malloc\n_malloc: sys 7\n ret\n").unwrap(),
    );
    s.namespace.bind_object(
        "/lib/test_malloc.o",
        assemble(
            "tm.o",
            r#"
            .text
            .global _malloc
            .extern _REAL_malloc
_malloc:    li r7, _malloc_count
            ld r6, [r7]
            addi r6, r6, 1
            st r6, [r7]
            mov r8, r15
            call _REAL_malloc
            mov r15, r8
            ret
            .data
            .global _malloc_count
_malloc_count: .word 0
            "#,
        )
        .unwrap(),
    );
    s.namespace
        .bind_blueprint("/bin/ls-traced", FIGURE_2)
        .unwrap();
    let cost = CostModel::hpux();
    let mut fs = InMemFs::new();
    let mut clock = SimClock::new();
    let out = run_under_omos(
        &s,
        "/bin/ls-traced",
        true,
        &mut clock,
        &cost,
        &mut fs,
        100_000,
    )
    .unwrap();
    // One counted call AND a real (non-null) allocation: 1 * 1000 + 1.
    assert_eq!(out.stop, StopReason::Exited(1001));
    // References to the native routine in the new routine are preserved,
    // but the name is hidden from the result.
    let reply = s.instantiate("/bin/ls-traced").unwrap();
    assert!(reply.program.image.find("_REAL_malloc").is_none());
}

#[test]
fn figure3_fills_defaults_and_reroutes() {
    let s = Omos::new(CostModel::hpux(), Transport::SysVMsg);
    s.namespace.bind_object(
        "/lib/lib-with-problems",
        assemble(
            "lwp.o",
            r#"
            .text
            .global _start, _abort
_start:     li r2, _undef_var
            ld r1, [r2]
            bne r1, r0, _trouble
            sys 0
_trouble:   call _undefined_routine
            sys 0
_abort:     halt
            "#,
        )
        .unwrap(),
    );
    s.namespace.bind_blueprint("/bin/fixed", FIGURE_3).unwrap();
    let cost = CostModel::hpux();
    let mut fs = InMemFs::new();
    let mut clock = SimClock::new();
    let out = run_under_omos(&s, "/bin/fixed", true, &mut clock, &cost, &mut fs, 100_000).unwrap();
    // `undef_var` defaulted to 0 by the source operator, so the program
    // exits 0 without touching the rerouted routine.
    assert_eq!(out.stop, StopReason::Exited(0));
    // And the reroute really points at _abort: no `_undefined_routine`
    // remains anywhere in the program's namespace.
    let reply = s.instantiate("/bin/fixed").unwrap();
    assert!(reply.program.image.find("_undefined_routine").is_none());
    assert!(reply.program.image.find("_undef_var").is_some());
}

// --- Static analysis over the figures --------------------------------------
//
// The paper's own blueprints must lint clean (zero diagnostics), and a
// seeded defect in each must be caught by exactly the right detector,
// pointing at the right source bytes.

fn figure1_world() -> Omos {
    let s = Omos::new(CostModel::hpux(), Transport::SysVMsg);
    for m in [
        "gen", "stdio", "string", "stdlib", "hppa", "net", "quad", "rpc",
    ] {
        s.namespace.bind_object(
            &format!("/libc/{m}"),
            assemble(
                m,
                &format!(".text\n.global _{m}_fn\n_{m}_fn: li r1, 1\n ret\n"),
            )
            .unwrap(),
        );
    }
    s.namespace.bind_blueprint("/lib/libc", FIGURE_1).unwrap();
    s.namespace.bind_object(
        "/obj/use.o",
        assemble(
            "use.o",
            ".text\n.global _start\n_start: call _stdio_fn\n sys 0\n",
        )
        .unwrap(),
    );
    s.namespace
        .bind_blueprint("/bin/use", "(merge /obj/use.o /lib/libc)")
        .unwrap();
    s
}

fn figure2_world() -> Omos {
    let s = Omos::new(CostModel::hpux(), Transport::SysVMsg);
    s.namespace.bind_object(
        "/bin/ls.o",
        assemble(
            "ls.o",
            ".text\n.global _start\n_start: li r1, 48\n call _malloc\n sys 0\n",
        )
        .unwrap(),
    );
    s.namespace.bind_object(
        "/lib/libc.o",
        assemble("libc.o", ".text\n.global _malloc\n_malloc: sys 7\n ret\n").unwrap(),
    );
    s.namespace.bind_object(
        "/lib/test_malloc.o",
        assemble(
            "tm.o",
            r#"
            .text
            .global _malloc
            .extern _REAL_malloc
_malloc:    call _REAL_malloc
            ret
            "#,
        )
        .unwrap(),
    );
    s.namespace
        .bind_blueprint("/bin/ls-traced", FIGURE_2)
        .unwrap();
    s
}

fn figure3_world() -> Omos {
    let s = Omos::new(CostModel::hpux(), Transport::SysVMsg);
    s.namespace.bind_object(
        "/lib/lib-with-problems",
        assemble(
            "lwp.o",
            r#"
            .text
            .global _start, _abort
_start:     li r2, _undef_var
            ld r1, [r2]
            sys 0
_abort:     halt
            .extern _undefined_routine
            "#,
        )
        .unwrap(),
    );
    s.namespace.bind_blueprint("/bin/fixed", FIGURE_3).unwrap();
    s
}

#[test]
fn figure_blueprints_lint_clean() {
    // Zero diagnostics — not merely zero errors — on the paper's own
    // blueprints and every auxiliary blueprint these worlds bind.
    let s = figure1_world();
    for path in ["/lib/libc", "/bin/use"] {
        let diags = s.lint(path).unwrap();
        assert!(diags.is_empty(), "{path}: {diags:?}");
    }
    let s = figure2_world();
    let diags = s.lint("/bin/ls-traced").unwrap();
    assert!(diags.is_empty(), "{diags:?}");
    let s = figure3_world();
    let diags = s.lint("/bin/fixed").unwrap();
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn seeded_unresolved_operand_is_caught_with_its_span() {
    let s = figure1_world();
    let defective = FIGURE_1.replace("/libc/rpc)", "/libc/rpc /libc/bogus)");
    s.namespace
        .bind_blueprint("/lib/libc-bad", &defective)
        .unwrap();
    let diags = s.lint("/lib/libc-bad").unwrap();
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].code, "OM001");
    let span = diags[0].span.expect("span");
    let at = defective.find("/libc/bogus").unwrap();
    assert_eq!((span.start, span.end), (at, at + "/libc/bogus".len()));
}

#[test]
fn seeded_duplicate_definition_is_caught() {
    // Figure 2 without the `restrict` step: the old _malloc definition
    // survives and collides with the replacement.
    let s = figure2_world();
    let defective = r#"
(hide "_REAL_malloc"
  (merge
    (copy_as "^_malloc$" "_REAL_malloc"
      (merge /bin/ls.o /lib/libc.o))
    /lib/test_malloc.o))
"#;
    s.namespace
        .bind_blueprint("/bin/ls-traced-bad", defective)
        .unwrap();
    let diags = s.lint("/bin/ls-traced-bad").unwrap();
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].code, "OM003");
    assert!(diags[0].message.contains("_malloc"), "{diags:?}");
    let span = diags[0].span.expect("span");
    let at = defective.find("/lib/test_malloc.o").unwrap();
    assert_eq!(
        (span.start, span.end),
        (at, at + "/lib/test_malloc.o".len())
    );
}

#[test]
fn seeded_dead_pattern_is_caught() {
    // Figure 2 with a typo in the final hide: nothing matches, the
    // stashed copy leaks into the exported namespace.
    let s = figure2_world();
    let defective = FIGURE_2.replace("(hide \"_REAL_malloc\"", "(hide \"_REALLY_malloc\"");
    s.namespace
        .bind_blueprint("/bin/ls-traced-bad", &defective)
        .unwrap();
    let diags = s.lint("/bin/ls-traced-bad").unwrap();
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].code, "OM005");
    let span = diags[0].span.expect("span");
    let at = defective.find("(hide").unwrap();
    assert_eq!(span.start, at, "span starts at the dead hide form");
}

#[test]
fn seeded_unresolved_reference_is_caught() {
    // Figure 3 rerouting to a routine that doesn't exist.
    let s = figure3_world();
    let defective = FIGURE_3.replace("\"_abort\"", "\"_abort_misspelled\"");
    s.namespace
        .bind_blueprint("/bin/fixed-bad", &defective)
        .unwrap();
    let diags = s.lint("/bin/fixed-bad").unwrap();
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].code, "OM002");
    assert!(diags[0].message.contains("_abort_misspelled"), "{diags:?}");
    assert!(diags[0].span.is_some());
}

#[test]
fn seeded_constraint_overlap_is_caught() {
    // A client pinning itself on top of figure 1's library text window.
    let s = figure1_world();
    let defective = "(constraint-list \"T\" 0x100000)\n(merge /obj/use.o /lib/libc)";
    s.namespace
        .bind_blueprint("/bin/use-overlap", defective)
        .unwrap();
    let diags = s.lint("/bin/use-overlap").unwrap();
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].code, "OM008");
    assert!(diags[0].message.contains("/lib/libc"), "{diags:?}");
}

// --- Golden resolution manifests -------------------------------------------
//
// The figure fixtures are fully deterministic worlds, so their
// resolution manifests are stable down to the byte. The rendered
// manifests are kept as golden files and compared exactly: any drift in
// placement, symbol resolution, or image identity shows up as a diff
// here before it shows up anywhere else.

fn golden_check(name: &str, got: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("OMOS_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden snapshot {path:?} ({e}); run with OMOS_UPDATE_GOLDEN=1 to create it")
    });
    assert_eq!(
        got, want,
        "manifest for {name} drifted from its golden snapshot; if the \
         change is intentional, regenerate with OMOS_UPDATE_GOLDEN=1"
    );
}

#[test]
fn figure_manifests_match_golden_snapshots() {
    for (name, server, path) in [
        ("figure1-use.manifest", figure1_world(), "/bin/use"),
        (
            "figure2-ls-traced.manifest",
            figure2_world(),
            "/bin/ls-traced",
        ),
        ("figure3-fixed.manifest", figure3_world(), "/bin/fixed"),
    ] {
        let m = server.explain(path).unwrap();
        // The static derivation is also what the real build commits to.
        let reply = server.instantiate(path).unwrap();
        assert_eq!(m.hash(), reply.manifest, "{path}");
        golden_check(name, &m.render());
    }
}

#[test]
fn figure_blueprints_hash_stably() {
    // The server's caches key on these hashes; they must be stable
    // across parses.
    for src in [FIGURE_1, FIGURE_2, FIGURE_3] {
        let a = Blueprint::parse(src).unwrap().hash();
        let b = Blueprint::parse(src).unwrap().hash();
        assert_eq!(a, b);
    }
}
