//! Algebraic laws of the Jigsaw module operators, property-tested over
//! generated modules. Bracha & Lindstrom's operators have equational
//! structure; these pin the parts our implementation relies on.

use proptest::prelude::*;

use omos::isa::assemble;
use omos::module::Module;
use omos::obj::view::RenameTarget;

/// A generated module: distinct exported functions, some calling a free
/// reference.
fn arb_module(tag: &'static str) -> impl Strategy<Value = Module> {
    (1usize..6, proptest::collection::vec(any::<bool>(), 1..6)).prop_map(move |(n, call_flags)| {
        let mut src = String::from(".text\n");
        for i in 0..n {
            let calls = call_flags.get(i).copied().unwrap_or(false);
            src.push_str(&format!(".global _{tag}{i}\n_{tag}{i}:\n"));
            if calls {
                src.push_str(&format!("    call _free_ref_{tag}\n"));
            }
            src.push_str(&format!("    li r1, {i}\n    ret\n"));
        }
        Module::from_object(assemble(&format!("{tag}.o"), &src).expect("assembles"))
    })
}

fn exports_sorted(m: &Module) -> Vec<String> {
    let mut e = m.exports().expect("exports");
    e.sort();
    e
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// merge is commutative up to the exported interface.
    #[test]
    fn merge_commutes_on_exports(a in arb_module("a"), b in arb_module("b")) {
        let ab = a.merge_with(&b).expect("disjoint");
        let ba = b.merge_with(&a).expect("disjoint");
        prop_assert_eq!(exports_sorted(&ab), exports_sorted(&ba));
    }

    /// merge is associative up to the exported interface.
    #[test]
    fn merge_associates_on_exports(
        a in arb_module("a"),
        b in arb_module("b"),
        c in arb_module("c"),
    ) {
        let left = a.merge_with(&b).expect("ok").merge_with(&c).expect("ok");
        let right = a.merge_with(&b.merge_with(&c).expect("ok")).expect("ok");
        prop_assert_eq!(exports_sorted(&left), exports_sorted(&right));
    }

    /// hide and show with the same pattern partition the exports.
    #[test]
    fn hide_show_partition(m in arb_module("a"), pick in any::<u8>()) {
        let all = exports_sorted(&m);
        let target = &all[pick as usize % all.len()];
        let pattern = format!("^{}$", target.replace('$', "\\$"));
        let hidden = exports_sorted(&m.hide(&pattern).expect("ok"));
        let shown = exports_sorted(&m.show(&pattern).expect("ok"));
        // hidden ∪ shown = all, hidden ∩ shown = ∅.
        let mut union: Vec<String> = hidden.iter().chain(shown.iter()).cloned().collect();
        union.sort();
        prop_assert_eq!(union, all);
        prop_assert!(hidden.iter().all(|h| !shown.contains(h)));
    }

    /// restrict is idempotent.
    #[test]
    fn restrict_is_idempotent(m in arb_module("a")) {
        let once = m.restrict("^_a[0-9]+$").expect("ok");
        let twice = once.restrict("^_a[0-9]+$").expect("ok");
        prop_assert_eq!(
            once.materialize().expect("ok").content_hash(),
            twice.materialize().expect("ok").content_hash()
        );
    }

    /// override with self is a no-op on the interface.
    #[test]
    fn override_after_restrict_rebinds(m in arb_module("a")) {
        // restrict everything, then merge the original back: the result
        // exports exactly what the original did.
        let restricted = m.restrict("^_a[0-9]+$").expect("ok");
        let rebound = restricted
            .rename("^_a", "_b", RenameTarget::Refs)
            .expect("ok"); // just to exercise the pipeline further
        let _ = rebound;
        let remerged = restricted.merge_with(&m).expect("restricted defs are gone");
        prop_assert_eq!(exports_sorted(&remerged), exports_sorted(&m));
    }

    /// rename with an identity replacement is a no-op.
    #[test]
    fn identity_rename_is_noop(m in arb_module("a")) {
        // `^_a` -> `_a` replaces the matched span with itself.
        let renamed = m.rename("^_a", "_a", RenameTarget::Both).expect("ok");
        prop_assert_eq!(
            m.materialize().expect("ok").content_hash(),
            renamed.materialize().expect("ok").content_hash()
        );
    }

    /// copy-as then restrict of the original leaves exactly the copies
    /// (the interposition preparation step).
    #[test]
    fn copy_then_restrict_leaves_copies(m in arb_module("a")) {
        let prepared = m
            .copy_as("^_a", "_SAVED_a")
            .expect("ok")
            .restrict("^_a[0-9]+$")
            .expect("ok");
        let exports = exports_sorted(&prepared);
        for e in &exports {
            prop_assert!(e.starts_with("_SAVED_a"), "unexpected survivor {e}");
        }
        prop_assert_eq!(exports.len(), exports_sorted(&m).len());
    }

    /// freeze really is permanent across arbitrary later pipelines.
    #[test]
    fn freeze_is_permanent(m in arb_module("a"), later in 0u8..3) {
        let frozen = m.freeze("^_a0$").expect("ok");
        let attacked = match later {
            0 => frozen.restrict("^_a0$").expect("ok"),
            1 => frozen.hide("^_a0$").expect("ok"),
            _ => frozen.rename("^_a0$", "_gone", RenameTarget::Both).expect("ok"),
        };
        prop_assert!(exports_sorted(&attacked).contains(&"_a0".to_string()));
    }
}
