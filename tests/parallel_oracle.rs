//! Parallel ≡ sequential oracle: intra-request parallel evaluation and
//! concurrent library linking must be *invisible* to the client except
//! in `latency_ns` and the span timeline.
//!
//! Over randomized blueprints, a cold build at `eval_jobs` ∈ {2, 8}
//! must match the sequential build (`eval_jobs` = 1) exactly: the same
//! program bytes, the same library images in the same order, the same
//! export namespace, the same billed `server_ns`, the same dynamic-lib
//! registrations — or the very same error. A deterministic fan-out
//! workload then checks the point of the exercise: the simulated
//! critical path shrinks at 8 jobs while the bill stays identical.

use std::collections::BTreeMap;

use proptest::prelude::*;

use omos::core::Omos;
use omos::isa::assemble;
use omos::obj::{ObjectFile, Section, SectionKind, Symbol};
use omos::os::ipc::Transport;
use omos::os::CostModel;

/// A world with enough shape for the generator: plain mergeable
/// objects, a conflicting pair (`/o/a` and `/o/dup` both define `_a`),
/// a dynamic specialization target, and a constraint-placed library.
fn server() -> Omos {
    let s = Omos::new(CostModel::hpux(), Transport::SysVMsg);
    s.namespace.bind_object(
        "/o/main",
        assemble("main.o", ".text\n.global _start\n_start: sys 0\n").unwrap(),
    );
    s.namespace.bind_object(
        "/o/a",
        assemble("a.o", ".text\n.global _a\n_a: call _b\n ret\n").unwrap(),
    );
    s.namespace.bind_object(
        "/o/b",
        assemble("b.o", ".text\n.global _b\n_b: ret\n").unwrap(),
    );
    s.namespace.bind_object(
        "/o/c",
        assemble("c.o", ".text\n.global _c\n_c: li r1, 3\n ret\n").unwrap(),
    );
    s.namespace.bind_object(
        "/o/dup",
        assemble("dup.o", ".text\n.global _a\n_a: ret\n").unwrap(),
    );
    s.namespace.bind_object(
        "/libc/stdio.o",
        assemble("stdio.o", ".text\n.global _puts\n_puts: li r1, 7\n ret\n").unwrap(),
    );
    s.namespace
        .bind_blueprint(
            "/lib/lc",
            "(constraint-list \"T\" 0x1000000 \"D\" 0x41000000)\n(merge /libc/stdio.o)",
        )
        .unwrap();
    s
}

/// Everything about a reply the client could observe (besides timing).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Fingerprint {
    program: u64,
    program_symbols: BTreeMap<String, u32>,
    libraries: Vec<u64>,
    server_ns: u64,
    dynamic_libs: usize,
}

/// Cold-builds `src` on a fresh server at the given parallelism.
fn run(src: &str, jobs: usize) -> Result<Fingerprint, String> {
    let s = server();
    s.set_eval_jobs(jobs);
    s.namespace
        .bind_blueprint("/bin/t", src)
        .map_err(|e| format!("{e:?}"))?;
    let r = s.instantiate("/bin/t").map_err(|e| e.to_string())?;
    Ok(Fingerprint {
        program: r.program.image.content_hash().0,
        program_symbols: r
            .program
            .image
            .symbols
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect(),
        libraries: r
            .libraries
            .iter()
            .map(|l| l.image.content_hash().0)
            .collect(),
        server_ns: r.server_ns,
        dynamic_libs: s.dynamic_lib_count(),
    })
}

const LEAVES: [&str; 5] = ["/o/a", "/o/b", "/o/c", "/o/dup", "/lib/lc"];
const PATTERNS: [&str; 3] = ["^_a$", "^_b$", "^_zz$"];

/// A random program: `/o/main` merged with 1–3 random subtrees, each a
/// merge of random leaves optionally wrapped in a view operation or a
/// dynamic specialization.
fn arb_program() -> impl Strategy<Value = String> {
    let subtree = (
        proptest::collection::vec(0usize..LEAVES.len(), 1..4),
        0usize..5, // 0: bare, 1: rename, 2: hide, 3: restrict, 4: specialize
        0usize..PATTERNS.len(),
    )
        .prop_map(|(leaves, wrap, pat)| {
            let inner = format!(
                "(merge {})",
                leaves
                    .iter()
                    .map(|&i| LEAVES[i])
                    .collect::<Vec<_>>()
                    .join(" ")
            );
            match wrap {
                1 => format!("(rename \"{}\" \"_r\" {inner})", PATTERNS[pat]),
                2 => format!("(hide \"{}\" {inner})", PATTERNS[pat]),
                3 => format!("(restrict \"^_[ab]\" {inner})",),
                4 => format!("(specialize \"lib-dynamic\" {inner})"),
                _ => inner,
            }
        });
    proptest::collection::vec(subtree, 1..4)
        .prop_map(|subs| format!("(merge /o/main {})", subs.join(" ")))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Byte-identical images, identical namespaces, identical billed
    /// `server_ns` — or the identical error — at jobs ∈ {1, 2, 8}.
    #[test]
    fn parallel_build_is_indistinguishable_from_sequential(src in arb_program()) {
        let base = run(&src, 1);
        for jobs in [2usize, 8] {
            let got = run(&src, jobs);
            prop_assert_eq!(
                &base, &got,
                "jobs={} diverged from sequential for {}", jobs, src
            );
        }
    }
}

/// A wide, link-heavy workload: `nlibs` independent constraint-placed
/// libraries (64 KiB of text each) under one program. The library
/// links dominate and are mutually independent, so a `jobs`-wide
/// schedule should collapse the critical path.
fn fanout_server(nlibs: usize) -> Omos {
    let s = Omos::new(CostModel::hpux(), Transport::SysVMsg);
    s.namespace.bind_object(
        "/o/main",
        assemble("main.o", ".text\n.global _start\n_start: sys 0\n").unwrap(),
    );
    let mut uses = String::new();
    for i in 0..nlibs {
        let mut o = ObjectFile::new(&format!("f{i}.o"));
        let t = o.add_section(Section::with_bytes(
            ".text",
            SectionKind::Text,
            vec![0u8; 64 << 10],
            8,
        ));
        o.define(Symbol::defined(&format!("_f{i}"), t, 0)).unwrap();
        s.namespace.bind_object(&format!("/o/f{i}.o"), o);
        s.namespace
            .bind_blueprint(
                &format!("/lib/f{i}"),
                &format!(
                    "(constraint-list \"T\" {:#x} \"D\" {:#x})\n(merge /o/f{i}.o)",
                    0x0200_0000 + (i as u64) * 0x20_0000,
                    0x4200_0000 + (i as u64) * 0x20_0000,
                ),
            )
            .unwrap();
        uses.push_str(&format!(" /lib/f{i}"));
    }
    s.namespace
        .bind_blueprint("/bin/fan", &format!("(merge /o/main{uses})"))
        .unwrap();
    s
}

#[test]
fn fanout_halves_latency_without_touching_the_bill() {
    let seq = {
        let s = fanout_server(12);
        s.set_eval_jobs(1);
        s.instantiate("/bin/fan").unwrap()
    };
    // Sequentially, latency *is* the work sum.
    assert_eq!(seq.latency_ns, seq.server_ns);

    let par = {
        let s = fanout_server(12);
        s.set_eval_jobs(8);
        s.instantiate("/bin/fan").unwrap()
    };
    // The bill and the bytes are invariant under the schedule...
    assert_eq!(par.server_ns, seq.server_ns, "billed work must not change");
    assert_eq!(
        par.program.image.content_hash(),
        seq.program.image.content_hash()
    );
    assert_eq!(par.libraries.len(), seq.libraries.len());
    for (p, q) in par.libraries.iter().zip(&seq.libraries) {
        assert_eq!(p.image.content_hash(), q.image.content_hash());
    }
    // ...but the simulated critical path collapses.
    assert!(
        par.latency_ns * 2 <= seq.latency_ns,
        "expected ≥2x simulated speedup on a 12-library fan-out: \
         sequential {} ns, parallel {} ns",
        seq.latency_ns,
        par.latency_ns
    );
}

#[test]
fn warm_hits_bill_latency_equal_to_work_at_any_parallelism() {
    let s = fanout_server(4);
    s.set_eval_jobs(8);
    let cold = s.instantiate("/bin/fan").unwrap();
    let warm = s.instantiate("/bin/fan").unwrap();
    assert!(warm.cache_hit);
    assert_eq!(warm.latency_ns, warm.server_ns);
    assert!(warm.server_ns < cold.server_ns);
}
