//! Edge cases across layer boundaries: empty inputs, degenerate
//! programs, deep blueprint nesting, and boundary addresses.

use omos::blueprint::Blueprint;
use omos::core::{run_under_omos, Omos};
use omos::isa::{assemble, StopReason};
use omos::link::{link, LinkOptions};
use omos::module::Module;
use omos::obj::ObjectFile;
use omos::os::ipc::Transport;
use omos::os::{CostModel, InMemFs, SimClock};

#[test]
fn empty_object_participates_in_merges() {
    let empty = Module::from_object(ObjectFile::new("empty.o"));
    let real = Module::from_object(assemble("r.o", ".text\n.global _f\n_f: ret\n").unwrap());
    let merged = empty.merge_with(&real).unwrap();
    assert_eq!(merged.exports().unwrap(), vec!["_f".to_string()]);
    let other_way = real.merge_with(&empty).unwrap();
    assert_eq!(other_way.exports().unwrap(), vec!["_f".to_string()]);
}

#[test]
fn zero_object_link_yields_empty_library() {
    let out = link(
        &[],
        &LinkOptions::library("nothing", 0x10_0000, 0x4000_0000),
    )
    .unwrap();
    assert!(out.image.segments.is_empty());
    assert!(out.image.symbols.is_empty());
}

#[test]
fn minimal_program_is_one_instruction() {
    // `sys 0` with r1 = 0 by reset: the smallest valid program.
    let obj = assemble("min.o", ".text\n.global _start\n_start: sys 0\n").unwrap();
    let out = link(&[obj], &LinkOptions::program("min")).unwrap();
    assert_eq!(out.image.loaded_bytes(), 8);
    let s = Omos::new(CostModel::hpux(), Transport::MachIpc);
    s.namespace.bind_object(
        "/obj/min.o",
        assemble("min.o", ".text\n.global _start\n_start: sys 0\n").unwrap(),
    );
    s.namespace
        .bind_blueprint("/bin/min", "(merge /obj/min.o)")
        .unwrap();
    let cost = CostModel::hpux();
    let mut fs = InMemFs::new();
    let mut clock = SimClock::new();
    let run = run_under_omos(&s, "/bin/min", true, &mut clock, &cost, &mut fs, 10).unwrap();
    assert_eq!(run.stop, StopReason::Exited(0));
    assert_eq!(run.stats.instructions, 1);
}

#[test]
fn deeply_nested_blueprints_evaluate() {
    // 32 nested hide operations over one fragment.
    let mut src = String::new();
    for i in 0..32 {
        src.push_str(&format!("(hide \"^_never_{i}$\" "));
    }
    src.push_str("/obj/base.o");
    src.push_str(&")".repeat(32));
    let bp = Blueprint::parse(&src).unwrap();
    let s = Omos::new(CostModel::hpux(), Transport::MachIpc);
    s.namespace.bind_object(
        "/obj/base.o",
        assemble("base.o", ".text\n.global _start\n_start: sys 0\n").unwrap(),
    );
    let reply = s.instantiate_blueprint(&bp).unwrap();
    assert!(reply.program.image.entry.is_some());
}

#[test]
fn meta_object_chains_resolve_transitively() {
    // /bin/a -> /meta/b -> /meta/c -> fragment.
    let s = Omos::new(CostModel::hpux(), Transport::MachIpc);
    s.namespace.bind_object(
        "/obj/leaf.o",
        assemble(
            "leaf.o",
            ".text\n.global _start\n_start: li r1, 3\n sys 0\n",
        )
        .unwrap(),
    );
    s.namespace
        .bind_blueprint("/meta/c", "(merge /obj/leaf.o)")
        .unwrap();
    s.namespace
        .bind_blueprint("/meta/b", "(show \"^_start$\" /meta/c)")
        .unwrap();
    s.namespace
        .bind_blueprint("/bin/a", "(merge /meta/b)")
        .unwrap();
    let cost = CostModel::hpux();
    let mut fs = InMemFs::new();
    let mut clock = SimClock::new();
    let run = run_under_omos(&s, "/bin/a", true, &mut clock, &cost, &mut fs, 100).unwrap();
    assert_eq!(run.stop, StopReason::Exited(3));
}

#[test]
fn library_data_at_region_boundaries() {
    // A library whose BSS crosses several page boundaries still maps and
    // reads back as zero.
    let s = Omos::new(CostModel::hpux(), Transport::MachIpc);
    s.namespace.bind_object(
        "/libc/bigbss.o",
        assemble(
            "bigbss.o",
            r#"
            .text
            .global _peek
_peek:      li r2, _arena
            add r2, r2, r1
            ld r1, [r2]
            ret
            .bss
            .global _arena
_arena:     .space 20000
            "#,
        )
        .unwrap(),
    );
    s.namespace
        .bind_blueprint(
            "/lib/bigbss",
            "(constraint-list \"T\" 0x2000000 \"D\" 0x42000000)\n(merge /libc/bigbss.o)",
        )
        .unwrap();
    s.namespace.bind_object(
        "/obj/probe.o",
        assemble(
            "probe.o",
            r#"
            .text
            .global _start
_start:     li r1, 19996       ; the last word of the arena
            call _peek
            sys 0
            "#,
        )
        .unwrap(),
    );
    s.namespace
        .bind_blueprint("/bin/probe", "(merge /obj/probe.o /lib/bigbss)")
        .unwrap();
    let cost = CostModel::hpux();
    let mut fs = InMemFs::new();
    let mut clock = SimClock::new();
    let run = run_under_omos(&s, "/bin/probe", true, &mut clock, &cost, &mut fs, 1000).unwrap();
    assert_eq!(run.stop, StopReason::Exited(0), "BSS reads back zero");
}

#[test]
fn console_output_across_page_boundary() {
    // A single write larger than one page must arrive intact.
    let s = Omos::new(CostModel::hpux(), Transport::MachIpc);
    let big = 5000;
    s.namespace.bind_object(
        "/obj/big.o",
        assemble(
            "big.o",
            &format!(
                r#"
            .text
            .global _start
_start:     li r1, 1
            li r2, _blob
            li r3, {big}
            sys 1
            li r1, 0
            sys 0
            .data
_blob:      .space {big}
            "#
            ),
        )
        .unwrap(),
    );
    s.namespace
        .bind_blueprint("/bin/big", "(merge /obj/big.o)")
        .unwrap();
    let cost = CostModel::hpux();
    let mut fs = InMemFs::new();
    let mut clock = SimClock::new();
    let run = run_under_omos(&s, "/bin/big", true, &mut clock, &cost, &mut fs, 100).unwrap();
    assert_eq!(run.stop, StopReason::Exited(0));
    assert_eq!(run.console.len(), big as usize);
    assert!(run.console.iter().all(|&b| b == 0));
}
