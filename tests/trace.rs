//! Trace well-formedness and counter-conservation tests (omos-trace).
//!
//! The tracer observes the request pipeline from many threads at once
//! and stores spans in a fixed-size overwrite-oldest ring, so its
//! guarantees are structural, not exhaustive:
//!
//! * every *retained* request tree is well formed — exactly one root,
//!   children strictly inside their ancestors, siblings non-overlapping
//!   on the request's SimClock timeline;
//! * counters obey conservation laws (`hits + misses == probes` per
//!   cache, `leaders + coalesced == flight entries`) no matter how the
//!   schedule interleaved;
//! * the ring bounds memory: retained spans never exceed capacity.

use std::sync::Barrier;

use proptest::prelude::*;

use omos::core::trace::{SpanKind, Stage, Tracer};
use omos::core::Omos;
use omos::isa::assemble;
use omos::os::ipc::Transport;
use omos::os::CostModel;

/// A server with `n` programs that all share one library.
fn world(n: usize) -> Omos {
    let s = Omos::new(CostModel::hpux(), Transport::SysVMsg);
    s.namespace.bind_object(
        "/libc/stdio.o",
        assemble("stdio.o", ".text\n.global _puts\n_puts: li r1, 7\n ret\n").unwrap(),
    );
    s.namespace
        .bind_blueprint(
            "/lib/libc",
            "(constraint-list \"T\" 0x1000000 \"D\" 0x41000000)\n(merge /libc/stdio.o)",
        )
        .unwrap();
    for i in 0..n {
        s.namespace.bind_object(
            &format!("/obj/p{i}.o"),
            assemble(
                &format!("p{i}.o"),
                &format!(".text\n.global _start\n_start: li r1, {i}\n call _puts\n sys 0\n"),
            )
            .unwrap(),
        );
        s.namespace
            .bind_blueprint(
                &format!("/bin/p{i}"),
                &format!("(merge /obj/p{i}.o /lib/libc)"),
            )
            .unwrap();
    }
    s
}

/// Closed interval end on the request timeline.
fn end_ns(s: &omos::core::trace::SpanRecord) -> u64 {
    s.start_ns + s.dur_ns
}

/// Asserts one request's spans form a well-shaped tree: exactly one
/// depth-0 root starting at 0, every deeper span contained in the root,
/// same-depth interval spans non-overlapping, and any overlap between
/// different depths being strict containment of the deeper by the
/// shallower.
fn assert_well_formed(req: u64, spans: &[omos::core::trace::SpanRecord]) {
    let roots: Vec<_> = spans.iter().filter(|s| s.depth == 0).collect();
    assert_eq!(
        roots.len(),
        1,
        "request {req} has exactly one root span: {spans:#?}"
    );
    let root = roots[0];
    assert!(
        matches!(root.kind, SpanKind::Request | SpanKind::DynLookup),
        "request {req} root is a request-kind span, got {:?}",
        root.kind
    );
    assert_eq!(root.start_ns, 0, "request {req} timeline starts at zero");
    for s in spans {
        assert!(
            s.start_ns >= root.start_ns && end_ns(s) <= end_ns(root),
            "request {req}: span {s:?} escapes its root {root:?}"
        );
    }
    // Pairwise interval discipline among the non-root spans.
    let intervals: Vec<_> = spans.iter().filter(|s| s.depth > 0).collect();
    for (i, a) in intervals.iter().enumerate() {
        for b in intervals.iter().skip(i + 1) {
            // Strict overlap; zero-width instants at a boundary touch,
            // never overlap.
            let overlaps = a.start_ns < end_ns(b) && b.start_ns < end_ns(a);
            if !overlaps {
                continue;
            }
            let (outer, inner) = if a.depth <= b.depth { (a, b) } else { (b, a) };
            if a.depth == b.depth {
                // Same depth may only overlap when one is an instant
                // sitting inside the other interval.
                assert!(
                    a.dur_ns == 0 || b.dur_ns == 0,
                    "request {req}: sibling intervals overlap: {a:?} vs {b:?}"
                );
            }
            assert!(
                outer.start_ns <= inner.start_ns && end_ns(inner) <= end_ns(outer),
                "request {req}: deeper span not contained: {outer:?} vs {inner:?}"
            );
        }
    }
}

#[test]
fn eight_thread_workload_yields_well_formed_span_trees() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 12;

    let s = world(THREADS);
    let barrier = Barrier::new(THREADS);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let (s, barrier) = (&s, &barrier);
            scope.spawn(move || {
                barrier.wait();
                for i in 0..PER_THREAD {
                    // Mix of colliding paths (coalescing + cache hits)
                    // and per-thread paths (cold builds).
                    let p = match i % 3 {
                        0 => "/bin/p0".to_string(),
                        1 => format!("/bin/p{t}"),
                        _ => format!("/bin/p{}", (t + i) % THREADS),
                    };
                    let r = s.instantiate(&p).expect("instantiate succeeds");
                    assert_ne!(r.req, 0, "tracing is on, replies carry request ids");
                }
            });
        }
    });

    let snap = s.trace_snapshot();

    // The workload is sized to fit the ring: nothing was overwritten,
    // so every request tree is complete.
    assert!(
        snap.counters.spans_recorded <= snap.ring_capacity as u64,
        "workload must fit the ring for this test ({} > {})",
        snap.counters.spans_recorded,
        snap.ring_capacity
    );
    assert_eq!(snap.spans.len() as u64, snap.counters.spans_recorded);

    // Every request that started also closed its root span.
    let reqs: std::collections::BTreeSet<u64> = snap.spans.iter().map(|s| s.req).collect();
    assert_eq!(
        reqs.len() as u64,
        snap.counters.requests + snap.counters.dyn_lookups,
        "one span tree per traced request"
    );
    for &req in &reqs {
        let spans = snap.request_spans(req);
        assert!(
            spans.len() <= snap.ring_capacity,
            "per-request span count is bounded by the ring"
        );
        assert_well_formed(req, &spans);
    }

    // Conservation laws, regardless of interleaving.
    let c = &snap.counters;
    assert_eq!(c.reply_hits + c.reply_misses, c.reply_probes);
    assert_eq!(c.eval_hits + c.eval_misses, c.eval_probes);
    assert_eq!(c.image_hits + c.image_misses, c.image_probes);
    assert!(c.reply_stale <= c.reply_misses);
    assert!(c.eval_stale <= c.eval_misses);
    assert_eq!(c.flight_leaders + c.flight_coalesced, c.flight_entries);

    // The tracer's request count matches the server's, and the server's
    // own books still balance.
    let st = s.stats();
    assert_eq!(c.requests, st.requests);
    assert_eq!(
        st.requests,
        st.reply_cache_hits + st.coalesced + st.replies_built
    );

    // Billed stages actually measured something.
    for stage in [Stage::Request, Stage::Eval, Stage::Link, Stage::Frame] {
        assert!(
            snap.stage(stage).count > 0,
            "stage {} saw at least one sample",
            stage.name()
        );
    }
}

#[test]
fn ring_bounds_retained_spans_under_overflow() {
    const CAPACITY: usize = 32;
    let t = Tracer::with_capacity(CAPACITY);
    for _ in 0..10 {
        let g = t.begin_request(SpanKind::Request);
        for _ in 0..20 {
            let span = t.open(SpanKind::Eval);
            t.close_leaf(span, Stage::Eval, 5);
        }
        drop(g);
    }
    let snap = t.snapshot();
    assert_eq!(snap.spans.len(), CAPACITY, "ring retains exactly capacity");
    assert_eq!(snap.counters.spans_recorded, 10 * 21);
    for req in snap.spans.iter().map(|s| s.req) {
        assert!(snap.request_spans(req).len() <= CAPACITY);
    }
    // Overwrite keeps the *newest* records (seqs start at 1).
    let min_seq = snap.spans.iter().map(|s| s.seq).min().unwrap();
    assert_eq!(min_seq, 10 * 21 - CAPACITY as u64 + 1);
}

/// A wide fan-out request: `n` independent constraint-placed libraries
/// under one client, so a parallel schedule has real sibling overlap.
fn fanout_world(n: usize) -> Omos {
    let s = Omos::new(CostModel::hpux(), Transport::SysVMsg);
    s.namespace.bind_object(
        "/obj/main.o",
        assemble("main.o", ".text\n.global _start\n_start: sys 0\n").unwrap(),
    );
    let mut uses = String::new();
    for i in 0..n {
        for half in ["a", "b"] {
            s.namespace.bind_object(
                &format!("/obj/f{i}{half}.o"),
                assemble(
                    &format!("f{i}{half}.o"),
                    &format!(".text\n.global _f{i}{half}\n_f{i}{half}: li r1, {i}\n ret\n"),
                )
                .unwrap(),
            );
        }
        s.namespace
            .bind_blueprint(
                &format!("/lib/f{i}"),
                &format!(
                    "(constraint-list \"T\" {:#x} \"D\" {:#x})\n(merge /obj/f{i}a.o /obj/f{i}b.o)",
                    0x0200_0000 + (i as u64) * 0x20_0000,
                    0x4200_0000 + (i as u64) * 0x20_0000,
                ),
            )
            .unwrap();
        uses.push_str(&format!(" /lib/f{i}"));
    }
    s.namespace
        .bind_blueprint("/bin/fan", &format!("(merge /obj/main.o{uses})"))
        .unwrap();
    s
}

/// Drops the timing payload from a rendered span line — the `(dur)`
/// and `@ cursor` parts — keeping the indentation, the label, and the
/// worker-lane tag: the parts the snapshot pins.
fn normalize_line(line: &str) -> String {
    let label = line
        .split(" (")
        .next()
        .unwrap_or(line)
        .split(" @ ")
        .next()
        .unwrap_or(line);
    let lane = line
        .find(" [w")
        .map(|i| &line[i..i + line[i..].find(']').map_or(0, |j| j + 1)])
        .unwrap_or("");
    format!("{label}{lane}")
}

/// Satellite snapshot: a parallel request's sibling work-unit and link
/// spans render in (start cursor, worker lane) order — never completion
/// order — so the tree is byte-stable run over run.
#[test]
fn parallel_siblings_render_sorted_by_start_then_worker() {
    let render = || {
        let s = fanout_world(4);
        s.set_eval_jobs(3);
        let r = s.instantiate("/bin/fan").unwrap();
        assert!(!r.cache_hit);
        let snap = s.trace_snapshot();
        omos::core::trace::render_tree(&snap.request_spans(r.req))
    };

    let tree = render();
    assert_eq!(tree, render(), "parallel render is deterministic");

    let normalized: Vec<String> = tree.lines().map(normalize_line).collect();
    let mut expected = vec![
        "request",
        "  reply-cache probe: miss",
        "  single-flight: leader",
        "  reply-cache probe: miss",
        "  eval",
    ];
    // One probe per planned node: 8 library objects, 4 library metas,
    // the client object, and the client merge.
    expected.extend(std::iter::repeat_n("    eval-cache probe: miss", 14));
    expected.extend([
        // The four library evals round-robin three lanes in ordinal
        // order; the zero-work client merge emits no unit span.
        "    eval-unit [w1]",
        "    eval-unit [w2]",
        "    eval-unit [w3]",
        "    eval-unit [w1]",
        // Serial prepare: placement and image-cache probe per library...
        "  placement",
        "  image-cache probe: miss",
        "  placement",
        "  image-cache probe: miss",
        "  placement",
        "  image-cache probe: miss",
        "  placement",
        "  image-cache probe: miss",
        // ...then the links fan out over the lanes.
        "  link [w1]",
        "  link [w2]",
        "  link [w3]",
        "  link [w1]",
        // Program: probe (twice: flight double-check), link, frame.
        "  image-cache probe: miss",
        "  image-cache probe: miss",
        "  link",
        "  frame",
    ]);
    assert_eq!(
        normalized, expected,
        "snapshot of the parallel span tree (timings stripped):\n{tree}"
    );
}

// --- Property: arbitrary op sequences keep the span tree well formed ------------

/// Interprets a fuzzer op sequence against a tracer inside one request,
/// maintaining a model of what the recorded spans must look like.
/// Returns (expected root duration, model spans as (depth, start, dur)).
fn run_ops(t: &Tracer, ops: &[(u8, u64)]) -> (u64, Vec<(u16, u64, u64)>) {
    struct ModelOpen {
        span: omos::core::trace::OpenSpan,
        depth: u16,
        start: u64,
    }
    let mut cursor = 0u64;
    let mut depth = 1u16;
    let mut open: Vec<ModelOpen> = Vec::new();
    let mut closed: Vec<(u16, u64, u64)> = Vec::new();
    for &(op, ns) in ops {
        match op % 4 {
            0 => {
                open.push(ModelOpen {
                    span: t.open(SpanKind::Link),
                    depth,
                    start: cursor,
                });
                depth += 1;
            }
            1 => {
                if let Some(m) = open.pop() {
                    t.close(m.span);
                    depth -= 1;
                    closed.push((m.depth, m.start, cursor - m.start));
                }
            }
            2 => {
                let span = t.open(SpanKind::Placement);
                t.close_leaf(span, Stage::Placement, ns);
                closed.push((depth, cursor, ns));
                cursor += ns;
            }
            _ => {
                t.advance(ns);
                cursor += ns;
            }
        }
    }
    while let Some(m) = open.pop() {
        t.close(m.span);
        depth -= 1;
        closed.push((m.depth, m.start, cursor - m.start));
    }
    let _ = depth;
    (cursor, closed)
}

proptest! {
    #[test]
    fn op_sequences_produce_well_formed_trees(
        ops in proptest::collection::vec((0u8..4, 0u64..10_000), 0..120),
    ) {
        let t = Tracer::new();
        let guard = t.begin_request(SpanKind::Request);
        let req = guard.req();
        let (expect_root, model) = run_ops(&t, &ops);
        drop(guard);

        let snap = t.snapshot();
        let spans = snap.request_spans(req);
        assert_well_formed(req, &spans);

        // The root span bills exactly the sum of leaves and advances.
        let root = spans.iter().find(|s| s.depth == 0).expect("root span");
        prop_assert_eq!(root.dur_ns, expect_root);

        // Every model span was recorded with the modelled geometry
        // (ring order is push order; the root is recorded last).
        let recorded: Vec<(u16, u64, u64)> = spans
            .iter()
            .filter(|s| s.depth > 0)
            .map(|s| (s.depth, s.start_ns, s.dur_ns))
            .collect();
        prop_assert_eq!(recorded, model);

        // Histogram conservation: placement samples == leaf closes.
        let leaves = ops.iter().filter(|(op, _)| op % 4 == 2).count() as u64;
        prop_assert_eq!(snap.stage(Stage::Placement).count, leaves);
    }
}
