//! Failure injection: corrupt images, broken programs, resource
//! pressure, and the §4.1 shared-variable error case. Every failure must
//! surface as a typed error or a VM fault — never a panic, never silent
//! misbehavior.

use omos::core::cache::{CachedImage, ImageCache};
use omos::core::{run_under_omos, Omos, OmosError};
use omos::isa::{assemble, StopReason, VmFault};
use omos::link::{link, LinkError, LinkOptions, LinkStats};
use omos::obj::encode::{read_any, write, Format};
use omos::obj::ContentHash;
use omos::os::ipc::Transport;
use omos::os::{CostModel, ImageFrames, InMemFs, SimClock};

#[test]
fn corrupt_object_files_never_panic() {
    let obj = assemble("t.o", ".text\n.global _f\n_f: ret\n").unwrap();
    for fmt in [Format::Aout, Format::Som] {
        let good = write(fmt, &obj);
        // Every single-byte corruption either decodes to *something*
        // structurally valid or errors; no panics, no UB.
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0xff;
            let _ = read_any(&bad);
        }
        // Every truncation errors.
        for cut in 0..good.len() {
            assert!(
                read_any(&good[..cut]).is_err(),
                "{} truncated at {cut}",
                fmt.name()
            );
        }
    }
}

#[test]
fn runaway_program_hits_fuel_limit() {
    let s = Omos::new(CostModel::hpux(), Transport::MachIpc);
    s.namespace.bind_object(
        "/obj/spin.o",
        assemble(
            "spin.o",
            ".text\n.global _start\n_start: beq r0, r0, _start\n",
        )
        .unwrap(),
    );
    s.namespace
        .bind_blueprint("/bin/spin", "(merge /obj/spin.o)")
        .unwrap();
    let cost = CostModel::hpux();
    let mut fs = InMemFs::new();
    let mut clock = SimClock::new();
    let out = run_under_omos(&s, "/bin/spin", true, &mut clock, &cost, &mut fs, 10_000).unwrap();
    assert_eq!(out.stop, StopReason::Fault(VmFault::FuelExhausted));
    assert_eq!(out.stats.instructions, 10_000);
}

#[test]
fn wild_pointer_faults_cleanly() {
    let s = Omos::new(CostModel::hpux(), Transport::MachIpc);
    s.namespace.bind_object(
        "/obj/wild.o",
        assemble(
            "wild.o",
            ".text\n.global _start\n_start: li r2, 0xdead0000\n ld r1, [r2]\n sys 0\n",
        )
        .unwrap(),
    );
    s.namespace
        .bind_blueprint("/bin/wild", "(merge /obj/wild.o)")
        .unwrap();
    let cost = CostModel::hpux();
    let mut fs = InMemFs::new();
    let mut clock = SimClock::new();
    let out = run_under_omos(&s, "/bin/wild", true, &mut clock, &cost, &mut fs, 10_000).unwrap();
    assert!(matches!(
        out.stop,
        StopReason::Fault(VmFault::MemFault {
            addr: 0xdead_0000,
            write: false
        })
    ));
}

#[test]
fn store_to_text_faults() {
    let s = Omos::new(CostModel::hpux(), Transport::MachIpc);
    s.namespace.bind_object(
        "/obj/smash.o",
        assemble(
            "smash.o",
            ".text\n.global _start\n_start: li r2, _start\n st r2, [r2]\n sys 0\n",
        )
        .unwrap(),
    );
    s.namespace
        .bind_blueprint("/bin/smash", "(merge /obj/smash.o)")
        .unwrap();
    let cost = CostModel::hpux();
    let mut fs = InMemFs::new();
    let mut clock = SimClock::new();
    let out = run_under_omos(&s, "/bin/smash", true, &mut clock, &cost, &mut fs, 10_000).unwrap();
    assert!(
        matches!(
            out.stop,
            StopReason::Fault(VmFault::MemFault { write: true, .. })
        ),
        "text pages are not writable, got {:?}",
        out.stop
    );
}

#[test]
fn duplicate_definitions_across_client_and_library() {
    // §4.1's shared-variable hazard in its sharpest form: the client
    // defines a symbol the library also defines.
    let s = Omos::new(CostModel::hpux(), Transport::MachIpc);
    s.namespace.bind_object(
        "/obj/dup.o",
        assemble(
            "dup.o",
            ".text\n.global _start, _shared\n_start: sys 0\n_shared: ret\n",
        )
        .unwrap(),
    );
    s.namespace.bind_object(
        "/libc/dup.o",
        assemble("ldup.o", ".text\n.global _shared\n_shared: ret\n").unwrap(),
    );
    s.namespace
        .bind_blueprint("/bin/dup", "(merge /obj/dup.o /libc/dup.o)")
        .unwrap();
    match s.instantiate("/bin/dup") {
        Err(OmosError::Eval(e)) => assert!(e.to_string().contains("_shared")),
        other => panic!("expected duplicate-symbol failure, got {other:?}"),
    }
}

#[test]
fn circular_meta_objects_detected() {
    let s = Omos::new(CostModel::hpux(), Transport::MachIpc);
    s.namespace
        .bind_blueprint("/meta/a", "(merge /meta/b /meta/b)")
        .unwrap();
    s.namespace
        .bind_blueprint("/meta/b", "(merge /meta/a /meta/a)")
        .unwrap();
    match s.instantiate("/meta/a") {
        Err(OmosError::Eval(e)) => assert!(e.to_string().contains("cycle")),
        other => panic!("expected cycle error, got {other:?}"),
    }
}

#[test]
fn image_cache_eviction_under_disk_pressure() {
    // The paper: "disk space for caching multiple versions of large
    // libraries could be significant." A tight byte budget forces LRU
    // eviction; evicted images are rebuilt, not corrupted.
    let mk = |key: u64, size: usize| {
        let image = omos::link::LinkedImage {
            name: format!("v{key}"),
            segments: vec![omos::link::Segment {
                name: ".text".into(),
                kind: omos::obj::SectionKind::Text,
                vaddr: 0x1000,
                bytes: vec![key as u8; size],
                zero: 0,
            }],
            symbols: Default::default(),
            entry: None,
        };
        CachedImage {
            key: ContentHash(key),
            frames: ImageFrames::from_image(&image),
            image,
            link_stats: LinkStats::default(),
            rebuild_ns: 0,
            epoch: 0,
        }
    };
    let cache = ImageCache::new(10_000);
    for k in 0..10u64 {
        cache.insert(mk(k, 4_000));
    }
    assert!(cache.bytes() <= 10_000);
    assert!(cache.stats().evictions >= 7);
    // The most recent entries survive.
    assert!(cache.get(ContentHash(9)).is_some());
    assert!(cache.get(ContentHash(0)).is_none());
}

#[test]
fn linker_rejects_overlapping_layouts_not_panics() {
    let a = assemble(
        "a.o",
        ".text\n.global _start\n_start: sys 0\n.data\n.word 1\n",
    )
    .unwrap();
    let mut opts = LinkOptions::program("t");
    opts.data_base = opts.text_base;
    assert!(matches!(link(&[a], &opts), Err(LinkError::Layout(_))));
}

#[test]
fn bad_blueprints_are_rejected_at_bind_time() {
    let s = Omos::new(CostModel::hpux(), Transport::MachIpc);
    for bad in [
        "(merge",                    // unbalanced
        "(hide /x /y)",              // pattern must be a string
        "(specialize \"wat\" /x)",   // unknown specialization
        "(merge (source \"c\" 42))", // source needs strings
        "",                          // no root
    ] {
        assert!(
            s.namespace.bind_blueprint("/bin/bad", bad).is_err(),
            "blueprint {bad:?} should be rejected"
        );
    }
}

#[test]
fn bad_regex_in_blueprint_fails_at_eval() {
    let s = Omos::new(CostModel::hpux(), Transport::MachIpc);
    s.namespace.bind_object(
        "/obj/x.o",
        assemble("x.o", ".text\n.global _start\n_start: sys 0\n").unwrap(),
    );
    // `(unclosed` parses as a *string*, so binding succeeds and the error
    // surfaces at evaluation, when the regex compiles.
    s.namespace
        .bind_blueprint("/bin/bad", "(hide \"(unclosed\" (merge /obj/x.o))")
        .unwrap();
    match s.instantiate("/bin/bad") {
        Err(OmosError::Eval(e)) => assert!(e.to_string().contains("regular expression")),
        other => panic!("expected regex failure, got {other:?}"),
    }
}

#[test]
fn unknown_dynamic_library_id_is_typed() {
    let s = Omos::new(CostModel::hpux(), Transport::MachIpc);
    assert!(matches!(
        s.dyn_lookup(42, "_f"),
        Err(OmosError::NoSuchLibrary(42))
    ));
}

#[test]
fn program_without_entry_symbol_fails_to_instantiate() {
    let s = Omos::new(CostModel::hpux(), Transport::MachIpc);
    s.namespace.bind_object(
        "/obj/noentry.o",
        assemble("ne.o", ".text\n.global _main\n_main: ret\n").unwrap(),
    );
    s.namespace
        .bind_blueprint("/bin/noentry", "(merge /obj/noentry.o)")
        .unwrap();
    assert!(matches!(
        s.instantiate("/bin/noentry"),
        Err(OmosError::Link(LinkError::NoEntry(_)))
    ));
}
