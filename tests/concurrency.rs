//! Concurrency integration tests: many client threads against one
//! shared [`Omos`] server.
//!
//! The server's whole premise is that it is *persistent and shared* —
//! these tests drive the `&self` request paths from real threads and
//! assert the tentpole invariants:
//!
//! * single-flight: N concurrent cold-starts of one program do exactly
//!   one eval+link, and every client maps the same frames;
//! * concurrent ≡ sequential: a mixed workload produces byte-identical
//!   images to a sequential replay, and the counters sum consistently;
//! * selective invalidation: binds only evict derivations that depended
//!   on the touched paths;
//! * the image cache keeps its byte budget and never invalidates a
//!   client's mapping under concurrent insert/hit interleavings.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use omos::core::cache::{CachedImage, ImageCache};
use omos::core::Omos;
use omos::isa::assemble;
use omos::link::LinkStats;
use omos::obj::ContentHash;
use omos::os::ipc::Transport;
use omos::os::{CostModel, ImageFrames};

/// A server with `n` programs that all share one library. The IPC
/// transport comes from `OMOS_TRANSPORT` (default SysV messages) so CI
/// can sweep the whole suite across the transport matrix.
fn world(n: usize) -> Omos {
    let s = Omos::new(CostModel::hpux(), Transport::from_env(Transport::SysVMsg));
    s.namespace.bind_object(
        "/libc/stdio.o",
        assemble("stdio.o", ".text\n.global _puts\n_puts: li r1, 7\n ret\n").unwrap(),
    );
    s.namespace
        .bind_blueprint(
            "/lib/libc",
            "(constraint-list \"T\" 0x1000000 \"D\" 0x41000000)\n(merge /libc/stdio.o)",
        )
        .unwrap();
    for i in 0..n {
        s.namespace.bind_object(
            &format!("/obj/p{i}.o"),
            assemble(
                &format!("p{i}.o"),
                &format!(".text\n.global _start\n_start: li r1, {i}\n call _puts\n sys 0\n"),
            )
            .unwrap(),
        );
        s.namespace
            .bind_blueprint(
                &format!("/bin/p{i}"),
                &format!("(merge /obj/p{i}.o /lib/libc)"),
            )
            .unwrap();
    }
    s
}

#[test]
fn concurrent_cold_start_links_exactly_once() {
    const THREADS: usize = 8;
    let s = world(1);
    let barrier = Barrier::new(THREADS);

    let replies: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let s = &s;
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    s.instantiate("/bin/p0").expect("instantiate succeeds")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let st = s.stats();
    assert_eq!(st.requests, THREADS as u64);
    // The single-flight invariant: one build, period.
    assert_eq!(st.replies_built, 1, "exactly one reply built: {st:?}");
    assert_eq!(st.programs_built, 1, "exactly one program link: {st:?}");
    assert_eq!(st.libraries_built, 1, "one distinct library: {st:?}");
    // Every request is accounted for exactly once.
    assert_eq!(
        st.reply_cache_hits + st.coalesced + st.replies_built,
        st.requests,
        "{st:?}"
    );
    // Exactly the builder's reply is marked as a miss; everyone shares
    // the same physical frames.
    let misses = replies.iter().filter(|r| !r.cache_hit).count();
    assert_eq!(misses, 1, "only the leader's reply is a miss");
    for r in &replies {
        assert!(Arc::ptr_eq(&r.program, &replies[0].program));
        assert_eq!(r.libraries.len(), 1);
        assert!(Arc::ptr_eq(&r.libraries[0], &replies[0].libraries[0]));
    }
}

#[test]
fn mixed_workload_matches_sequential_oracle() {
    const THREADS: usize = 4;
    const PROGRAMS: usize = 4;
    const ITERS: usize = 8;

    // Sequential oracle: a fresh identical server, each program once.
    let oracle: Vec<(u64, Vec<u64>)> = {
        let s = world(PROGRAMS);
        (0..PROGRAMS)
            .map(|i| {
                let r = s.instantiate(&format!("/bin/p{i}")).unwrap();
                (
                    r.program.image.content_hash().0,
                    r.libraries
                        .iter()
                        .map(|l| l.image.content_hash().0)
                        .collect(),
                )
            })
            .collect()
    };

    let s = world(PROGRAMS);
    let barrier = Barrier::new(THREADS);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let s = &s;
            let barrier = &barrier;
            let oracle = &oracle;
            scope.spawn(move || {
                barrier.wait();
                for iter in 0..ITERS {
                    // Interleave namespace defines the programs never
                    // depend on — they must not perturb anything.
                    if iter % 2 == 0 {
                        s.namespace.bind_object(
                            &format!("/scratch/t{t}-{iter}.o"),
                            assemble("u.o", ".text\nnop\n").unwrap(),
                        );
                    }
                    for m in 0..PROGRAMS {
                        let path = format!("/bin/p{}", (t + m) % PROGRAMS);
                        let r = s.instantiate(&path).expect("instantiate succeeds");
                        let want = &oracle[(t + m) % PROGRAMS];
                        assert_eq!(
                            r.program.image.content_hash().0,
                            want.0,
                            "{path}: concurrent image differs from sequential replay"
                        );
                        let libs: Vec<u64> = r
                            .libraries
                            .iter()
                            .map(|l| l.image.content_hash().0)
                            .collect();
                        assert_eq!(libs, want.1, "{path}: library set differs");
                    }
                }
            });
        }
    });

    let st = s.stats();
    assert_eq!(st.requests, (THREADS * ITERS * PROGRAMS) as u64);
    assert_eq!(
        st.reply_cache_hits + st.coalesced + st.replies_built,
        st.requests,
        "every request is a hit, a coalesce, or a build: {st:?}"
    );
    // The scratch binds are unrelated: nothing was ever rebuilt.
    assert_eq!(st.replies_built, PROGRAMS as u64, "{st:?}");
    assert_eq!(st.libraries_built, 1, "one shared library: {st:?}");
}

#[test]
fn unrelated_defines_do_not_evict_cached_replies() {
    let s = world(2);
    let first_p0 = s.instantiate("/bin/p0").unwrap();
    let _ = s.instantiate("/bin/p1").unwrap();

    // Define a brand-new meta-object and object the cached programs
    // never resolved.
    s.namespace.bind_object(
        "/new/tool.o",
        assemble("tool.o", ".text\n.global _start\n_start: sys 0\n").unwrap(),
    );
    s.namespace
        .bind_blueprint("/bin/tool", "(merge /new/tool.o)")
        .unwrap();

    let again = s.instantiate("/bin/p0").unwrap();
    assert!(again.cache_hit, "unrelated define must not evict /bin/p0");
    assert!(
        Arc::ptr_eq(&again.program, &first_p0.program),
        "the very same cached frames are served"
    );
    assert!(s.instantiate("/bin/p1").unwrap().cache_hit);
    assert_eq!(s.stats().replies_built, 2, "p0 and p1, once each");

    // Rebinding an actual dependency is key-scoped: p0 rebuilds, p1
    // keeps hitting.
    s.namespace.bind_object(
        "/obj/p0.o",
        assemble(
            "p0.o",
            ".text\n.global _start\n_start: li r1, 99\n call _puts\n sys 0\n",
        )
        .unwrap(),
    );
    let rebuilt = s.instantiate("/bin/p0").unwrap();
    assert!(!rebuilt.cache_hit, "touched dependency forces a rebuild");
    assert_ne!(
        rebuilt.program.image.content_hash(),
        first_p0.program.image.content_hash()
    );
    assert!(
        s.instantiate("/bin/p1").unwrap().cache_hit,
        "p1 never depended on /obj/p0.o"
    );
}

#[test]
fn concurrent_dyn_lookup_builds_the_instance_once() {
    const THREADS: usize = 8;
    let s = world(0);
    s.namespace.bind_object(
        "/obj/dynuser.o",
        assemble(
            "dynuser.o",
            ".text\n.global _start\n_start: call _puts\n sys 0\n",
        )
        .unwrap(),
    );
    s.namespace
        .bind_blueprint(
            "/bin/dyn",
            r#"(merge /obj/dynuser.o (specialize "lib-dynamic" /libc/stdio.o))"#,
        )
        .unwrap();
    let _ = s.instantiate("/bin/dyn").unwrap();

    let barrier = Barrier::new(THREADS);
    let replies: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let s = &s;
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    s.dyn_lookup(0, "_puts").expect("lookup succeeds")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let builders = replies.iter().filter(|r| r.server_ns > 0).count();
    assert_eq!(builders, 1, "exactly one thread paid for the build");
    for r in &replies {
        assert_eq!(r.target, replies[0].target);
        assert_eq!(r.frames.total_pages(), replies[0].frames.total_pages());
    }
}

#[test]
fn concurrent_clear_and_insert_keep_byte_counter_consistent() {
    // Regression: `clear()` used to sum freed bytes across all shards
    // and do ONE deferred `fetch_sub` at the end, and `insert` credited
    // its bytes outside the shard lock. A clear draining a shard could
    // therefore count (and later subtract) an entry whose `fetch_add`
    // was still pending, wrapping the global byte counter below zero —
    // and while it is wrapped, every insert sees "over budget" and
    // budget-evicts everything it can. The fix does every counter
    // update while the owning shard's lock is held, so the total is
    // exact at every instant and can never read above what is
    // resident.
    //
    // The wrapped window opens when an insert thread is preempted
    // between releasing its shard lock and its (formerly deferred)
    // `fetch_add`, and a clear completes in that gap — so every thread
    // polls `bytes()` for an absurd reading while hammering the cache
    // for a fixed wall-clock slice. Post-fix the counter is exact, so
    // the poll can never trip no matter the schedule.
    const INSERTERS: u64 = 4;
    const CLEARERS: usize = 2;
    const KEYS: u64 = 64;
    const IMG_BYTES: usize = 100;
    // Resident bytes can never legitimately get anywhere near this: a
    // reading beyond it means the counter wrapped below zero.
    const WRAP: u64 = 1 << 63;

    let mk = |key: u64| {
        let image = omos::link::LinkedImage {
            name: format!("img{key}"),
            segments: vec![omos::link::Segment {
                name: ".text".into(),
                kind: omos::obj::SectionKind::Text,
                vaddr: 0x1000,
                bytes: vec![key as u8; IMG_BYTES],
                zero: 0,
            }],
            symbols: Default::default(),
            entry: None,
        };
        CachedImage {
            key: ContentHash(key),
            frames: ImageFrames::from_image(&image),
            image,
            link_stats: LinkStats::default(),
            rebuild_ns: 0,
            epoch: 0,
        }
    };

    let cache = ImageCache::with_shards(u64::MAX, 4);
    let wrapped = AtomicBool::new(false);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(1);
    std::thread::scope(|scope| {
        for t in 0..INSERTERS {
            let (cache, wrapped, mk) = (&cache, &wrapped, &mk);
            scope.spawn(move || {
                let mut i = 0u64;
                loop {
                    cache.insert(mk(t * KEYS + i % KEYS));
                    if cache.bytes() > WRAP {
                        wrapped.store(true, Ordering::Relaxed);
                    }
                    i += 1;
                    if i.is_multiple_of(256)
                        && (wrapped.load(Ordering::Relaxed)
                            || std::time::Instant::now() >= deadline)
                    {
                        break;
                    }
                }
            });
        }
        for _ in 0..CLEARERS {
            let (cache, wrapped) = (&cache, &wrapped);
            scope.spawn(move || {
                let mut i = 0u64;
                loop {
                    cache.clear();
                    if cache.bytes() > WRAP {
                        wrapped.store(true, Ordering::Relaxed);
                    }
                    i += 1;
                    if i.is_multiple_of(64)
                        && (wrapped.load(Ordering::Relaxed)
                            || std::time::Instant::now() >= deadline)
                    {
                        break;
                    }
                }
            });
        }
    });

    assert!(
        !wrapped.load(Ordering::Relaxed),
        "byte counter wrapped below zero during a clear/insert race"
    );
    // And the final count must equal exactly what is resident.
    assert_eq!(
        cache.bytes(),
        cache.len() as u64 * IMG_BYTES as u64,
        "byte counter equals resident bytes after the clear/insert race"
    );
    cache.clear();
    assert!(cache.is_empty());
    assert_eq!(cache.bytes(), 0, "a drained cache holds zero bytes");
}

#[test]
fn injected_worker_panic_aborts_cleanly_and_server_recovers() {
    let s = world(2);
    s.set_eval_jobs(8);
    // Arm a one-shot panic inside one work unit of the next parallel
    // evaluation of /bin/p0's blueprint.
    let bp = omos::blueprint::Blueprint::parse("(merge /obj/p0.o /lib/libc)").unwrap();
    omos::blueprint::plan::testhooks::arm_panic(bp.root.hash());

    let err = s
        .instantiate("/bin/p0")
        .expect_err("armed panic must abort the request");
    let msg = err.to_string();
    assert!(
        msg.contains("evaluation worker failed"),
        "panic must surface as a clean eval error, got: {msg}"
    );

    // The failure is contained: no poisoned caches, no leaked
    // single-flight entries — the same request immediately rebuilds
    // (no hang, no stale error), an unrelated one is untouched, and
    // the rebuilt image matches a sequential oracle bit for bit.
    let ok = s.instantiate("/bin/p0").expect("server recovered");
    assert!(!ok.cache_hit, "failed build must not have been cached");
    let p1 = s.instantiate("/bin/p1").expect("unrelated program works");
    assert!(!p1.cache_hit);
    let oracle = world(2);
    let want = oracle.instantiate("/bin/p0").unwrap();
    assert_eq!(
        ok.program.image.content_hash(),
        want.program.image.content_hash(),
        "recovered build diverges from the sequential oracle"
    );
    // Subtrees that completed before the panic were legitimately
    // cached (exactly as an aborted sequential request leaves them),
    // so the retry can only be cheaper than a fully cold build.
    assert!(ok.server_ns <= want.server_ns);

    let st = s.stats();
    assert_eq!(
        st.reply_cache_hits + st.coalesced + st.replies_built,
        st.requests,
        "every request accounted for, failure included: {st:?}"
    );
}

#[test]
fn image_cache_keeps_budget_and_mappings_under_concurrency() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 32;
    const IMG_BYTES: usize = 100;
    const BUDGET: u64 = 1_000;

    let mk = |key: u64| {
        let image = omos::link::LinkedImage {
            name: format!("img{key}"),
            segments: vec![omos::link::Segment {
                name: ".text".into(),
                kind: omos::obj::SectionKind::Text,
                vaddr: 0x1000,
                bytes: vec![key as u8; IMG_BYTES],
                zero: 0,
            }],
            symbols: Default::default(),
            entry: None,
        };
        CachedImage {
            key: ContentHash(key),
            frames: ImageFrames::from_image(&image),
            image,
            link_stats: LinkStats::default(),
            rebuild_ns: 0,
            epoch: 0,
        }
    };

    let cache = ImageCache::with_shards(BUDGET, 4);
    let barrier = Barrier::new(THREADS as usize);
    let live_hits = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let cache = &cache;
            let barrier = &barrier;
            let live_hits = &live_hits;
            let mk = &mk;
            scope.spawn(move || {
                barrier.wait();
                let mut held = Vec::new();
                for i in 0..PER_THREAD {
                    let key = t * 1_000 + i;
                    held.push(cache.insert(mk(key)));
                    // Interleave hits on this thread's recent keys to
                    // churn the LRU order while other shards evict.
                    if cache.get(ContentHash(key)).is_some() {
                        live_hits.fetch_add(1, Ordering::Relaxed);
                    }
                }
                // Every handle handed out stays fully mapped, evicted
                // from the cache or not.
                for img in &held {
                    assert_eq!(img.size_bytes(), IMG_BYTES as u64);
                    assert!(img.frames.total_pages() > 0);
                }
            });
        }
    });

    let st = cache.stats();
    assert!(
        cache.bytes() <= BUDGET,
        "byte budget holds after all inserts settle: {} > {BUDGET}",
        cache.bytes()
    );
    assert_eq!(st.insertions, THREADS * PER_THREAD);
    assert_eq!(
        cache.len() as u64,
        st.insertions - st.evictions,
        "every insert is either resident or was evicted: {st:?}"
    );
    assert_eq!(cache.bytes(), cache.len() as u64 * IMG_BYTES as u64);
    assert!(st.evictions > 0, "the budget actually bound");
    assert_eq!(st.hits, live_hits.load(Ordering::Relaxed));
}
