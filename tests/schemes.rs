//! Cross-scheme equivalence and scheme-specific behavior on the full
//! workloads: the same program must produce byte-identical output under
//! native dynamic linking, OMOS bootstrap, and OMOS integrated exec —
//! and the partial-image scheme must agree too.

use omos::bench::workload::WorkloadSizes;
use omos::bench::Scenario;
use omos::core::{run_under_omos, Omos};
use omos::isa::{assemble, StopReason};
use omos::os::ipc::Transport;
use omos::os::{CostModel, InMemFs, SimClock};

#[test]
fn all_three_programs_agree_across_all_three_schemes() {
    let mut s = Scenario::build(
        WorkloadSizes::small(),
        CostModel::hpux(),
        Transport::SysVMsg,
    );
    s.warm_up().expect("byte-identical output everywhere");
}

#[test]
fn osf_profile_agrees_too() {
    let mut s = Scenario::build(
        WorkloadSizes::small(),
        CostModel::osf1(),
        Transport::MachIpc,
    );
    s.warm_up()
        .expect("byte-identical output under the OSF/1 profile");
}

#[test]
fn table1_shape_holds_on_the_small_workload() {
    // Shapes, not calibrated values: OMOS integrated < bootstrap, and
    // the OSF native path is the slowest thing measured.
    let mut s = Scenario::build(
        WorkloadSizes::small(),
        CostModel::osf1(),
        Transport::MachIpc,
    );
    s.warm_up().unwrap();
    let t = s.measure("ls").unwrap();
    assert!(t.integrated.elapsed_ns < t.bootstrap.elapsed_ns);
    assert!(t.bootstrap.elapsed_ns < t.native.elapsed_ns);
}

#[test]
fn self_contained_and_partial_image_agree() {
    // The same client + library under the two OMOS schemes (§4.1 vs
    // §4.2) must compute the same answer; only invocation differs.
    let mut s = Omos::new(CostModel::hpux(), Transport::SysVMsg);
    s.namespace.bind_object(
        "/libc/impl.o",
        assemble(
            "impl.o",
            r#"
            .text
            .global _mix
_mix:       mul r1, r1, r1
            addi r1, r1, 17
            ret
            "#,
        )
        .unwrap(),
    );
    s.namespace.bind_object(
        "/obj/app.o",
        assemble(
            "app.o",
            ".text\n.global _start\n_start: li r1, 7\n call _mix\n call _mix\n sys 0\n",
        )
        .unwrap(),
    );
    s.namespace
        .bind_blueprint(
            "/lib/libimpl",
            "(constraint-list \"T\" 0x1200000 \"D\" 0x41200000)\n(merge /libc/impl.o)",
        )
        .unwrap();
    s.namespace
        .bind_blueprint("/bin/self-contained", "(merge /obj/app.o /lib/libimpl)")
        .unwrap();
    s.namespace
        .bind_blueprint(
            "/bin/partial",
            r#"(merge /obj/app.o (specialize "lib-dynamic" /libc/impl.o))"#,
        )
        .unwrap();

    let cost = CostModel::hpux();
    let mut fs = InMemFs::new();
    let run = |s: &mut Omos, fs: &mut InMemFs, path: &str| {
        let mut clock = SimClock::new();
        let out = run_under_omos(s, path, false, &mut clock, &cost, fs, 100_000).unwrap();
        (out.stop, clock.times())
    };
    let (stop_sc, t_sc) = run(&mut s, &mut fs, "/bin/self-contained");
    let (stop_pi, t_pi) = run(&mut s, &mut fs, "/bin/partial");
    assert_eq!(stop_sc, stop_pi, "schemes must agree on the answer");
    assert_eq!(
        stop_sc,
        StopReason::Exited((7 * 7 + 17) * (7 * 7 + 17) + 17)
    );
    // The partial-image run pays the extra IPC + lookups on first use.
    assert!(t_pi.elapsed_ns > t_sc.elapsed_ns);
}

#[test]
fn partial_image_per_process_loading() {
    // Each process lazily loads the library once; the server builds the
    // instance once *globally*.
    let s = Omos::new(CostModel::hpux(), Transport::SysVMsg);
    s.namespace.bind_object(
        "/libc/impl.o",
        assemble("impl.o", ".text\n.global _f\n_f: addi r1, r1, 1\n ret\n").unwrap(),
    );
    s.namespace.bind_object(
        "/obj/app.o",
        assemble(
            "app.o",
            ".text\n.global _start\n_start: li r1, 0\n call _f\n call _f\n call _f\n sys 0\n",
        )
        .unwrap(),
    );
    s.namespace
        .bind_blueprint(
            "/bin/app",
            r#"(merge /obj/app.o (specialize "lib-dynamic" /libc/impl.o))"#,
        )
        .unwrap();
    let cost = CostModel::hpux();
    let mut fs = InMemFs::new();
    for _process in 0..3 {
        let mut clock = SimClock::new();
        let out =
            run_under_omos(&s, "/bin/app", false, &mut clock, &cost, &mut fs, 100_000).unwrap();
        assert_eq!(out.stop, StopReason::Exited(3));
        // One first-load round trip per process, even across repeated
        // calls inside the process.
        assert_eq!(out.ipc.messages, 2);
    }
    assert_eq!(s.dynamic_lib_count(), 1);
}

#[test]
fn scheme_times_scale_with_iterations_linearly() {
    // The table harness scales one warm run by the iteration count; that
    // is only valid if warm runs are deterministic, which this pins.
    let mut s = Scenario::build(
        WorkloadSizes::small(),
        CostModel::hpux(),
        Transport::SysVMsg,
    );
    s.warm_up().unwrap();
    let a = s.measure("ls-laF").unwrap();
    let b = s.measure("ls-laF").unwrap();
    assert_eq!(a.native.elapsed_ns, b.native.elapsed_ns);
    assert_eq!(a.bootstrap.elapsed_ns, b.bootstrap.elapsed_ns);
    assert_eq!(a.integrated.elapsed_ns, b.integrated.elapsed_ns);
    let scaled = a.native.scaled(1000);
    assert_eq!(scaled.elapsed_ns, a.native.elapsed_ns * 1000);
}
