//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to a crates registry, so
//! the workspace vendors the *exact* subset of `rand` 0.8 it consumes:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen_range`]
//! over integer `Range`s, and [`Rng::gen_bool`]. The generator is a
//! splitmix64 — deterministic for a given seed, which is all the
//! workload generators require (they fix their seed for reproducible
//! benchmarks).

use std::ops::Range;

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Integer types [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: Copy {
    /// Maps a raw 64-bit draw into `[lo, hi)`.
    fn from_draw(draw: u64, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn from_draw(draw: u64, lo: Self, hi: Self) -> Self {
                let span = (hi as u64).wrapping_sub(lo as u64);
                lo.wrapping_add((draw % span) as $t)
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing generator trait, mirroring `rand::Rng`.
pub trait Rng {
    /// Produces the next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Samples uniformly from `range` (which must be non-empty).
    fn gen_range<T: SampleUniform + PartialOrd>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "gen_range called with empty range");
        T::from_draw(self.next_u64(), range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        // 53 bits of mantissa worth of uniformity is plenty here.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard generator: a splitmix64 stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            StdRng {
                state: state.wrapping_add(0x9e37_79b9_7f4a_7c15),
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits = {hits}");
    }
}
