//! Value-generation strategies.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Derives a strategy by mapping generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }
}

/// A strategy yielding a clone of one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.new_value(rng))
    }
}

/// A strategy computed by a generation function (used by
/// [`crate::prop_compose!`]).
pub struct FnStrategy<F>(F);

impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Wraps a generation function as a strategy.
pub fn from_fn<T, F: Fn(&mut TestRng) -> T>(f: F) -> FnStrategy<F> {
    FnStrategy(f)
}

// --- Dynamic dispatch (for `prop_oneof!`). ----------------------------------

trait DynStrategy<T> {
    fn dyn_value(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_value(&self, rng: &mut TestRng) -> S::Value {
        self.new_value(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.dyn_value(rng)
    }
}

/// Type-erases a strategy (used by [`crate::prop_oneof!`]).
pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    BoxedStrategy(Box::new(s))
}

/// Uniform choice among alternatives, all yielding the same type.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; `arms` must be non-empty.
    #[must_use]
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].new_value(rng)
    }
}

// --- Integer ranges. --------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: any draw is in range.
                    rng.next_u64() as $t
                } else {
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// --- Strings from patterns. -------------------------------------------------

impl Strategy for &str {
    type Value = String;

    fn new_value(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

// --- Tuples. ----------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                $(let $v = $s.new_value(rng);)+
                ($($v,)+)
            }
        }
    };
}
impl_tuple_strategy!(A / a);
impl_tuple_strategy!(A / a, B / b);
impl_tuple_strategy!(A / a, B / b, C / c);
impl_tuple_strategy!(A / a, B / b, C / c, D / d);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..200 {
            let (a, b) = (0u8..5, 10i64..=20).new_value(&mut rng);
            assert!(a < 5);
            assert!((10..=20).contains(&b));
        }
    }

    #[test]
    fn map_and_union_compose() {
        let mut rng = TestRng::new(2);
        let s = Union::new(vec![
            boxed(Just(1u32)),
            boxed((10u32..20).prop_map(|v| v * 2)),
        ]);
        for _ in 0..100 {
            let v = s.new_value(&mut rng);
            assert!(v == 1 || (20..40).contains(&v));
        }
    }
}
