//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach a crates registry, so the
//! workspace vendors the subset of proptest 1.x its property tests
//! actually use: the [`proptest!`] / [`prop_compose!`] / [`prop_oneof!`]
//! macros, `prop_assert*`, [`strategy::Strategy`] with `prop_map`,
//! [`strategy::Just`], `any::<T>()` for the primitive types, integer
//! range strategies, tuple strategies, `&str` regex-subset string
//! strategies, and [`collection::vec`] / [`collection::btree_set`].
//!
//! Differences from real proptest, by design:
//!
//! * no shrinking — a failing case reports its case number and seed;
//! * generation is deterministic per test (seeded from the test name),
//!   overridable with the `PROPTEST_SEED` environment variable;
//! * string strategies accept the small regex subset the workspace
//!   uses (literals, escapes, classes with ranges, `{m,n}` repeats).

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// What `use proptest::prelude::*` is expected to bring into scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(,)?) => {};
    (@with_config ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let seed = $crate::test_runner::seed_for(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::new(
                    seed ^ (u64::from(case)).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                );
                $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {case}/{total} failed (seed {seed:#x}): {msg}",
                            total = config.cases,
                        );
                    }
                }
            }
        }
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Composes named strategies into a derived-value strategy function.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($outer:tt)*)
            ($($arg:ident in $strat:expr),* $(,)?)
            -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($outer)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::from_fn(
                move |rng: &mut $crate::test_runner::TestRng| -> $ret {
                    $(let $arg = $crate::strategy::Strategy::new_value(&($strat), rng);)*
                    $body
                },
            )
        }
    };
}

/// Picks uniformly among the given strategies (all yielding one type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::boxed($strat)),+
        ])
    };
}

/// Fails the enclosing property (early-returns a test-case error).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion inside a property; borrows both operands.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {
        match (&$lhs, &$rhs) {
            (lhs, rhs) => {
                $crate::prop_assert!(
                    *lhs == *rhs,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($lhs), stringify!($rhs), lhs, rhs
                );
            }
        }
    };
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {
        match (&$lhs, &$rhs) {
            (lhs, rhs) => {
                $crate::prop_assert!(*lhs == *rhs, $($fmt)*);
            }
        }
    };
}

/// Inequality assertion inside a property; borrows both operands.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {
        match (&$lhs, &$rhs) {
            (lhs, rhs) => {
                $crate::prop_assert!(
                    *lhs != *rhs,
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($lhs), stringify!($rhs), lhs
                );
            }
        }
    };
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {
        match (&$lhs, &$rhs) {
            (lhs, rhs) => {
                $crate::prop_assert!(*lhs != *rhs, $($fmt)*);
            }
        }
    };
}
