//! Collection strategies: `vec` and `btree_set`.

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An element-count specification.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
    }
}

/// A strategy for `Vec<T>` with lengths in a range.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Generates vectors of `element` values with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// A strategy for `BTreeSet<T>` with sizes in a range (best-effort if the
/// element domain is too small to reach the requested size).
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let want = self.size.sample(rng);
        let mut out = BTreeSet::new();
        let mut attempts = 0;
        while out.len() < want && attempts < want * 20 + 100 {
            out.insert(self.element.new_value(rng));
            attempts += 1;
        }
        out
    }
}

/// Generates ordered sets of `element` values with a size drawn from
/// `size`.
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_lengths_in_range() {
        let s = vec(0u8..10, 2..5);
        let mut rng = TestRng::new(4);
        for _ in 0..100 {
            let v = s.new_value(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn btree_set_reaches_size() {
        let s = btree_set(0u32..1000, 3..6);
        let mut rng = TestRng::new(5);
        for _ in 0..50 {
            let v = s.new_value(&mut rng);
            assert!((3..6).contains(&v.len()));
        }
    }
}
