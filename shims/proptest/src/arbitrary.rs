//! `any::<T>()` for the primitive types the workspace samples.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy `any` returns.
    type Strategy: Strategy<Value = Self>;

    /// The whole-domain strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `A`: uniform over its whole domain.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Uniform whole-domain strategy for one primitive type.
#[derive(Debug, Clone, Copy)]
pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;

            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(std::marker::PhantomData)
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;

    fn new_value(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;

    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(std::marker::PhantomData)
    }
}

impl<const N: usize> Strategy for AnyPrimitive<[u8; N]> {
    type Value = [u8; N];

    fn new_value(&self, rng: &mut TestRng) -> [u8; N] {
        let mut out = [0u8; N];
        for b in &mut out {
            *b = rng.next_u64() as u8;
        }
        out
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    type Strategy = AnyPrimitive<[u8; N]>;

    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(std::marker::PhantomData)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_generates_varied_values() {
        let mut rng = TestRng::new(3);
        let s = any::<u8>();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..256 {
            seen.insert(s.new_value(&mut rng));
        }
        assert!(seen.len() > 100, "only {} distinct bytes", seen.len());
        let arr = any::<[u8; 8]>().new_value(&mut rng);
        assert_eq!(arr.len(), 8);
    }
}
