//! String generation from the regex subset used as `&str` strategies:
//! literal characters, `\`-escapes, character classes with ranges, and
//! the quantifiers `{n}`, `{m,n}`, `*`, `+`, `?`.

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    /// Flattened class alternatives.
    Class(Vec<char>),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other, // \\, \-, \], \$ …
    }
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut pieces = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                i += 1;
                let mut options = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let lo = if chars[i] == '\\' {
                        i += 1;
                        unescape(chars[i])
                    } else {
                        chars[i]
                    };
                    i += 1;
                    if i + 1 < chars.len() && chars[i] == '-' && chars[i + 1] != ']' {
                        let hi = if chars[i + 1] == '\\' {
                            i += 1;
                            unescape(chars[i + 1])
                        } else {
                            chars[i + 1]
                        };
                        i += 2;
                        for c in lo..=hi {
                            options.push(c);
                        }
                    } else {
                        options.push(lo);
                    }
                }
                i += 1; // consume ']'
                assert!(!options.is_empty(), "empty class in pattern `{pattern}`");
                Atom::Class(options)
            }
            '\\' => {
                i += 1;
                let c = unescape(chars[i]);
                i += 1;
                Atom::Literal(c)
            }
            '.' => {
                i += 1;
                Atom::Class((' '..='~').collect())
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (min, max) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close = chars[i..].iter().position(|&c| c == '}').unwrap() + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((m, n)) => (m.trim().parse().unwrap(), n.trim().parse().unwrap()),
                        None => {
                            let n = body.trim().parse().unwrap();
                            (n, n)
                        }
                    }
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

/// Generates one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for piece in parse(pattern) {
        let n = piece.min + rng.below((piece.max - piece.min + 1) as u64) as usize;
        for _ in 0..n {
            match &piece.atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(options) => {
                    out.push(options[rng.below(options.len() as u64) as usize]);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_count() {
        let mut rng = TestRng::new(6);
        for _ in 0..100 {
            let s = generate("[a-z]{1,8}", &mut rng);
            assert!((1..=8).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn leading_class_then_tail() {
        let mut rng = TestRng::new(7);
        for _ in 0..100 {
            let s = generate("[a-z_][a-z0-9_]{0,12}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 13);
            let c0 = s.chars().next().unwrap();
            assert!(c0.is_ascii_lowercase() || c0 == '_');
        }
    }

    #[test]
    fn printable_with_newline() {
        let mut rng = TestRng::new(8);
        let mut saw_newline = false;
        for _ in 0..500 {
            let s = generate("[ -~\n]{0,200}", &mut rng);
            assert!(s.len() <= 200);
            saw_newline |= s.contains('\n');
            assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
        assert!(saw_newline, "newline alternative never sampled");
    }

    #[test]
    fn literals_and_quantifiers() {
        let mut rng = TestRng::new(9);
        assert_eq!(generate("abc", &mut rng), "abc");
        assert_eq!(generate("a{3}", &mut rng), "aaa");
        let s = generate("x?", &mut rng);
        assert!(s.is_empty() || s == "x");
    }
}
