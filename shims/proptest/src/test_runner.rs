//! Test configuration, the case RNG, and test-case errors.

use std::fmt;

/// Run configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases, otherwise default.
    #[must_use]
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Why a single test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was rejected (filtered out), not failed.
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(reason.into())
    }

    /// A rejection with the given message.
    pub fn reject(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(msg) => write!(f, "case rejected: {msg}"),
            TestCaseError::Fail(msg) => write!(f, "case failed: {msg}"),
        }
    }
}

/// Result of a single test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The per-case generator: a splitmix64 stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Produces the next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// Base seed for a property, derived from its fully-qualified name (so
/// every property explores a different stream) unless `PROPTEST_SEED`
/// overrides it.
#[must_use]
pub fn seed_for(test_name: &str) -> u64 {
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(v) = s.parse::<u64>() {
            return v;
        }
    }
    // FNV-1a over the test path.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_differ_per_test_name() {
        assert_ne!(seed_for("a::b"), seed_for("a::c"));
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
