//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach a crates registry, so the
//! workspace vendors the subset of criterion 0.5 its benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] (with
//! `sample_size` and `finish`), [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of statistics-grade sampling it times a small fixed number
//! of iterations and prints mean wall-clock time per iteration — enough
//! to eyeball hot-path regressions and, more importantly, to keep the
//! bench targets compiling and runnable under `cargo test` / `cargo
//! bench` with no external dependencies. Set `CRITERION_ITERS` to raise
//! the iteration count for steadier numbers.

use std::time::Instant;

/// How batched inputs are grouped; accepted for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

fn iterations() -> u64 {
    std::env::var("CRITERION_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
}

/// Runs one benchmark body a fixed number of times.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    total_ns: u128,
    timed_iters: u64,
}

impl Bencher {
    fn new(iters: u64) -> Bencher {
        Bencher {
            iters,
            total_ns: 0,
            timed_iters: 0,
        }
    }

    /// Times `routine` over the configured iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.iters {
            let t0 = Instant::now();
            let out = routine();
            self.total_ns += t0.elapsed().as_nanos();
            self.timed_iters += 1;
            drop(out);
        }
    }

    /// Times `routine` over fresh inputs built by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            let t0 = Instant::now();
            let out = routine(input);
            self.total_ns += t0.elapsed().as_nanos();
            self.timed_iters += 1;
            drop(out);
        }
    }
}

fn run_one(name: &str, iters: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher::new(iters);
    f(&mut b);
    let mean = if b.timed_iters > 0 {
        b.total_ns / u128::from(b.timed_iters)
    } else {
        0
    };
    println!(
        "bench {name:<40} {mean:>12} ns/iter ({} iters)",
        b.timed_iters
    );
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        mut f: F,
    ) -> &mut Criterion {
        run_one(name, iterations(), &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            iters: iterations(),
        }
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    iters: u64,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; also caps this group's iteration
    /// count (real criterion uses it as the statistical sample count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = self.iters.min(n as u64).max(1);
        self
    }

    /// Registers and immediately runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), self.iters, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert!(runs >= 1);
    }

    #[test]
    fn batched_setup_feeds_routine() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("grp");
        g.sample_size(2);
        let mut total = 0u64;
        g.bench_function("batched", |b| {
            b.iter_batched(|| 21u64, |v| total += v * 2, BatchSize::SmallInput)
        });
        g.finish();
        assert!(total >= 42);
    }
}
